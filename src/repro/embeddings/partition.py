"""Random edge-based graph partitioning for scalable embedding training.

§2: "For shallow embedding models, random edge-based partitioning of the
graph is a major technique to combat the scalability challenge."  Following
PyTorch-BigGraph and Marius, entities are hashed into ``p`` buckets; every
edge then belongs to the bucket *pair* of its endpoints.  Training iterates
over bucket pairs while only the buckets of the current pair (plus cached
neighbours) are resident in memory.

The pair *schedule* determines how often buckets must be swapped between
memory and disk.  :func:`schedule_pairs` implements a greedy
locality-maximising order and :func:`count_swaps` simulates an LRU buffer
to measure it — the quantity the disk-trainer benchmark sweeps.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.common.errors import EmbeddingError
from repro.common.rng import substream
from repro.embeddings.dataset import TripleDataset


@dataclass
class Partitioning:
    """Entity→bucket assignment plus the induced edge groups."""

    num_partitions: int
    entity_bucket: np.ndarray  # (num_entities,) int
    # (head_bucket, tail_bucket) -> (n_group, 3) triple array
    groups: dict[tuple[int, int], np.ndarray]

    def bucket_sizes(self) -> list[int]:
        """Number of entities per bucket."""
        return [int(np.sum(self.entity_bucket == b)) for b in range(self.num_partitions)]

    def entities_in(self, bucket: int) -> np.ndarray:
        """Global entity indices assigned to ``bucket`` (sorted)."""
        return np.flatnonzero(self.entity_bucket == bucket)

    def group_sizes(self) -> dict[tuple[int, int], int]:
        """Edge count per bucket pair."""
        return {pair: len(triples) for pair, triples in self.groups.items()}


def partition_dataset(
    dataset: TripleDataset, num_partitions: int, seed: int = 0
) -> Partitioning:
    """Randomly assign entities to balanced buckets and group edges.

    Buckets are balanced by shuffling entity indices and striping them,
    which matches the "random edge-based partitioning" of the paper while
    keeping bucket embedding blocks equally sized on disk.
    """
    if num_partitions <= 0:
        raise EmbeddingError(f"num_partitions must be positive, got {num_partitions}")
    if num_partitions > dataset.num_entities:
        raise EmbeddingError(
            f"cannot split {dataset.num_entities} entities into {num_partitions} buckets"
        )
    rng = substream(seed, "partition")
    order = rng.permutation(dataset.num_entities)
    entity_bucket = np.empty(dataset.num_entities, dtype=np.int64)
    entity_bucket[order] = np.arange(dataset.num_entities) % num_partitions

    groups: dict[tuple[int, int], list[np.ndarray]] = {}
    head_buckets = entity_bucket[dataset.triples[:, 0]]
    tail_buckets = entity_bucket[dataset.triples[:, 2]]
    for hb in range(num_partitions):
        for tb in range(num_partitions):
            mask = (head_buckets == hb) & (tail_buckets == tb)
            if np.any(mask):
                groups[(hb, tb)] = [dataset.triples[mask]]
    return Partitioning(
        num_partitions=num_partitions,
        entity_bucket=entity_bucket,
        groups={pair: rows[0] for pair, rows in groups.items()},
    )


def schedule_pairs(
    pairs: list[tuple[int, int]], buffer_capacity: int
) -> list[tuple[int, int]]:
    """Order bucket pairs to maximise buffer reuse (greedy LRU heuristic).

    Starting from the lexicographically first pair, repeatedly picks the
    remaining pair whose buckets overlap the simulated resident set the
    most (ties broken lexicographically for determinism).
    """
    if buffer_capacity < 2:
        raise EmbeddingError("buffer must hold at least 2 buckets (one pair)")
    remaining = sorted(pairs)
    if not remaining:
        return []
    schedule: list[tuple[int, int]] = []
    resident: OrderedDict[int, None] = OrderedDict()

    def touch(bucket: int) -> None:
        if bucket in resident:
            resident.move_to_end(bucket)
        else:
            resident[bucket] = None
            if len(resident) > buffer_capacity:
                resident.popitem(last=False)

    current = remaining.pop(0)
    while True:
        schedule.append(current)
        for bucket in set(current):
            touch(bucket)
        if not remaining:
            break
        best_index = 0
        best_overlap = -1
        for index, pair in enumerate(remaining):
            overlap = sum(1 for bucket in set(pair) if bucket in resident)
            if overlap > best_overlap:
                best_overlap, best_index = overlap, index
                if overlap == 2:
                    break
        current = remaining.pop(best_index)
    return schedule


def count_swaps(
    schedule: list[tuple[int, int]], buffer_capacity: int
) -> tuple[int, int]:
    """Simulate an LRU bucket buffer over ``schedule``.

    Returns ``(loads, evictions)`` — the disk traffic the schedule incurs.
    The first ``buffer_capacity`` loads are compulsory (cold buffer).
    """
    resident: OrderedDict[int, None] = OrderedDict()
    loads = 0
    evictions = 0
    for pair in schedule:
        for bucket in dict.fromkeys(pair):  # preserve order, dedupe (i, i)
            if bucket in resident:
                resident.move_to_end(bucket)
                continue
            loads += 1
            resident[bucket] = None
            if len(resident) > buffer_capacity:
                resident.popitem(last=False)
                evictions += 1
    return loads, evictions
