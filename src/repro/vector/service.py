"""Embedding service: vectors, similarity and k-NN behind one facade.

Figure 1's *Embedding Service* — "provides access to learned vectorized
representations of entities, and allows similarity calculations as well as
efficient k-nearest-neighbour retrieval."  Vectors come from the model
registry's latest (or a pinned) version; a key-value cache keeps hot entity
vectors resident the way §3.2 caches reranker embeddings.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import EmbeddingError, IndexError_
from repro.common.kvstore import MemoryKVStore
from repro.common.metrics import MetricsRegistry
from repro.embeddings.trainer import TrainedEmbeddings
from repro.vector.index import ExactIndex, SearchHit, VectorIndex
from repro.vector.similarity import normalize_rows


class EmbeddingService:
    """Serving layer over a trained embedding model + vector index."""

    def __init__(
        self,
        trained: TrainedEmbeddings,
        index: VectorIndex | None = None,
        cache_capacity: int | None = 10_000,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.trained = trained
        self.metrics = metrics or MetricsRegistry("embedding-service")
        self._cache = MemoryKVStore(capacity=cache_capacity)
        if index is None:
            index = ExactIndex(metric="cosine")
            keys, matrix = trained.all_entity_vectors()
            index.add(keys, matrix)
        elif len(index) == 0:
            keys, matrix = trained.all_entity_vectors()
            index.add(keys, matrix)
        self.index = index

    def has_entity(self, entity: str) -> bool:
        """True when the service can produce a vector for ``entity``."""
        return self.trained.has_entity(entity)

    def vector(self, entity: str) -> np.ndarray:
        """Embedding of ``entity``, via the cache."""
        cached = self._cache.get(entity)
        if cached is not None:
            self.metrics.incr("vector.cache_hit")
            return cached
        self.metrics.incr("vector.cache_miss")
        vector = self.trained.entity_vector(entity)
        self._cache.put(entity, vector)
        return vector

    def similarity(self, left: str, right: str) -> float:
        """Cosine similarity between two entities' embeddings."""
        with self.metrics.timed("similarity"):
            a = normalize_rows(self.vector(left)[None, :])[0]
            b = normalize_rows(self.vector(right)[None, :])[0]
            return float(a @ b)

    def knn(self, entity: str, k: int = 10, exclude_self: bool = True) -> list[SearchHit]:
        """k nearest entities to ``entity`` in embedding space."""
        with self.metrics.timed("knn"):
            query = self.vector(entity)
            hits = self.index.search(query, k + (1 if exclude_self else 0))
        if exclude_self:
            hits = [hit for hit in hits if hit.key != entity][:k]
        return hits

    def knn_many(
        self, entities: list[str], k: int = 10, exclude_self: bool = True
    ) -> list[list[SearchHit]]:
        """Per-entity k-NN for many entities in one batched index pass.

        The serving layer's multi-entity ``KnnRequest`` path: all query
        vectors gather in one fancy-index instead of a per-entity cache
        probe + copy, and the index sees one ``search_many`` call.
        Per-entity hits are identical to :meth:`knn` (the index scores
        each query with the same arithmetic), and unknown entities raise
        exactly like the scalar path.
        """
        if not entities:
            return []
        with self.metrics.timed("knn"):
            index_map = self.trained.dataset.entity_index
            rows = []
            for entity in entities:
                try:
                    rows.append(index_map[entity])
                except KeyError:
                    raise EmbeddingError(
                        f"entity not in embedding vocabulary: {entity}"
                    ) from None
            queries = self.trained.model.entity_emb[rows]
            per_entity = self.index.search_many(
                queries, k + (1 if exclude_self else 0)
            )
        if not exclude_self:
            return per_entity
        return [
            [hit for hit in hits if hit.key != entity][:k]
            for entity, hits in zip(entities, per_entity)
        ]

    def knn_vector(self, query: np.ndarray, k: int = 10) -> list[SearchHit]:
        """k nearest entities to an arbitrary query vector."""
        with self.metrics.timed("knn"):
            return self.index.search(np.asarray(query, dtype=np.float64), k)

    def batch_similarity(
        self, pairs: list[tuple[str, str]]
    ) -> list[float]:
        """Cosine similarities for entity pairs (0.0 for unknown entities).

        The serving layer's ``SimilarityRequest`` path: both sides of
        every known pair gather into one matrix each, normalise in one
        pass and reduce row-wise — no per-pair cache probes or metric
        timers.  Unknown entities keep the scalar path's 0.0 contract.
        """
        if not pairs:
            return []
        known = [
            i
            for i, (left, right) in enumerate(pairs)
            if self.has_entity(left) and self.has_entity(right)
        ]
        out = [0.0] * len(pairs)
        if not known:
            return out
        with self.metrics.timed("similarity"):
            index = self.trained.dataset.entity_index
            emb = self.trained.model.entity_emb
            lefts = normalize_rows(emb[[index[pairs[i][0]] for i in known]])
            rights = normalize_rows(emb[[index[pairs[i][1]] for i in known]])
            for slot, i in enumerate(known):
                out[i] = float(lefts[slot] @ rights[slot])
        return out

    @property
    def cache_hit_rate(self) -> float:
        """Hit rate of the vector cache since service start."""
        return self._cache.hit_rate

    def require_entity(self, entity: str) -> None:
        """Raise a service-level error for unknown entities."""
        if not self.has_entity(entity):
            raise IndexError_(f"entity not served by embedding service: {entity}")
