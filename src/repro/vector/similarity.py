"""Vector similarity kernels shared by the index and services."""

from __future__ import annotations

import numpy as np


def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """L2-normalise each row; zero rows stay zero."""
    matrix = np.asarray(matrix, dtype=np.float64)
    norms = np.linalg.norm(matrix, axis=-1, keepdims=True)
    return np.divide(matrix, norms, out=np.zeros_like(matrix), where=norms > 0)


def cosine(query: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Cosine similarity of ``query`` against every row of ``matrix``."""
    q = normalize_rows(np.atleast_2d(query))[0]
    m = normalize_rows(matrix)
    return m @ q


def dot(query: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Inner-product similarity."""
    return np.asarray(matrix, dtype=np.float64) @ np.asarray(query, dtype=np.float64)


def euclidean(query: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Negated L2 distance (so larger = more similar, like the others)."""
    deltas = np.asarray(matrix, dtype=np.float64) - np.asarray(query, dtype=np.float64)
    return -np.linalg.norm(deltas, axis=1)


METRICS = {"cosine": cosine, "dot": dot, "euclidean": euclidean}


def pairwise_cosine(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Full cosine matrix between rows of ``a`` and rows of ``b``."""
    return normalize_rows(a) @ normalize_rows(b).T
