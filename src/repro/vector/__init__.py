"""Vector index + embedding service (Figure 1's Embedding Service)."""

from repro.vector.index import ExactIndex, IVFIndex, SearchHit, VectorIndex, recall_at_k
from repro.vector.service import EmbeddingService
from repro.vector.similarity import cosine, dot, euclidean, normalize_rows, pairwise_cosine

__all__ = [
    "EmbeddingService",
    "ExactIndex",
    "IVFIndex",
    "SearchHit",
    "VectorIndex",
    "cosine",
    "dot",
    "euclidean",
    "normalize_rows",
    "pairwise_cosine",
    "recall_at_k",
]
