"""Vector indexes: exact brute force and IVF approximate k-NN.

The embedding service (Figure 1's "Vector Index") answers k-nearest-
neighbour queries over entity embeddings.  Two implementations:

* :class:`ExactIndex` — brute-force scan; exact recall, O(N) per query.
* :class:`IVFIndex` — inverted-file index: k-means coarse quantizer
  partitions vectors into ``nlist`` cells; queries probe the ``nprobe``
  nearest cells.  The recall/latency trade-off is swept in
  ``benchmarks/bench_embedding_service.py``.

Both share the :class:`VectorIndex` interface keyed by string ids.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import IndexError_
from repro.common.growable import GrowableMatrix
from repro.vector.similarity import METRICS, normalize_rows

# Backwards-compatible alias: the buffer was born here in PR 1 and moved to
# repro.common once the annotation context index needed it too.
_GrowableMatrix = GrowableMatrix


@dataclass
class SearchHit:
    """One k-NN result."""

    key: str
    score: float


class VectorIndex:
    """Interface of an id-keyed vector index."""

    def add(self, keys: list[str], vectors: np.ndarray) -> None:
        raise NotImplementedError

    def search(self, query: np.ndarray, k: int = 10) -> list[SearchHit]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def vector(self, key: str) -> np.ndarray:
        raise NotImplementedError


class ExactIndex(VectorIndex):
    """Brute-force index with exact results."""

    def __init__(self, metric: str = "cosine") -> None:
        if metric not in METRICS:
            raise IndexError_(f"unknown metric {metric!r}; choose from {sorted(METRICS)}")
        self.metric = metric
        self._keys: list[str] = []
        self._by_key: dict[str, int] = {}
        self._storage = _GrowableMatrix()
        # Cosine fast path: the metric kernel used to re-normalise (and
        # float64-copy) the whole stored matrix on *every* query.  Rows are
        # normalised once at ``add`` — from the float32-stored values, so
        # scores stay bitwise what the per-query path produced — and a
        # search is a single matvec against this buffer.  Costs 8 resident
        # bytes/element next to the 4-byte raw storage (which ``vector``
        # still serves), traded for dropping the transient 8-byte copy +
        # normalisation every query made.
        self._normed = GrowableMatrix(dtype=np.float64) if metric == "cosine" else None

    @property
    def _matrix(self) -> np.ndarray | None:
        """Filled rows of the growable buffer (None when empty)."""
        return self._storage.view() if len(self._storage) else None

    def add(self, keys: list[str], vectors: np.ndarray) -> None:
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if len(keys) != len(vectors):
            raise IndexError_(f"{len(keys)} keys but {len(vectors)} vectors")
        for key in keys:
            if key in self._by_key:
                raise IndexError_(f"duplicate key {key!r}")
        start = len(self._keys)
        self._keys.extend(keys)
        for offset, key in enumerate(keys):
            self._by_key[key] = start + offset
        self._storage.append(vectors)
        if self._normed is not None:
            self._normed.append(normalize_rows(vectors))

    def search(self, query: np.ndarray, k: int = 10) -> list[SearchHit]:
        if len(self._keys) == 0:
            return []
        query = np.asarray(query, dtype=np.float64)
        if self._normed is not None:
            unit = normalize_rows(np.atleast_2d(query))[0]
            scores = self._normed.view() @ unit
        else:
            scores = METRICS[self.metric](query, self._matrix)
        k = min(k, len(scores))
        top = np.argpartition(-scores, k - 1)[:k]
        top = top[np.argsort(-scores[top], kind="mergesort")]
        return [SearchHit(key=self._keys[i], score=float(scores[i])) for i in top]

    def vector(self, key: str) -> np.ndarray:
        try:
            row = self._by_key[key]
        except KeyError:
            raise IndexError_(f"unknown key {key!r}") from None
        assert self._matrix is not None
        return self._matrix[row].copy()

    def __contains__(self, key: str) -> bool:
        return key in self._by_key

    def __len__(self) -> int:
        return len(self._keys)

    def keys(self) -> list[str]:
        """All indexed keys, insertion order."""
        return list(self._keys)


def _kmeans(
    vectors: np.ndarray, n_clusters: int, iterations: int, seed: int
) -> np.ndarray:
    """Plain Lloyd's k-means on unit-normalised vectors; returns centroids."""
    rng = np.random.default_rng(seed)
    n = len(vectors)
    chosen = rng.choice(n, size=min(n_clusters, n), replace=False)
    centroids = vectors[chosen].copy()
    for _ in range(iterations):
        sims = vectors @ centroids.T
        assignment = np.argmax(sims, axis=1)
        for c in range(len(centroids)):
            members = vectors[assignment == c]
            if len(members):
                centroid = members.mean(axis=0)
                norm = np.linalg.norm(centroid)
                if norm > 0:
                    centroids[c] = centroid / norm
    return centroids


class IVFIndex(VectorIndex):
    """Inverted-file approximate index (cosine metric).

    Vectors are unit-normalised at insert.  ``train`` must be called after
    the last ``add`` (or implicitly on first search) to build the coarse
    quantizer and posting lists.
    """

    def __init__(
        self, nlist: int = 16, nprobe: int = 2, kmeans_iterations: int = 8, seed: int = 0
    ) -> None:
        if nlist <= 0 or nprobe <= 0:
            raise IndexError_("nlist and nprobe must be positive")
        self.nlist = nlist
        self.nprobe = min(nprobe, nlist)
        self.kmeans_iterations = kmeans_iterations
        self.seed = seed
        self._keys: list[str] = []
        self._by_key: dict[str, int] = {}
        self._storage = _GrowableMatrix()
        self._centroids: np.ndarray | None = None
        self._postings: list[np.ndarray] = []

    @property
    def _matrix(self) -> np.ndarray | None:
        """Filled rows of the growable buffer (None when empty)."""
        return self._storage.view() if len(self._storage) else None

    def add(self, keys: list[str], vectors: np.ndarray) -> None:
        vectors = normalize_rows(np.atleast_2d(np.asarray(vectors, dtype=np.float64)))
        if len(keys) != len(vectors):
            raise IndexError_(f"{len(keys)} keys but {len(vectors)} vectors")
        for key in keys:
            if key in self._by_key:
                raise IndexError_(f"duplicate key {key!r}")
        start = len(self._keys)
        self._keys.extend(keys)
        for offset, key in enumerate(keys):
            self._by_key[key] = start + offset
        self._storage.append(vectors)  # cast to float32 storage
        self._centroids = None  # adding invalidates training

    def train(self) -> None:
        """(Re)build the coarse quantizer and posting lists."""
        if self._matrix is None or len(self._matrix) == 0:
            raise IndexError_("cannot train an empty IVF index")
        effective_nlist = min(self.nlist, len(self._matrix))
        self._centroids = _kmeans(
            self._matrix, effective_nlist, self.kmeans_iterations, self.seed
        )
        assignment = np.argmax(self._matrix @ self._centroids.T, axis=1)
        self._postings = [
            np.flatnonzero(assignment == c) for c in range(len(self._centroids))
        ]

    @property
    def is_trained(self) -> bool:
        """Whether posting lists are current."""
        return self._centroids is not None

    def search(self, query: np.ndarray, k: int = 10) -> list[SearchHit]:
        if self._matrix is None or len(self._keys) == 0:
            return []
        if not self.is_trained:
            self.train()
        assert self._centroids is not None
        query = np.asarray(query, dtype=np.float64)
        norm = np.linalg.norm(query)
        if norm > 0:
            query = query / norm
        cell_scores = self._centroids @ query
        nprobe = min(self.nprobe, len(self._centroids))
        probe_cells = np.argsort(-cell_scores, kind="mergesort")[:nprobe]
        candidates = np.concatenate(
            [self._postings[c] for c in probe_cells]
        ) if nprobe else np.array([], dtype=np.int64)
        if len(candidates) == 0:
            return []
        scores = self._matrix[candidates] @ query
        k = min(k, len(candidates))
        top = np.argpartition(-scores, k - 1)[:k]
        top = top[np.argsort(-scores[top], kind="mergesort")]
        return [
            SearchHit(key=self._keys[candidates[i]], score=float(scores[i])) for i in top
        ]

    def vector(self, key: str) -> np.ndarray:
        try:
            row = self._by_key[key]
        except KeyError:
            raise IndexError_(f"unknown key {key!r}") from None
        assert self._matrix is not None
        return self._matrix[row].copy()

    def __contains__(self, key: str) -> bool:
        return key in self._by_key

    def __len__(self) -> int:
        return len(self._keys)


def recall_at_k(
    approximate: VectorIndex, exact: ExactIndex, queries: np.ndarray, k: int = 10
) -> float:
    """Fraction of exact top-k hits the approximate index also returns."""
    if len(queries) == 0:
        return 1.0
    total = 0.0
    for query in np.atleast_2d(queries):
        truth = {hit.key for hit in exact.search(query, k)}
        got = {hit.key for hit in approximate.search(query, k)}
        if truth:
            total += len(truth & got) / len(truth)
    return total / len(np.atleast_2d(queries))
