"""Vector indexes: exact brute force and IVF approximate k-NN.

The embedding service (Figure 1's "Vector Index") answers k-nearest-
neighbour queries over entity embeddings.  Two implementations:

* :class:`ExactIndex` — brute-force scan; exact recall, O(N) per query.
* :class:`IVFIndex` — inverted-file index: k-means coarse quantizer
  partitions vectors into ``nlist`` cells; queries probe the ``nprobe``
  nearest cells and re-rank the probed candidates at full precision.
  With ``quantization="int8"`` the candidate pass scores symmetric
  per-row int8 codes first and only the top ``rerank_factor · k``
  shortlist is re-scored against the float rows.  The recall/latency
  trade-off is swept in ``benchmarks/bench_embedding_service.py``.

Both share the :class:`VectorIndex` interface keyed by string ids.  An
:class:`IVFIndex` additionally round-trips through the persisted
embedding bundle layer: :meth:`IVFIndex.state_arrays` exports its
centroids/postings/rows as flat arrays and :meth:`IVFIndex.adopt`
rebuilds a ready-trained index zero-copy over read-only (memory-mapped)
storage — serving cold start maps pages instead of re-running k-means.

Per-query determinism contract: ``search_many`` batches the *gather* and
normalisation but scores each query with exactly the arithmetic of
``search`` (matvec, never one dgemm across queries — BLAS dgemm columns
are not bitwise dgemv results), so a query's hits never depend on which
batch or shard partition it arrived in.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.common.errors import IndexError_
from repro.common.growable import GrowableMatrix
from repro.vector.similarity import METRICS, normalize_rows

INT8 = "int8"
QUANTIZATION_MODES = (None, INT8)

# Backwards-compatible alias: the buffer was born here in PR 1 and moved to
# repro.common once the annotation context index needed it too.
_GrowableMatrix = GrowableMatrix


@dataclass
class SearchHit:
    """One k-NN result."""

    key: str
    score: float


class VectorIndex:
    """Interface of an id-keyed vector index."""

    def add(self, keys: list[str], vectors: np.ndarray) -> None:
        raise NotImplementedError

    def search(self, query: np.ndarray, k: int = 10) -> list[SearchHit]:
        raise NotImplementedError

    def search_many(self, queries: np.ndarray, k: int = 10) -> list[list[SearchHit]]:
        """Per-query hits for a query matrix; identical to mapping :meth:`search`."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        return [self.search(query, k) for query in queries]

    def __len__(self) -> int:
        raise NotImplementedError

    def vector(self, key: str) -> np.ndarray:
        raise NotImplementedError


class ExactIndex(VectorIndex):
    """Brute-force index with exact results."""

    def __init__(self, metric: str = "cosine") -> None:
        if metric not in METRICS:
            raise IndexError_(f"unknown metric {metric!r}; choose from {sorted(METRICS)}")
        self.metric = metric
        self._keys: list[str] = []
        self._by_key: dict[str, int] = {}
        self._storage = _GrowableMatrix()
        # Cosine fast path: the metric kernel used to re-normalise (and
        # float64-copy) the whole stored matrix on *every* query.  Rows are
        # normalised once at ``add`` — from the float32-stored values, so
        # scores stay bitwise what the per-query path produced — and a
        # search is a single matvec against this buffer.  Costs 8 resident
        # bytes/element next to the 4-byte raw storage (which ``vector``
        # still serves), traded for dropping the transient 8-byte copy +
        # normalisation every query made.
        self._normed = GrowableMatrix(dtype=np.float64) if metric == "cosine" else None

    @property
    def _matrix(self) -> np.ndarray | None:
        """Filled rows of the growable buffer (None when empty)."""
        return self._storage.view() if len(self._storage) else None

    def add(self, keys: list[str], vectors: np.ndarray) -> None:
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if len(keys) != len(vectors):
            raise IndexError_(f"{len(keys)} keys but {len(vectors)} vectors")
        for key in keys:
            if key in self._by_key:
                raise IndexError_(f"duplicate key {key!r}")
        start = len(self._keys)
        self._keys.extend(keys)
        for offset, key in enumerate(keys):
            self._by_key[key] = start + offset
        self._storage.append(vectors)
        if self._normed is not None:
            self._normed.append(normalize_rows(vectors))

    def search(self, query: np.ndarray, k: int = 10) -> list[SearchHit]:
        if len(self._keys) == 0:
            return []
        query = np.asarray(query, dtype=np.float64)
        if self._normed is not None:
            unit = normalize_rows(np.atleast_2d(query))[0]
            scores = self._normed.view() @ unit
        else:
            scores = METRICS[self.metric](query, self._matrix)
        return self._top_hits(scores, k)

    def search_many(self, queries: np.ndarray, k: int = 10) -> list[list[SearchHit]]:
        """Batched :meth:`search`: one normalisation pass over the query
        matrix, then a per-query matvec (identical arithmetic per query, so
        a query's hits never depend on its batch)."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if len(self._keys) == 0:
            return [[] for _ in queries]
        if self._normed is not None:
            units = normalize_rows(queries)
            normed = self._normed.view()
            return [self._top_hits(normed @ unit, k) for unit in units]
        matrix = self._matrix
        return [self._top_hits(METRICS[self.metric](q, matrix), k) for q in queries]

    def _top_hits(self, scores: np.ndarray, k: int) -> list[SearchHit]:
        k = min(k, len(scores))
        top = np.argpartition(-scores, k - 1)[:k]
        top = top[np.argsort(-scores[top], kind="mergesort")]
        return [SearchHit(key=self._keys[i], score=float(scores[i])) for i in top]

    def vector(self, key: str) -> np.ndarray:
        try:
            row = self._by_key[key]
        except KeyError:
            raise IndexError_(f"unknown key {key!r}") from None
        assert self._matrix is not None
        return self._matrix[row].copy()

    def __contains__(self, key: str) -> bool:
        return key in self._by_key

    def __len__(self) -> int:
        return len(self._keys)

    def keys(self) -> list[str]:
        """All indexed keys, insertion order."""
        return list(self._keys)


def _kmeans(
    vectors: np.ndarray, n_clusters: int, iterations: int, seed: int
) -> np.ndarray:
    """Plain Lloyd's k-means on unit-normalised vectors; returns centroids."""
    rng = np.random.default_rng(seed)
    n = len(vectors)
    chosen = rng.choice(n, size=min(n_clusters, n), replace=False)
    centroids = vectors[chosen].copy()
    for _ in range(iterations):
        sims = vectors @ centroids.T
        assignment = np.argmax(sims, axis=1)
        for c in range(len(centroids)):
            members = vectors[assignment == c]
            if len(members):
                centroid = members.mean(axis=0)
                norm = np.linalg.norm(centroid)
                if norm > 0:
                    centroids[c] = centroid / norm
    return centroids


class IVFIndex(VectorIndex):
    """Inverted-file approximate index (cosine metric).

    Vectors are unit-normalised at insert.  ``train`` must be called after
    the last ``add`` (or implicitly on first search) to build the coarse
    quantizer, posting lists and — with ``quantization="int8"`` — the
    per-row code/scale side-channel.  First-search training is guarded by
    a materialisation lock (same pattern as the ``CSRAdjacency`` derived
    caches): concurrent readers under the multi-reader serving pools
    either see no trained state or all of it, never a half-published mix.
    """

    def __init__(
        self,
        nlist: int = 16,
        nprobe: int = 2,
        kmeans_iterations: int = 8,
        seed: int = 0,
        quantization: str | None = None,
        rerank_factor: int = 4,
    ) -> None:
        if nlist <= 0 or nprobe <= 0:
            raise IndexError_("nlist and nprobe must be positive")
        if quantization not in QUANTIZATION_MODES:
            raise IndexError_(
                f"unknown quantization {quantization!r}; choose from {QUANTIZATION_MODES}"
            )
        if rerank_factor <= 0:
            raise IndexError_("rerank_factor must be positive")
        self.nlist = nlist
        self.nprobe = min(nprobe, nlist)
        self.kmeans_iterations = kmeans_iterations
        self.seed = seed
        self.quantization = quantization
        self.rerank_factor = rerank_factor
        self._keys: list[str] = []
        self._by_key: dict[str, int] = {}
        self._storage = _GrowableMatrix()
        self._centroids: np.ndarray | None = None
        self._postings: list[np.ndarray] = []
        self._codes: np.ndarray | None = None
        self._scales: np.ndarray | None = None
        self._train_lock = threading.Lock()

    @property
    def _matrix(self) -> np.ndarray | None:
        """Filled rows of the growable buffer (None when empty)."""
        return self._storage.view() if len(self._storage) else None

    def add(self, keys: list[str], vectors: np.ndarray) -> None:
        vectors = normalize_rows(np.atleast_2d(np.asarray(vectors, dtype=np.float64)))
        if len(keys) != len(vectors):
            raise IndexError_(f"{len(keys)} keys but {len(vectors)} vectors")
        for key in keys:
            if key in self._by_key:
                raise IndexError_(f"duplicate key {key!r}")
        start = len(self._keys)
        self._keys.extend(keys)
        for offset, key in enumerate(keys):
            self._by_key[key] = start + offset
        self._storage.append(vectors)  # cast to float32 storage
        # Adding invalidates *all* trained state, not just the quantizer:
        # stale postings would silently drop the new rows from every search.
        self._centroids = None
        self._postings = []
        self._codes = None
        self._scales = None

    def train(self) -> None:
        """(Re)build the coarse quantizer, posting lists and codes."""
        with self._train_lock:
            self._train_locked()

    def _train_locked(self) -> None:
        matrix = self._matrix
        if matrix is None or len(matrix) == 0:
            raise IndexError_("cannot train an empty IVF index")
        effective_nlist = min(self.nlist, len(matrix))
        centroids = _kmeans(matrix, effective_nlist, self.kmeans_iterations, self.seed)
        assignment = np.argmax(matrix @ centroids.T, axis=1)
        postings = [np.flatnonzero(assignment == c) for c in range(len(centroids))]
        codes = scales = None
        if self.quantization == INT8:
            # Function-level import: ``repro.ondevice`` eagerly imports its
            # whole package, which this module must not pull in at import.
            from repro.ondevice.compression import int8_codes

            codes, float_scales = int8_codes(matrix)
            # float32 scales, matching the persisted layer's dtype, so a
            # trained index and one adopted from disk score identically.
            scales = float_scales.astype(np.float32).ravel()
        self._postings = postings
        self._codes = codes
        self._scales = scales
        self._centroids = centroids  # published last: ``is_trained`` keys off it

    def _ensure_trained(self) -> None:
        if self._centroids is None:
            with self._train_lock:
                if self._centroids is None:
                    self._train_locked()

    @property
    def is_trained(self) -> bool:
        """Whether posting lists are current."""
        return self._centroids is not None

    def search(self, query: np.ndarray, k: int = 10) -> list[SearchHit]:
        if self._matrix is None or len(self._keys) == 0:
            return []
        self._ensure_trained()
        query = np.asarray(query, dtype=np.float64)
        norm = np.linalg.norm(query)
        if norm > 0:
            query = query / norm
        return self._search_unit(query, k)

    def search_many(self, queries: np.ndarray, k: int = 10) -> list[list[SearchHit]]:
        """Batched :meth:`search` (one trained-state check, per-query scan)."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if self._matrix is None or len(self._keys) == 0:
            return [[] for _ in queries]
        self._ensure_trained()
        results = []
        for query in queries:
            norm = np.linalg.norm(query)
            if norm > 0:
                query = query / norm
            results.append(self._search_unit(query, k))
        return results

    def _search_unit(self, unit: np.ndarray, k: int) -> list[SearchHit]:
        """Probe + (optional int8 shortlist) + exact re-rank for one unit query."""
        centroids = self._centroids
        postings = self._postings
        matrix = self._matrix
        assert centroids is not None and matrix is not None
        cell_scores = centroids @ unit
        nprobe = min(self.nprobe, len(centroids))
        probe_cells = np.argsort(-cell_scores, kind="mergesort")[:nprobe]
        candidates = np.concatenate(
            [postings[c] for c in probe_cells]
        ) if nprobe else np.array([], dtype=np.int64)
        if len(candidates) == 0:
            return []
        codes = self._codes
        if codes is not None:
            shortlist = min(len(candidates), max(k, 1) * self.rerank_factor)
            if shortlist < len(candidates):
                assert self._scales is not None
                approx = (codes[candidates] @ unit) * (
                    self._scales[candidates].astype(np.float64) / 127.0
                )
                keep = np.argsort(-approx, kind="mergesort")[:shortlist]
                candidates = candidates[keep]
        scores = matrix[candidates] @ unit
        k = min(k, len(candidates))
        top = np.argpartition(-scores, k - 1)[:k]
        top = top[np.argsort(-scores[top], kind="mergesort")]
        return [
            SearchHit(key=self._keys[candidates[i]], score=float(scores[i])) for i in top
        ]

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Trained state as flat arrays for the persisted embedding layer.

        Postings serialize CSR-style (one concatenated indices array plus
        offsets); :meth:`adopt` slices them back zero-copy.  Raises when
        untrained — persisting a quantizer that doesn't exist yet would
        make adopt-time behaviour depend on save-time query history.
        """
        self._ensure_trained()
        assert self._centroids is not None and self._matrix is not None
        lengths = [len(p) for p in self._postings]
        indices = (
            np.concatenate(self._postings).astype(np.int64, copy=False)
            if self._postings
            else np.array([], dtype=np.int64)
        )
        offsets = np.zeros(len(self._postings) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        arrays = {
            "knn_rows": self._matrix,
            "knn_centroids": self._centroids,
            "knn_postings_indices": indices,
            "knn_postings_offsets": offsets,
        }
        if self._codes is not None:
            assert self._scales is not None
            arrays["knn_codes"] = self._codes
            arrays["knn_scales"] = self._scales
        return arrays

    @classmethod
    def adopt(
        cls,
        keys: list[str],
        arrays: dict[str, np.ndarray],
        *,
        nlist: int = 16,
        nprobe: int = 2,
        kmeans_iterations: int = 8,
        seed: int = 0,
        quantization: str | None = None,
        rerank_factor: int = 4,
        by_key: dict[str, int] | None = None,
    ) -> IVFIndex:
        """Rebuild a ready-trained index zero-copy over read-only arrays.

        ``arrays`` is the :meth:`state_arrays` export (typically served
        from a memory-mapped snapshot — nothing is copied, the adopted
        buffers are never written).  ``by_key`` optionally shares an
        existing ``key -> row`` dict instead of rebuilding one.
        """
        rows = np.atleast_2d(arrays["knn_rows"])
        if len(keys) != len(rows):
            raise IndexError_(f"{len(keys)} keys but {len(rows)} adopted rows")
        index = cls(
            nlist=nlist,
            nprobe=nprobe,
            kmeans_iterations=kmeans_iterations,
            seed=seed,
            quantization=quantization,
            rerank_factor=rerank_factor,
        )
        index._keys = list(keys)
        index._by_key = (
            by_key if by_key is not None else {key: i for i, key in enumerate(keys)}
        )
        index._storage.adopt(rows)
        offsets = np.asarray(arrays["knn_postings_offsets"])
        indices = np.asarray(arrays["knn_postings_indices"])
        index._postings = [
            indices[offsets[c] : offsets[c + 1]] for c in range(len(offsets) - 1)
        ]
        if quantization == INT8:
            if "knn_codes" not in arrays or "knn_scales" not in arrays:
                raise IndexError_("int8 adoption requires knn_codes and knn_scales")
            index._codes = np.atleast_2d(arrays["knn_codes"])
            index._scales = np.asarray(arrays["knn_scales"])
        index._centroids = np.atleast_2d(arrays["knn_centroids"])
        return index

    def vector(self, key: str) -> np.ndarray:
        try:
            row = self._by_key[key]
        except KeyError:
            raise IndexError_(f"unknown key {key!r}") from None
        assert self._matrix is not None
        return self._matrix[row].copy()

    def __contains__(self, key: str) -> bool:
        return key in self._by_key

    def __len__(self) -> int:
        return len(self._keys)


def recall_at_k(
    approximate: VectorIndex, exact: ExactIndex, queries: np.ndarray, k: int = 10
) -> float:
    """Fraction of exact top-k hits the approximate index also returns."""
    if len(queries) == 0:
        return 1.0
    total = 0.0
    for query in np.atleast_2d(queries):
        truth = {hit.key for hit in exact.search(query, k)}
        got = {hit.key for hit in approximate.search(query, k)}
        if truth:
            total += len(truth & got) / len(truth)
    return total / len(np.atleast_2d(queries))
