"""repro — a reproduction of "Growing and Serving Large Open-domain
Knowledge Graphs" (Ilyas et al., SIGMOD-Companion 2023).

The package implements the paper's four extensions to the Saga knowledge
platform on top of a fully synthetic, deterministic substrate:

* :mod:`repro.kg` — triple store, ontology, graph engine, views, synthetic
  open-domain KG generator (the substrate standing in for Apple's KG);
* :mod:`repro.embeddings` — the §2 embedding pipeline (view filtering,
  shallow contrastive models, out-of-core partitioned training, inference);
* :mod:`repro.vector` + :mod:`repro.services` — embedding service, fact
  ranking/verification, related entities;
* :mod:`repro.annotation` + :mod:`repro.web` — the §3 semantic annotation
  platform and the synthetic Web it links to the KG;
* :mod:`repro.odke` — the §4 open-domain knowledge extraction pipeline;
* :mod:`repro.ondevice` — the §5 private on-device knowledge platform;
* :mod:`repro.core` — an end-to-end facade wiring everything together.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
