"""Rule-based extraction from schema.org structured payloads.

§4: "simple rule-based models can be used to extract key-value pairs from
webpages embedded with structured data that conform to schema.org types".
High precision: the payload must *name-match* the target entity before any
property is read.
"""

from __future__ import annotations

from repro.common.text import normalize_name
from repro.kg.store import TripleStore
from repro.odke.extractors.base import CandidateFact, Extractor, normalize_date
from repro.odke.gaps import ExtractionTarget
from repro.web.document import WebDocument
from repro.web.schema_org import PREDICATE_TO_SCHEMA


class StructuredDataExtractor(Extractor):
    """Reads mapped schema.org properties off name-matched payloads."""

    name = "structured"

    def __init__(self, store: TripleStore, base_confidence: float = 0.9) -> None:
        self.store = store
        self.base_confidence = base_confidence

    def extract(
        self, document: WebDocument, target: ExtractionTarget
    ) -> list[CandidateFact]:
        payload = document.structured_data
        if not payload:
            return []
        if not self.store.has_entity(target.entity):
            return []
        record = self.store.entity(target.entity)
        payload_name = payload.get("name", "")
        if normalize_name(payload_name) != normalize_name(record.name):
            return []

        local = target.predicate.split(":", 1)[-1]
        schema_property = PREDICATE_TO_SCHEMA.get(local)
        if schema_property is None or schema_property not in payload:
            return []
        raw_values = payload[schema_property]
        if not isinstance(raw_values, list):
            raw_values = [raw_values]

        candidates: list[CandidateFact] = []
        for raw in raw_values:
            value = str(raw)
            if local == "date_of_birth":
                normalized = normalize_date(value)
                if normalized is None:
                    continue
                value = normalized
            candidates.append(
                CandidateFact(
                    entity=target.entity,
                    predicate=target.predicate,
                    value=value,
                    extractor=self.name,
                    confidence=self.base_confidence,
                    doc_id=document.doc_id,
                    source_quality=document.quality,
                    doc_timestamp=document.fetched_at,
                )
            )
        return candidates
