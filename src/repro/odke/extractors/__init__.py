"""ODKE extractor zoo: structured, pattern and annotation-guided tiers."""

from repro.odke.extractors.base import CandidateFact, Extractor, normalize_date
from repro.odke.extractors.neural import AnnotationGuidedExtractor
from repro.odke.extractors.patterns import PatternExtractor
from repro.odke.extractors.structured import StructuredDataExtractor

__all__ = [
    "AnnotationGuidedExtractor",
    "CandidateFact",
    "Extractor",
    "PatternExtractor",
    "StructuredDataExtractor",
    "normalize_date",
]
