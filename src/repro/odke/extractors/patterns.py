"""Pattern-based text extraction.

The classical tier of ODKE's extractor zoo: per-predicate regular
expressions anchored on the target entity's name ("X was born on <date>",
"X was born ... in <City>", "X plays for <Team>").  Medium precision —
the patterns fire on any page, including low-quality blogs carrying wrong
values, which is exactly what the corroboration model must sort out.
"""

from __future__ import annotations

import re

from repro.kg.store import TripleStore
from repro.odke.extractors.base import CandidateFact, Extractor, normalize_date
from repro.odke.gaps import ExtractionTarget
from repro.web.document import WebDocument

_DATE_PATTERN = r"(\d{4}-\d{2}-\d{2}|[A-Z][a-z]+ \d{1,2}, \d{4})"
_PHRASE_PATTERN = r"([A-Z][\w]+(?: [A-Z][\w]+){0,3})"


def _compile(name: str, body: str) -> re.Pattern[str]:
    """Compile a pattern with the entity name spliced in (escaped)."""
    return re.compile(body.replace("{NAME}", re.escape(name)))


# predicate local name -> list of pattern templates; group(1) is the value.
_PATTERNS: dict[str, list[str]] = {
    "date_of_birth": [
        r"{NAME} was born on " + _DATE_PATTERN,
        r"{NAME} \(born " + _DATE_PATTERN + r"\)",
    ],
    "place_of_birth": [
        r"{NAME} was born (?:on [\w ,-]+ )?in " + _PHRASE_PATTERN,
    ],
    "member_of_sports_team": [
        r"{NAME} plays for (?:the )?" + _PHRASE_PATTERN,
    ],
    "spouse": [
        r"{NAME} is married to " + _PHRASE_PATTERN,
    ],
    "employer": [
        r"{NAME} teaches at (?:the )?" + _PHRASE_PATTERN,
    ],
}

# Spanish news pages (the corpus's non-English slice) — §3.1 variety.
_PATTERNS_ES: dict[str, list[str]] = {
    "place_of_birth": [r"{NAME} nació en " + _PHRASE_PATTERN],
}


class PatternExtractor(Extractor):
    """Regex extraction keyed on the target's name and aliases."""

    name = "pattern"

    def __init__(self, store: TripleStore, base_confidence: float = 0.6) -> None:
        self.store = store
        self.base_confidence = base_confidence

    def extract(
        self, document: WebDocument, target: ExtractionTarget
    ) -> list[CandidateFact]:
        if not self.store.has_entity(target.entity):
            return []
        record = self.store.entity(target.entity)
        local = target.predicate.split(":", 1)[-1]
        pattern_bank = _PATTERNS_ES if document.language == "es" else _PATTERNS
        templates = pattern_bank.get(local, [])
        if not templates:
            return []

        candidates: list[CandidateFact] = []
        surfaces = [record.name, *record.aliases]
        seen_spans: set[tuple[int, int]] = set()
        for surface in surfaces:
            for template in templates:
                for match in _compile(surface, template).finditer(document.text):
                    span = match.span(1)
                    if span in seen_spans:
                        continue
                    seen_spans.add(span)
                    value = match.group(1)
                    if local == "date_of_birth":
                        normalized = normalize_date(value)
                        if normalized is None:
                            continue
                        value = normalized
                    # Full-name anchors are stronger evidence than aliases.
                    confidence = self.base_confidence * (
                        1.0 if surface == record.name else 0.8
                    )
                    candidates.append(
                        CandidateFact(
                            entity=target.entity,
                            predicate=target.predicate,
                            value=value,
                            extractor=self.name,
                            confidence=confidence,
                            doc_id=document.doc_id,
                            source_quality=document.quality,
                            doc_timestamp=document.fetched_at,
                        )
                    )
        return candidates
