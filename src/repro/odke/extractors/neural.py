"""Annotation-guided span extraction (the "neural" tier).

§4: "more complex neural models based on large language models are used to
extract facts from plain text and leveraging annotations produced by
web-scale semantic annotation service as weak labels."

Our stand-in keeps the *interface and information flow* of that design
without an actual LLM: the document's semantic annotations (entity links +
coarse types) act as weak labels; the extractor finds a link of the target
entity, then searches nearby spans whose NER type matches the predicate's
range (PLACE for place_of_birth, PERSON for spouse, a date token for
date_of_birth) near a trigger word, and scores the span by a soft feature
combination (trigger proximity, link score, distance decay) — the shape of
an attention-pooled extraction head.
"""

from __future__ import annotations

import re

from repro.annotation.mention import EntityLink
from repro.annotation.ner import ORGANIZATION, PERSON, PLACE
from repro.odke.extractors.base import CandidateFact, Extractor, normalize_date
from repro.odke.gaps import ExtractionTarget
from repro.web.document import WebDocument

_DATE_RE = re.compile(r"\d{4}-\d{2}-\d{2}|[A-Z][a-z]+ \d{1,2}, \d{4}")

# predicate local -> (trigger words, expected NER type or "DATE")
_TASKS: dict[str, tuple[frozenset[str], str]] = {
    "date_of_birth": (frozenset({"born", "birthday", "birth"}), "DATE"),
    "place_of_birth": (frozenset({"born", "birthplace"}), PLACE),
    "spouse": (frozenset({"married", "spouse", "wife", "husband"}), PERSON),
    "member_of_sports_team": (frozenset({"plays", "team", "signed"}), ORGANIZATION),
    "employer": (frozenset({"teaches", "professor", "works"}), ORGANIZATION),
}

_WINDOW_CHARS = 140


class AnnotationGuidedExtractor(Extractor):
    """Weak-label span extractor driven by semantic annotations."""

    name = "neural"

    def __init__(self, base_confidence: float = 0.75) -> None:
        self.base_confidence = base_confidence

    def extract_with_links(
        self,
        document: WebDocument,
        target: ExtractionTarget,
        links: list[EntityLink],
    ) -> list[CandidateFact]:
        """Extraction given the document's annotation links."""
        local = target.predicate.split(":", 1)[-1]
        task = _TASKS.get(local)
        if task is None:
            return []
        triggers, expected_type = task
        anchor_links = [link for link in links if link.entity == target.entity]
        if not anchor_links:
            return []

        candidates: list[CandidateFact] = []
        text = document.text
        for anchor in anchor_links:
            lo = max(0, anchor.mention.start - _WINDOW_CHARS)
            hi = min(len(text), anchor.mention.end + _WINDOW_CHARS)
            window = text[lo:hi]
            window_tokens = {tok.lower() for tok in re.findall(r"[A-Za-z]+", window)}
            trigger_hit = bool(window_tokens & triggers)
            if not trigger_hit:
                continue
            if expected_type == "DATE":
                candidates.extend(
                    self._date_candidates(document, target, anchor, window, lo)
                )
            else:
                candidates.extend(
                    self._entity_candidates(
                        document, target, anchor, links, expected_type
                    )
                )
        return candidates

    def extract(
        self, document: WebDocument, target: ExtractionTarget
    ) -> list[CandidateFact]:
        """Interface conformance: without links, nothing to anchor on.

        The ODKE pipeline always calls :meth:`extract_with_links`; this
        method exists so the extractor satisfies the base interface when
        used standalone.
        """
        return []

    def _date_candidates(
        self,
        document: WebDocument,
        target: ExtractionTarget,
        anchor: EntityLink,
        window: str,
        window_offset: int,
    ) -> list[CandidateFact]:
        out: list[CandidateFact] = []
        anchor_mid = (anchor.mention.start + anchor.mention.end) / 2
        for match in _DATE_RE.finditer(window):
            normalized = normalize_date(match.group(0))
            if normalized is None:
                continue
            position = window_offset + (match.start() + match.end()) / 2
            distance = abs(position - anchor_mid)
            proximity = max(0.0, 1.0 - distance / (2 * _WINDOW_CHARS))
            out.append(
                CandidateFact(
                    entity=target.entity,
                    predicate=target.predicate,
                    value=normalized,
                    extractor=self.name,
                    confidence=self.base_confidence * (0.5 + 0.5 * proximity),
                    doc_id=document.doc_id,
                    source_quality=document.quality,
                    doc_timestamp=document.fetched_at,
                )
            )
        return out

    def _entity_candidates(
        self,
        document: WebDocument,
        target: ExtractionTarget,
        anchor: EntityLink,
        links: list[EntityLink],
        expected_type: str,
    ) -> list[CandidateFact]:
        out: list[CandidateFact] = []
        anchor_mid = (anchor.mention.start + anchor.mention.end) / 2
        for link in links:
            if link.entity == target.entity or link.entity_type != expected_type:
                continue
            mid = (link.mention.start + link.mention.end) / 2
            distance = abs(mid - anchor_mid)
            if distance > 2 * _WINDOW_CHARS:
                continue
            proximity = max(0.0, 1.0 - distance / (2 * _WINDOW_CHARS))
            out.append(
                CandidateFact(
                    entity=target.entity,
                    predicate=target.predicate,
                    value=link.mention.surface,
                    extractor=self.name,
                    confidence=self.base_confidence
                    * (0.4 + 0.3 * proximity + 0.3 * min(link.score, 1.0)),
                    doc_id=document.doc_id,
                    source_quality=document.quality,
                    doc_timestamp=document.fetched_at,
                )
            )
        return out
