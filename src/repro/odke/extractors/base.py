"""Extractor interface and candidate-fact data model.

§4: "we focus on designing different extractors to handle different types
of data sources with different types of models."  Every extractor consumes
a (document, target) pair and emits :class:`CandidateFact` records; the
corroboration stage fuses candidates across extractors and documents.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.odke.gaps import ExtractionTarget
from repro.web.document import WebDocument

_MONTHS = {
    "january": 1, "february": 2, "march": 3, "april": 4, "may": 5, "june": 6,
    "july": 7, "august": 8, "september": 9, "october": 10, "november": 11,
    "december": 12,
}

_ISO_RE = re.compile(r"^(\d{4})-(\d{2})-(\d{2})$")
_LONG_RE = re.compile(r"^([A-Za-z]+)\s+(\d{1,2}),\s*(\d{4})$")


def normalize_date(raw: str) -> str | None:
    """Normalise a date string to ISO ``YYYY-MM-DD`` (None if unparseable).

    Handles the two formats the corpus emits: ISO and "July 23, 1979".
    """
    raw = raw.strip()
    match = _ISO_RE.match(raw)
    if match:
        return raw
    match = _LONG_RE.match(raw)
    if match:
        month = _MONTHS.get(match.group(1).lower())
        if month is None:
            return None
        return f"{int(match.group(3)):04d}-{month:02d}-{int(match.group(2)):02d}"
    return None


@dataclass
class CandidateFact:
    """One extracted value for a target, with its evidence metadata.

    ``value`` is a normalised string: ISO date for dates, a surface name
    for entity-valued predicates (fusion resolves it to an entity id),
    a numeral string for numbers.
    """

    entity: str
    predicate: str
    value: str
    extractor: str
    confidence: float
    doc_id: str
    source_quality: float
    doc_timestamp: float = 0.0

    @property
    def group_key(self) -> tuple[str, str, str]:
        """Candidates sharing this key assert the same (s, p, value)."""
        return (self.entity, self.predicate, self.value.lower())


class Extractor:
    """Interface of every ODKE extractor."""

    name = "base"

    def extract(
        self, document: WebDocument, target: ExtractionTarget
    ) -> list[CandidateFact]:
        """Candidate facts for ``target`` found in ``document``."""
        raise NotImplementedError
