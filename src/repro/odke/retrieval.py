"""Document retrieval for extraction targets.

Figure 6 step ③: run the synthesized queries through web search and gather
"a list of relevant Web documents".  Targeted search is what lets ODKE
sidestep the data-volume challenge — only the top pages per query are ever
touched by extractors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.odke.gaps import ExtractionTarget
from repro.odke.query_synthesizer import QuerySynthesizer
from repro.web.document import WebDocument
from repro.web.search import BM25SearchEngine


@dataclass
class RetrievedDocument:
    """A document retrieved for a target, with its best search evidence."""

    document: WebDocument
    best_rank: int
    best_score: float
    matched_queries: int


class TargetRetriever:
    """Fan queries out to search and merge per-document evidence."""

    def __init__(
        self,
        search: BM25SearchEngine,
        synthesizer: QuerySynthesizer,
        docs_per_query: int = 5,
        max_docs_per_target: int = 10,
    ) -> None:
        self.search = search
        self.synthesizer = synthesizer
        self.docs_per_query = docs_per_query
        self.max_docs_per_target = max_docs_per_target

    def retrieve(self, target: ExtractionTarget) -> list[RetrievedDocument]:
        """Relevant documents for one target, deduplicated across queries.

        A document hit by several query variants accumulates
        ``matched_queries`` — corroboration later treats multi-query hits
        as stronger retrieval evidence.
        """
        merged: dict[str, RetrievedDocument] = {}
        for query in self.synthesizer.synthesize(target):
            for rank, result in enumerate(
                self.search.search(query.text, k=self.docs_per_query)
            ):
                existing = merged.get(result.doc_id)
                if existing is None:
                    merged[result.doc_id] = RetrievedDocument(
                        document=result.document,
                        best_rank=rank,
                        best_score=result.score,
                        matched_queries=1,
                    )
                else:
                    existing.best_rank = min(existing.best_rank, rank)
                    existing.best_score = max(existing.best_score, result.score)
                    existing.matched_queries += 1
        ranked = sorted(
            merged.values(),
            key=lambda item: (-item.matched_queries, item.best_rank, -item.best_score),
        )
        return ranked[: self.max_docs_per_target]
