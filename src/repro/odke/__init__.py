"""§4 — Open-Domain Knowledge Extraction (ODKE)."""

from repro.odke.corroboration import (
    FEATURE_NAMES,
    CorroborationModel,
    EvidenceGroup,
    LabeledGroup,
    featurize_group,
    group_candidates,
    majority_vote,
    select_best_per_target,
    train_corroboration_model,
)
from repro.odke.extractors import (
    AnnotationGuidedExtractor,
    CandidateFact,
    Extractor,
    PatternExtractor,
    StructuredDataExtractor,
    normalize_date,
)
from repro.odke.fusion import FusionEngine, FusionReport
from repro.odke.gaps import ExtractionTarget, GapDetector
from repro.odke.pipeline import (
    ODKEConfig,
    ODKEPipeline,
    ODKEReport,
    build_training_examples,
)
from repro.odke.query_synthesizer import QuerySynthesizer, SynthesizedQuery
from repro.odke.retrieval import RetrievedDocument, TargetRetriever

__all__ = [
    "FEATURE_NAMES",
    "AnnotationGuidedExtractor",
    "CandidateFact",
    "CorroborationModel",
    "EvidenceGroup",
    "ExtractionTarget",
    "Extractor",
    "FusionEngine",
    "FusionReport",
    "GapDetector",
    "LabeledGroup",
    "ODKEConfig",
    "ODKEPipeline",
    "ODKEReport",
    "PatternExtractor",
    "QuerySynthesizer",
    "RetrievedDocument",
    "StructuredDataExtractor",
    "SynthesizedQuery",
    "TargetRetriever",
    "build_training_examples",
    "featurize_group",
    "group_candidates",
    "majority_vote",
    "normalize_date",
    "select_best_per_target",
    "train_corroboration_model",
]
