"""The end-to-end ODKE pipeline (Figure 5).

targets → Query Synthesizer → Web Search → extractors (structured /
pattern / annotation-guided) → corroboration → fusion.

The pipeline owns no policy about *which* gaps matter — callers hand it
:class:`~repro.odke.gaps.ExtractionTarget` lists (usually from
:class:`~repro.odke.gaps.GapDetector`).  Annotation of retrieved pages is
*targeted*: only pages that reach extraction are annotated (and cached),
mirroring how ODKE "leverage[s] annotations … to improve retrieval and
extraction quality" without re-annotating the whole crawl.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.annotation.mention import EntityLink
from repro.annotation.pipeline import AnnotationPipeline
from repro.common.metrics import MetricsRegistry
from repro.kg.ontology import Ontology
from repro.kg.store import TripleStore
from repro.odke.corroboration import (
    CorroborationModel,
    EvidenceGroup,
    LabeledGroup,
    featurize_group,
    group_candidates,
    majority_vote,
    select_best_per_target,
)
from repro.odke.extractors import (
    AnnotationGuidedExtractor,
    CandidateFact,
    PatternExtractor,
    StructuredDataExtractor,
)
from repro.odke.fusion import FusionEngine, FusionReport
from repro.odke.gaps import ExtractionTarget
from repro.odke.query_synthesizer import QuerySynthesizer
from repro.odke.retrieval import TargetRetriever
from repro.web.search import BM25SearchEngine


@dataclass
class ODKEConfig:
    """Pipeline knobs."""

    docs_per_query: int = 5
    max_docs_per_target: int = 8
    queries_per_target: int = 3
    min_probability: float = 0.5
    use_trained_model: bool = True  # False → majority-vote baseline


@dataclass
class ODKEReport:
    """Per-stage accounting of one pipeline run."""

    targets: int = 0
    queries_issued: int = 0
    docs_retrieved: int = 0
    candidates_extracted: int = 0
    groups_formed: int = 0
    accepted: int = 0
    fusion: FusionReport | None = None
    accepted_values: dict[tuple[str, str], tuple[str, float]] = field(
        default_factory=dict
    )

    @property
    def changed_fact_keys(self) -> list[tuple[str, str, str]]:
        """(s, p, o) keys this run's fusion touched in the store.

        What a :class:`~repro.kg.deltas.GenerationPublisher` records per
        run: fusion only ever upserts, so the fused facts' keys cover
        every store mutation.  Keys the resolver ultimately rejected are
        harmless — the publisher reads the store's end state per key, so
        an untouched key contributes nothing to the delta.
        """
        if self.fusion is None:
            return []
        return [fact.key for fact in self.fusion.facts]


class ODKEPipeline:
    """Wires retrieval, extraction, corroboration and fusion together."""

    def __init__(
        self,
        store: TripleStore,
        ontology: Ontology,
        search: BM25SearchEngine,
        annotation_pipeline: AnnotationPipeline,
        corroboration_model: CorroborationModel | None = None,
        config: ODKEConfig | None = None,
        now: float = 0.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.store = store
        self.ontology = ontology
        self.search = search
        self.annotation_pipeline = annotation_pipeline
        self.corroboration_model = corroboration_model
        self.config = config or ODKEConfig()
        self.now = now
        self.metrics = metrics or MetricsRegistry("odke")
        self.synthesizer = QuerySynthesizer(
            store, queries_per_target=self.config.queries_per_target
        )
        self.retriever = TargetRetriever(
            search,
            self.synthesizer,
            docs_per_query=self.config.docs_per_query,
            max_docs_per_target=self.config.max_docs_per_target,
        )
        self.structured = StructuredDataExtractor(store)
        self.patterns = PatternExtractor(store)
        self.neural = AnnotationGuidedExtractor()
        self.fusion_engine = FusionEngine(store, ontology)
        self._link_cache: dict[str, list[EntityLink]] = {}

    # -- stages ------------------------------------------------------------

    def extract_for_target(self, target: ExtractionTarget) -> list[CandidateFact]:
        """Retrieval + all extractors for one target."""
        retrieved = self.retriever.retrieve(target)
        self.metrics.incr("docs.retrieved", len(retrieved))
        candidates: list[CandidateFact] = []
        for item in retrieved:
            doc = item.document
            candidates.extend(self.structured.extract(doc, target))
            candidates.extend(self.patterns.extract(doc, target))
            links = self._links_for(doc.doc_id, doc)
            candidates.extend(self.neural.extract_with_links(doc, target, links))
        self.metrics.incr("candidates", len(candidates))
        return candidates

    def _links_for(self, doc_id: str, doc) -> list[EntityLink]:
        """Targeted annotation with caching (annotate-on-demand)."""
        cached = self._link_cache.get(doc_id)
        if cached is not None:
            self.metrics.incr("annotation.cache_hit")
            return cached
        annotated = self.annotation_pipeline.annotate_document(doc)
        self._link_cache[doc_id] = annotated.links
        self.metrics.incr("annotation.cache_miss")
        return annotated.links

    def corroborate(
        self, candidates: list[CandidateFact]
    ) -> list[tuple[EvidenceGroup, float]]:
        """Group and score candidates (trained model or majority vote)."""
        groups = group_candidates(candidates)
        self.metrics.incr("groups", len(groups))
        if self.config.use_trained_model and self.corroboration_model is not None:
            scored = self.corroboration_model.score_groups(groups, self.now)
        else:
            scored = majority_vote(groups)
        return select_best_per_target(scored, self.config.min_probability)

    def run(self, targets: list[ExtractionTarget], fuse: bool = True) -> ODKEReport:
        """Full pipeline over ``targets``; optionally fuse into the KG."""
        report = ODKEReport(targets=len(targets))
        all_candidates: list[CandidateFact] = []
        for target in targets:
            report.queries_issued += len(self.synthesizer.synthesize(target))
            all_candidates.extend(self.extract_for_target(target))
        report.candidates_extracted = len(all_candidates)
        report.docs_retrieved = int(self.metrics.counters.get("docs.retrieved", 0))
        accepted = self.corroborate(all_candidates)
        report.groups_formed = int(self.metrics.counters.get("groups", 0))
        report.accepted = len(accepted)
        report.accepted_values = {
            (group.entity, group.predicate): (group.value, probability)
            for group, probability in accepted
        }
        if fuse:
            report.fusion = self.fusion_engine.fuse(accepted, now=self.now)
        return report


def build_training_examples(
    pipeline: ODKEPipeline,
    targets: list[ExtractionTarget],
    true_values: dict[tuple[str, str], str],
) -> list[LabeledGroup]:
    """Label evidence groups against known true values (training data).

    ``true_values`` maps (entity, predicate) → correct normalised value;
    groups for targets without a known truth are skipped.  Used to fit the
    corroboration model on a calibration slice disjoint from evaluation
    targets.
    """
    examples: list[LabeledGroup] = []
    for target in targets:
        truth = true_values.get(target.key)
        if truth is None:
            continue
        candidates = pipeline.extract_for_target(target)
        groups = group_candidates(candidates)
        total_support = sum(group.support for group in groups)
        for group in groups:
            examples.append(
                LabeledGroup(
                    features=featurize_group(group, total_support, pipeline.now),
                    label=group.value.lower() == truth.lower(),
                    entity=group.entity,
                    predicate=group.predicate,
                    value=group.value,
                )
            )
    return examples
