"""Corroboration: pick the correct fact among conflicting candidates.

§4 (veracity): "we leverage diverse evidence and signals via a trained
machine learning model as features to corroborate and identify high
quality facts from the list of candidates" — e.g. choosing 1979-07-23 over
1980-09-09 for music-artist Michelle Williams "based on a combination of
evidences such as the number of support, extractor type and confidence,
and quality of the source page."

Candidates are grouped by asserted value; each :class:`EvidenceGroup` is
featurised with exactly those signals and scored by a logistic-regression
model trained on labelled groups.  A support-count majority vote is
provided as the ablation baseline.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ExtractionError
from repro.odke.extractors.base import CandidateFact

FEATURE_NAMES = [
    "log_support",
    "distinct_docs",
    "mean_confidence",
    "max_confidence",
    "mean_source_quality",
    "max_source_quality",
    "extractor_diversity",
    "has_structured",
    "agreement_ratio",
    "recency",
]


@dataclass
class EvidenceGroup:
    """All candidates asserting one (entity, predicate, value)."""

    entity: str
    predicate: str
    value: str
    candidates: list[CandidateFact] = field(default_factory=list)

    @property
    def support(self) -> int:
        return len(self.candidates)

    @property
    def distinct_docs(self) -> int:
        return len({candidate.doc_id for candidate in self.candidates})

    @property
    def extractors(self) -> set[str]:
        return {candidate.extractor for candidate in self.candidates}


def group_candidates(candidates: list[CandidateFact]) -> list[EvidenceGroup]:
    """Group candidates by normalised (entity, predicate, value)."""
    grouped: dict[tuple[str, str, str], EvidenceGroup] = {}
    for candidate in candidates:
        key = candidate.group_key
        if key not in grouped:
            grouped[key] = EvidenceGroup(
                entity=candidate.entity,
                predicate=candidate.predicate,
                value=candidate.value,
            )
        grouped[key].candidates.append(candidate)
    return sorted(grouped.values(), key=lambda g: (g.entity, g.predicate, g.value))


def featurize_group(
    group: EvidenceGroup, total_support: int, now: float, horizon: float = 5 * 365.25 * 24 * 3600
) -> np.ndarray:
    """The §4 evidence signals as a feature vector (see FEATURE_NAMES)."""
    confidences = [candidate.confidence for candidate in group.candidates]
    qualities = [candidate.source_quality for candidate in group.candidates]
    timestamps = [candidate.doc_timestamp for candidate in group.candidates]
    newest_age = max(0.0, now - max(timestamps)) if timestamps else horizon
    return np.array(
        [
            np.log1p(group.support),
            np.log1p(group.distinct_docs),
            float(np.mean(confidences)),
            float(np.max(confidences)),
            float(np.mean(qualities)),
            float(np.max(qualities)),
            len(group.extractors) / 3.0,
            1.0 if "structured" in group.extractors else 0.0,
            group.support / max(total_support, 1),
            max(0.0, 1.0 - newest_age / horizon),
        ],
        dtype=np.float64,
    )


@dataclass
class LabeledGroup:
    """A featurised group with its correctness label (training data)."""

    features: np.ndarray
    label: bool
    entity: str = ""
    predicate: str = ""
    value: str = ""


class CorroborationModel:
    """Logistic regression over evidence features."""

    def __init__(self, weights: np.ndarray, bias: float, mean: np.ndarray, std: np.ndarray) -> None:
        self.weights = weights
        self.bias = bias
        self.mean = mean
        self.std = std

    def probability(self, features: np.ndarray) -> float:
        """P(value is correct | evidence)."""
        standardized = (features - self.mean) / self.std
        z = float(standardized @ self.weights + self.bias)
        return float(1.0 / (1.0 + np.exp(-np.clip(z, -30, 30))))

    def score_groups(
        self, groups: list[EvidenceGroup], now: float
    ) -> list[tuple[EvidenceGroup, float]]:
        """Probability per group (support totals computed per target)."""
        by_target: dict[tuple[str, str], int] = defaultdict(int)
        for group in groups:
            by_target[(group.entity, group.predicate)] += group.support
        return [
            (
                group,
                self.probability(
                    featurize_group(group, by_target[(group.entity, group.predicate)], now)
                ),
            )
            for group in groups
        ]

    def feature_importance(self) -> dict[str, float]:
        """|weight| per feature name, for reporting."""
        return {
            name: abs(float(weight))
            for name, weight in zip(FEATURE_NAMES, self.weights)
        }


def train_corroboration_model(
    examples: list[LabeledGroup],
    learning_rate: float = 0.5,
    epochs: int = 300,
    l2: float = 1e-3,
    seed: int = 0,
) -> CorroborationModel:
    """Fit logistic regression by full-batch gradient descent.

    Features are standardised; training is deterministic in ``seed`` (used
    only for initialisation).
    """
    if not examples:
        raise ExtractionError("cannot train corroboration model on no examples")
    features = np.stack([example.features for example in examples])
    labels = np.array([1.0 if example.label else 0.0 for example in examples])
    if labels.min() == labels.max():
        raise ExtractionError(
            "training data must contain both correct and incorrect groups"
        )
    mean = features.mean(axis=0)
    std = features.std(axis=0)
    std[std == 0] = 1.0
    x = (features - mean) / std

    rng = np.random.default_rng(seed)
    weights = rng.normal(0, 0.01, size=x.shape[1])
    bias = 0.0
    n = len(x)
    for _ in range(epochs):
        z = x @ weights + bias
        predictions = 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))
        error = predictions - labels
        grad_w = x.T @ error / n + l2 * weights
        grad_b = float(error.mean())
        weights -= learning_rate * grad_w
        bias -= learning_rate * grad_b
    return CorroborationModel(weights=weights, bias=bias, mean=mean, std=std)


def majority_vote(
    groups: list[EvidenceGroup],
) -> list[tuple[EvidenceGroup, float]]:
    """Baseline: score = support share within the target (no other signals)."""
    by_target: dict[tuple[str, str], int] = defaultdict(int)
    for group in groups:
        by_target[(group.entity, group.predicate)] += group.support
    return [
        (group, group.support / max(by_target[(group.entity, group.predicate)], 1))
        for group in groups
    ]


def select_best_per_target(
    scored: list[tuple[EvidenceGroup, float]], min_probability: float = 0.5
) -> list[tuple[EvidenceGroup, float]]:
    """Keep the highest-scoring group per (entity, predicate) above threshold."""
    best: dict[tuple[str, str], tuple[EvidenceGroup, float]] = {}
    for group, probability in scored:
        key = (group.entity, group.predicate)
        current = best.get(key)
        if current is None or probability > current[1]:
            best[key] = (group, probability)
    return [
        (group, probability)
        for (group, probability) in best.values()
        if probability >= min_probability
    ]
