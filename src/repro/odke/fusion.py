"""Fusion: write corroborated facts back into the knowledge graph.

The last step of Figure 5: accepted values become KG facts with ODKE
provenance.  Entity-valued predicates need their surface value resolved to
a KG entity through the alias table; literal predicates get the ontology's
datatype.  Writes go through the same conflict-resolution semantics as the
construction pipeline (a functional predicate's existing value is replaced
only by a strictly more confident one).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.annotation.alias_table import AliasTable
from repro.kg.construction import BatchIngestor, KnowledgeSource
from repro.kg.ontology import Ontology
from repro.kg.store import TripleStore
from repro.kg.triple import Fact, entity_fact, literal_fact
from repro.odke.corroboration import EvidenceGroup

ODKE_SOURCE = "odke"


@dataclass
class FusionReport:
    """Outcome of fusing accepted groups into the KG."""

    accepted: int = 0
    written: int = 0
    unresolved_entity_values: int = 0
    schema_rejections: int = 0
    facts: list[Fact] = field(default_factory=list)


class FusionEngine:
    """Resolves values and upserts corroborated facts."""

    def __init__(
        self,
        store: TripleStore,
        ontology: Ontology,
        alias_table: AliasTable | None = None,
        source_trust: float = 0.85,
    ) -> None:
        self.store = store
        self.ontology = ontology
        self.alias_table = alias_table or AliasTable(store)
        self.source_trust = source_trust

    def fuse(
        self, accepted: list[tuple[EvidenceGroup, float]], now: float
    ) -> FusionReport:
        """Write accepted (group, probability) pairs into the store."""
        report = FusionReport(accepted=len(accepted))
        facts: list[Fact] = []
        for group, probability in accepted:
            fact = self._to_fact(group, probability, now, report)
            if fact is not None:
                facts.append(fact)
        ingestor = BatchIngestor(self.store, self.ontology)
        ingest_report = ingestor.ingest(
            [KnowledgeSource(name=ODKE_SOURCE, trust=self.source_trust, facts=facts)]
        )
        report.written = ingest_report.facts_applied
        report.schema_rejections += ingest_report.schema_rejections
        report.facts = facts
        return report

    def _to_fact(
        self,
        group: EvidenceGroup,
        probability: float,
        now: float,
        report: FusionReport,
    ) -> Fact | None:
        if not self.ontology.has_predicate(group.predicate):
            report.schema_rejections += 1
            return None
        schema = self.ontology.schema(group.predicate)
        if schema.is_literal:
            assert schema.literal_type is not None
            return literal_fact(
                group.entity,
                group.predicate,
                group.value,
                schema.literal_type,
                confidence=probability,
                updated_at=now,
            )
        # Entity-valued: resolve the surface through the alias table.
        if self.alias_table.is_stale:
            self.alias_table.refresh()
        entries = self.alias_table.lookup(group.value)
        if not entries:
            entries = self.alias_table.lookup_fuzzy(group.value)
        if not entries:
            report.unresolved_entity_values += 1
            return None
        return entity_fact(
            group.entity,
            group.predicate,
            entries[0].entity,
            confidence=probability,
            updated_at=now,
        )
