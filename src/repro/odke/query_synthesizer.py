"""Query Synthesizer: turn a missing fact into web-search queries.

Figure 6 step ②: for the missing tuple <Michelle Williams (music artist),
date_of_birth, ?> the synthesizer auto-composes queries like "Michelle
Williams singer date of birth".  Following [12], several query variants
are issued per fact; entity-type hint words are appended to steer search
toward the right namesake.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kg.store import TripleStore
from repro.odke.gaps import ExtractionTarget

# predicate local name -> phrasing variants ({name} is substituted).
_TEMPLATES: dict[str, list[str]] = {
    "date_of_birth": [
        "{name} date of birth",
        "{name} born",
        "when was {name} born",
    ],
    "place_of_birth": [
        "{name} place of birth",
        "{name} born in",
        "where was {name} born",
    ],
    "spouse": ["{name} spouse", "{name} married to"],
    "member_of_sports_team": ["{name} team", "{name} plays for"],
    "employer": ["{name} works at", "{name} professor university"],
    "citizen_of": ["{name} nationality", "{name} citizen of"],
    "occupation": ["{name} occupation", "who is {name}"],
    "social_media_followers": ["{name} followers", "{name} social media"],
    "net_worth_musd": ["{name} net worth"],
    "marital_status": ["{name} marital status", "is {name} married"],
}

_DEFAULT_TEMPLATES = ["{name} {predicate_words}", "{name} facts"]

# coarse type -> disambiguating hint word (steers BM25 toward the right
# namesake, mirroring how [12] adds context terms).
_TYPE_HINTS = [
    ("type:basketball_player", "basketball"),
    ("type:cricketer", "cricket"),
    ("type:film", "film"),
    ("type:album", "album"),
]


@dataclass(frozen=True)
class SynthesizedQuery:
    """One search query derived from a target."""

    target_key: tuple[str, str]
    text: str


class QuerySynthesizer:
    """Template-based query generation with entity-type hints."""

    def __init__(self, store: TripleStore, queries_per_target: int = 3) -> None:
        self.store = store
        self.queries_per_target = queries_per_target

    def synthesize(self, target: ExtractionTarget) -> list[SynthesizedQuery]:
        """Queries for one extraction target (empty for unknown entities)."""
        if not self.store.has_entity(target.entity):
            return []
        record = self.store.entity(target.entity)
        local = target.predicate.split(":", 1)[-1]
        templates = _TEMPLATES.get(local, _DEFAULT_TEMPLATES)
        hint = self._type_hint(record.types)
        queries: list[SynthesizedQuery] = []
        for template in templates[: self.queries_per_target]:
            text = template.format(
                name=record.name, predicate_words=local.replace("_", " ")
            )
            if hint:
                text = f"{text} {hint}"
            queries.append(SynthesizedQuery(target_key=target.key, text=text))
        return queries

    @staticmethod
    def _type_hint(types: tuple[str, ...]) -> str:
        type_set = set(types)
        for type_id, hint in _TYPE_HINTS:
            if type_id in type_set:
                return hint
        return ""
