"""Live growth driver: ODKE extraction rounds → published delta generations.

The paper's core loop, closed: the construction tier (ODKE pipeline runs
over extraction targets) streams corroborated facts into the store, and a
:class:`~repro.kg.deltas.GenerationPublisher` turns each cadence of runs
into a cheap delta generation that the serving tier hot-swaps onto (via
``ServingService.adopt_generation`` or a
:class:`~repro.serving.growth.GenerationWatcher`).  The driver owns the
glue only — which fact keys each run touched, when to publish — policy
about *what* to extract stays with the caller (usually
:class:`~repro.odke.gaps.GapDetector` output).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.logging import get_logger
from repro.kg.deltas import GenerationInfo, GenerationPublisher
from repro.odke.gaps import ExtractionTarget
from repro.odke.pipeline import ODKEPipeline, ODKEReport

_log = get_logger("odke.live")


@dataclass
class GrowthStep:
    """One driver step: the extraction run plus its (optional) generation."""

    report: ODKEReport
    generation: GenerationInfo | None

    @property
    def published(self) -> bool:
        return self.generation is not None


class GrowthDriver:
    """Runs ODKE extraction rounds and publishes them as delta generations.

    ``publish_every`` batches N extraction runs per published generation
    (1 = one generation per step); :meth:`flush` force-publishes whatever
    is pending.  ``on_generation`` (if given) fires after each successful
    publish — smoke harnesses and gateways trigger adoption from it.
    """

    def __init__(
        self,
        pipeline: ODKEPipeline,
        publisher: GenerationPublisher,
        *,
        publish_every: int = 1,
        on_generation: Callable[[GenerationInfo], None] | None = None,
    ) -> None:
        if publish_every <= 0:
            raise ValueError(f"publish_every must be positive, got {publish_every}")
        if pipeline.store is not publisher.store:
            raise ValueError("pipeline and publisher must share one store")
        self.pipeline = pipeline
        self.publisher = publisher
        self.publish_every = publish_every
        self.on_generation = on_generation
        self.steps = 0
        self._since_publish = 0

    def step(self, targets: list[ExtractionTarget]) -> GrowthStep:
        """One extraction round; publishes when the cadence comes due."""
        report = self.pipeline.run(targets, fuse=True)
        self.publisher.record(keys=report.changed_fact_keys)
        self.steps += 1
        self._since_publish += 1
        _log.debug(
            "growth.step",
            step=self.steps,
            targets=len(targets),
            changed_keys=len(report.changed_fact_keys),
        )
        generation = None
        if self._since_publish >= self.publish_every:
            generation = self._publish()
        return GrowthStep(report=report, generation=generation)

    def flush(self) -> GenerationInfo | None:
        """Publish pending changes now (cadence-independent)."""
        return self._publish()

    def _publish(self) -> GenerationInfo | None:
        generation = self.publisher.publish()
        self._since_publish = 0
        if generation is not None:
            _log.info(
                "growth.published",
                step=self.steps,
                seq=generation.seq,
                store_version=generation.store_version,
                compacted=generation.compacted,
            )
            if self.on_generation is not None:
                self.on_generation(generation)
        return generation
