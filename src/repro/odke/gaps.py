"""Gap detection: which facts should ODKE go hunt for?

§4 names three ways to find "important missing or stale facts":

1. **reactive** — query-log analysis: user queries that failed because a
   fact is missing (:mod:`repro.kg.query_logs`);
2. **proactive** — KG profiling: entities missing predicates their type
   expects (:mod:`repro.kg.profiling`);
3. **predictive** — trending queries: entities with surging traffic whose
   expected coverage should be completed pre-emptively.

All three paths emit :class:`ExtractionTarget` records which are merged,
deduplicated (summing priority across paths — a gap found by several
detectors matters more) and ranked.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kg.ontology import Ontology
from repro.kg.profiling import KGProfiler
from repro.kg.query_logs import QueryLogAnalyzer, QueryLogEntry
from repro.kg.store import TripleStore


@dataclass(frozen=True)
class ExtractionTarget:
    """A missing or stale fact ODKE should extract.

    ``kind`` is ``missing`` or ``stale``; ``origin`` records which
    detection path produced it (reactive/proactive/trending), which the
    pipeline report breaks down.
    """

    entity: str
    predicate: str
    priority: float
    kind: str = "missing"
    origin: str = "proactive"

    @property
    def key(self) -> tuple[str, str]:
        return (self.entity, self.predicate)


class GapDetector:
    """Runs all three detection paths and merges their targets."""

    def __init__(
        self,
        store: TripleStore,
        ontology: Ontology,
        now: float,
        query_log: list[QueryLogEntry] | None = None,
    ) -> None:
        self.store = store
        self.ontology = ontology
        self.now = now
        self.query_log = query_log or []

    def reactive_targets(self, min_queries: int = 2) -> list[ExtractionTarget]:
        """Unanswered query demand → targets weighted by query volume."""
        analyzer = QueryLogAnalyzer(self.query_log)
        demand = analyzer.unanswered_demand(min_count=min_queries)
        if not demand:
            return []
        max_count = max(item.query_count for item in demand)
        return [
            ExtractionTarget(
                entity=item.entity,
                predicate=item.predicate,
                priority=item.query_count / max_count,
                origin="reactive",
            )
            for item in demand
        ]

    def proactive_targets(self, limit: int | None = None) -> list[ExtractionTarget]:
        """Profiler coverage gaps → targets weighted by entity popularity."""
        profiler = KGProfiler(self.store, self.ontology, now=self.now)
        gaps = profiler.profile().gaps
        if limit is not None:
            gaps = gaps[:limit]
        return [
            ExtractionTarget(
                entity=gap.entity,
                predicate=gap.predicate,
                priority=gap.importance,
                origin="proactive",
            )
            for gap in gaps
        ]

    def stale_targets(self, limit: int | None = None) -> list[ExtractionTarget]:
        """Profiler stale volatile facts → freshness targets."""
        profiler = KGProfiler(self.store, self.ontology, now=self.now)
        stale = profiler.profile().stale
        if limit is not None:
            stale = stale[:limit]
        return [
            ExtractionTarget(
                entity=item.entity,
                predicate=item.predicate,
                priority=item.importance,
                kind="stale",
                origin="proactive",
            )
            for item in stale
        ]

    def trending_targets(
        self, window_seconds: float = 3.5 * 24 * 3600
    ) -> list[ExtractionTarget]:
        """Trending entities × their remaining expected-coverage gaps."""
        analyzer = QueryLogAnalyzer(self.query_log)
        trending = analyzer.trending_entities(self.now, window_seconds)
        targets: list[ExtractionTarget] = []
        for entity in trending:
            if not self.store.has_entity(entity):
                continue
            record = self.store.entity(entity)
            expected: set[str] = set()
            for type_id in record.types:
                if self.ontology.has_type(type_id):
                    expected |= self.ontology.expected_predicates(type_id)
            present = {fact.predicate for fact in self.store.scan(subject=entity)}
            for predicate in sorted(expected - present):
                targets.append(
                    ExtractionTarget(
                        entity=entity,
                        predicate=predicate,
                        priority=0.8,
                        origin="trending",
                    )
                )
        return targets

    def all_targets(
        self,
        max_targets: int | None = None,
        include_stale: bool = True,
    ) -> list[ExtractionTarget]:
        """Merged, deduplicated, priority-ranked targets from all paths."""
        merged: dict[tuple[str, str], ExtractionTarget] = {}
        paths = [
            self.reactive_targets(),
            self.proactive_targets(),
            self.trending_targets(),
        ]
        if include_stale:
            paths.append(self.stale_targets())
        for path_targets in paths:
            for target in path_targets:
                existing = merged.get(target.key)
                if existing is None:
                    merged[target.key] = target
                else:
                    merged[target.key] = ExtractionTarget(
                        entity=target.entity,
                        predicate=target.predicate,
                        priority=existing.priority + target.priority,
                        kind="stale" if "stale" in (existing.kind, target.kind) else "missing",
                        origin=f"{existing.origin}+{target.origin}"
                        if target.origin not in existing.origin
                        else existing.origin,
                    )
        ranked = sorted(merged.values(), key=lambda t: (-t.priority, t.key))
        return ranked[:max_targets] if max_targets is not None else ranked
