"""Global knowledge enrichment with privacy accounting.

§5 (global knowledge enrichment) defines three paths, all implemented
with explicit cost/privacy bookkeeping so the F7-enrich benchmark can
reproduce the trade-off the paper argues:

1. **Static knowledge asset** — a Graph-Engine view of the most popular
   global entities shipped to every device.  Reveals nothing (no
   request), costs its full size in transfer.
2. **Dynamic (piggyback) enrichment** — facts about entities the user
   already asked a server about ride back with the response.  Reveals
   nothing *new* (the query already happened), tiny marginal cost.
3. **Private retrieval** — PIR for entity facts the other paths missed
   (provably reveals nothing, costs ~2·√N blocks per fetch in the
   classic two-server scheme), plus Laplace-mechanism differentially
   private aggregate queries with an ε budget.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import DeviceError
from repro.common.rng import substream
from repro.kg.store import TripleStore
from repro.kg.views import materialize, static_knowledge_asset_view


@dataclass
class EnrichmentReport:
    """Outcome of an enrichment plan for one device."""

    needed: int
    covered_static: int = 0
    covered_piggyback: int = 0
    covered_pir: int = 0
    bytes_static: int = 0
    bytes_piggyback: int = 0
    bytes_pir: int = 0
    revealed_entities: list[str] = field(default_factory=list)
    epsilon_spent: float = 0.0

    @property
    def coverage(self) -> float:
        covered = self.covered_static + self.covered_piggyback + self.covered_pir
        return covered / self.needed if self.needed else 1.0

    @property
    def total_bytes(self) -> int:
        return self.bytes_static + self.bytes_piggyback + self.bytes_pir


def _entity_payload_bytes(store: TripleStore, entity: str) -> int:
    """Approximate serialized size of an entity's facts + descriptor."""
    size = len(json.dumps(store.entity(entity).to_dict()))
    for fact in store.scan(subject=entity):
        size += len(json.dumps(fact.to_dict()))
    return size


class GlobalKnowledgeServer:
    """The server side: global KG + the three enrichment endpoints."""

    def __init__(self, global_store: TripleStore, pir_block_rows: int | None = None) -> None:
        self.store = global_store
        n = max(len(global_store.entity_ids()), 1)
        # Classic 2-server PIR: communication ~ 2·sqrt(N) rows per query.
        self.pir_block_rows = pir_block_rows or max(int(np.ceil(np.sqrt(n))), 1)
        self._avg_row_bytes = self._average_row_bytes()

    def _average_row_bytes(self) -> int:
        entities = self.store.entity_ids()[:50]
        if not entities:
            return 256
        total = sum(_entity_payload_bytes(self.store, entity) for entity in entities)
        return max(total // len(entities), 1)

    def build_static_asset(self, top_k: int) -> tuple[TripleStore, int]:
        """The popular-entities view and its shipped size in bytes."""
        view = materialize(static_knowledge_asset_view(top_k), self.store)
        size = 0
        for record in view.store.entities():
            size += len(json.dumps(record.to_dict()))
        for fact in view.store.scan():
            size += len(json.dumps(fact.to_dict()))
        return view.store, size

    def piggyback(self, entity: str) -> tuple[list, int]:
        """Facts bundled onto an existing user-initiated request."""
        if not self.store.has_entity(entity):
            return [], 0
        facts = list(self.store.scan(subject=entity))
        return facts, _entity_payload_bytes(self.store, entity)

    def pir_fetch(self, entity: str) -> tuple[list, int]:
        """Private fetch: same facts, √N-blocks communication cost.

        The server learns nothing about which entity was fetched; the
        cost model charges two √N-row blocks (query + response vectors).
        """
        if not self.store.has_entity(entity):
            return [], 2 * self.pir_block_rows * self._avg_row_bytes
        facts = list(self.store.scan(subject=entity))
        cost = 2 * self.pir_block_rows * self._avg_row_bytes
        return facts, cost


def dp_count_query(
    true_count: int, epsilon: float, seed: int = 0, sensitivity: float = 1.0
) -> float:
    """Laplace-mechanism differentially private count.

    Used for aggregate preference statistics ("how many rock albums does
    the user play") that personalisation needs without exact disclosure.
    """
    if epsilon <= 0:
        raise DeviceError(f"epsilon must be positive, got {epsilon}")
    rng = substream(seed, "dp-count")
    noise = rng.laplace(0.0, sensitivity / epsilon)
    return float(true_count + noise)


@dataclass
class EnrichmentPlannerConfig:
    """Budgets of the enrichment plan."""

    static_asset_top_k: int = 100
    pir_budget_bytes: int = 500_000
    epsilon_budget: float = 1.0


class EnrichmentPlanner:
    """Covers a device's needed global entities via the cheapest safe path."""

    def __init__(
        self,
        server: GlobalKnowledgeServer,
        config: EnrichmentPlannerConfig | None = None,
    ) -> None:
        self.server = server
        self.config = config or EnrichmentPlannerConfig()

    def enrich(
        self,
        needed_entities: list[str],
        interaction_entities: set[str],
        device_store: TripleStore | None = None,
    ) -> EnrichmentReport:
        """Cover ``needed_entities`` using static → piggyback → PIR.

        ``interaction_entities`` are entities the user *already* queried a
        server about (the piggyback opportunity).  Facts land in
        ``device_store`` when given.
        """
        config = self.config
        report = EnrichmentReport(needed=len(needed_entities))
        asset_store, asset_bytes = self.server.build_static_asset(
            config.static_asset_top_k
        )
        report.bytes_static = asset_bytes
        asset_entities = set(asset_store.entity_ids())

        remaining: list[str] = []
        for entity in needed_entities:
            if entity in asset_entities:
                report.covered_static += 1
                if device_store is not None:
                    _copy_entity(asset_store, device_store, entity)
            else:
                remaining.append(entity)

        still_remaining: list[str] = []
        for entity in remaining:
            if entity in interaction_entities:
                facts, cost = self.server.piggyback(entity)
                if facts:
                    report.covered_piggyback += 1
                    report.bytes_piggyback += cost
                    report.revealed_entities.append(entity)
                    if device_store is not None:
                        _install(self.server.store, device_store, entity, facts)
                    continue
            still_remaining.append(entity)

        for entity in still_remaining:
            if report.bytes_pir >= config.pir_budget_bytes:
                break
            facts, cost = self.server.pir_fetch(entity)
            report.bytes_pir += cost
            if facts:
                report.covered_pir += 1
                if device_store is not None:
                    _install(self.server.store, device_store, entity, facts)
        return report


def _copy_entity(source: TripleStore, target: TripleStore, entity: str) -> None:
    target.upsert_entity(source.entity(entity))
    for fact in source.scan(subject=entity):
        target.add(fact)


def _install(source: TripleStore, target: TripleStore, entity: str, facts: list) -> None:
    if source.has_entity(entity):
        target.upsert_entity(source.entity(entity))
    for fact in facts:
        target.add(fact)
