"""Model compression for on-device deployment.

§5: "On-device ML models are kept small by engineering smaller model
architectures (e.g., fewer and more narrow neural layers); compressing
learned models (e.g., by floating point precision reduction); or by
distillation."

Three corresponding tools over the vector models this library deploys
on-device (context encoders, embedding tables):

* :func:`quantize_vectors` — fp32 → fp16 / int8 precision reduction with
  size accounting and a reconstruction for quality measurement;
* :func:`random_projection` — dimensionality distillation: project a
  teacher's d-dim vectors to a narrower student space with a seeded
  Johnson–Lindenstrauss matrix;
* :func:`compression_quality` — how well the compressed space preserves
  the teacher's nearest-neighbour structure (overlap@k), the quality
  metric the F7 benchmark sweeps against size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import DeviceError
from repro.common.rng import substream
from repro.vector.similarity import normalize_rows

FP32 = "fp32"
FP16 = "fp16"
INT8 = "int8"

MODES = (FP32, FP16, INT8)


@dataclass
class QuantizedVectors:
    """Compressed vectors plus their storage cost and reconstruction."""

    mode: str
    nbytes: int
    reconstructed: np.ndarray  # dequantized back to float64 for use


def int8_codes(vectors: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric per-row int8 codes and their ``(n, 1)`` float64 scales.

    The encoding half of :func:`quantize_vectors`'s ``int8`` mode, split
    out so the ANN shortlist path (``repro.vector.index.IVFIndex``) and
    the persisted embedding layer share one code/scale scheme.  A code
    reconstructs as ``codes / 127.0 * scales``.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    scales = np.max(np.abs(vectors), axis=1, keepdims=True)
    scales[scales == 0] = 1.0
    codes = np.clip(np.round(vectors / scales * 127.0), -127, 127).astype(np.int8)
    return codes, scales


def quantize_vectors(vectors: np.ndarray, mode: str = FP16) -> QuantizedVectors:
    """Precision-reduce ``vectors``; returns storage size + reconstruction.

    ``int8`` uses symmetric per-row scales (one fp32 scale per row is
    included in the byte count).
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if mode == FP32:
        encoded = vectors.astype(np.float32)
        return QuantizedVectors(
            mode=mode, nbytes=encoded.nbytes, reconstructed=encoded.astype(np.float64)
        )
    if mode == FP16:
        encoded = vectors.astype(np.float16)
        return QuantizedVectors(
            mode=mode, nbytes=encoded.nbytes, reconstructed=encoded.astype(np.float64)
        )
    if mode == INT8:
        quantized, scales = int8_codes(vectors)
        reconstructed = quantized.astype(np.float64) / 127.0 * scales
        nbytes = quantized.nbytes + scales.astype(np.float32).nbytes
        return QuantizedVectors(mode=mode, nbytes=nbytes, reconstructed=reconstructed)
    raise DeviceError(f"unknown quantization mode {mode!r}; choose from {MODES}")


def random_projection(
    vectors: np.ndarray, target_dim: int, seed: int = 0
) -> np.ndarray:
    """Distill vectors into ``target_dim`` dimensions (JL projection).

    Rows are re-normalised so cosine comparisons remain meaningful in the
    student space.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if target_dim <= 0:
        raise DeviceError(f"target_dim must be positive, got {target_dim}")
    if target_dim >= vectors.shape[1]:
        return normalize_rows(vectors)
    rng = substream(seed, "random-projection")
    projection = rng.normal(0.0, 1.0 / np.sqrt(target_dim), size=(vectors.shape[1], target_dim))
    return normalize_rows(vectors @ projection)


def pca_projection(vectors: np.ndarray, target_dim: int) -> np.ndarray:
    """Distill vectors into their top-``target_dim`` principal components.

    The data-aware alternative to :func:`random_projection` — the "smaller
    model architecture engineered from the teacher" flavour of §5's
    distillation.  Deterministic (no randomness involved).
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if target_dim <= 0:
        raise DeviceError(f"target_dim must be positive, got {target_dim}")
    if target_dim >= vectors.shape[1]:
        return normalize_rows(vectors)
    centered = vectors - vectors.mean(axis=0, keepdims=True)
    _u, _s, vt = np.linalg.svd(centered, full_matrices=False)
    return normalize_rows(centered @ vt[:target_dim].T)


def knn_overlap(
    teacher: np.ndarray, student: np.ndarray, k: int = 5, num_queries: int | None = None
) -> float:
    """Mean overlap@k between teacher and student nearest-neighbour sets.

    The quality measure for compression: 1.0 means the compressed space
    ranks neighbours identically.
    """
    teacher = normalize_rows(np.asarray(teacher, dtype=np.float64))
    student = normalize_rows(np.asarray(student, dtype=np.float64))
    if teacher.shape[0] != student.shape[0]:
        raise DeviceError("teacher and student must cover the same rows")
    n = teacher.shape[0]
    if n <= 1:
        return 1.0
    queries = range(n if num_queries is None else min(num_queries, n))
    k = min(k, n - 1)
    total = 0.0
    count = 0
    for i in queries:
        teacher_scores = teacher @ teacher[i]
        student_scores = student @ student[i]
        teacher_scores[i] = -np.inf
        student_scores[i] = -np.inf
        top_teacher = set(np.argsort(-teacher_scores, kind="mergesort")[:k].tolist())
        top_student = set(np.argsort(-student_scores, kind="mergesort")[:k].tolist())
        total += len(top_teacher & top_student) / k
        count += 1
    return total / count if count else 1.0


@dataclass
class CompressionReport:
    """Size/quality of one compression configuration."""

    mode: str
    dim: int
    nbytes: int
    overlap_at_5: float


def sweep_compression(
    vectors: np.ndarray,
    modes: tuple[str, ...] = MODES,
    distill_dims: tuple[int, ...] = (),
    seed: int = 0,
) -> list[CompressionReport]:
    """Quality/size grid over quantization modes and distilled widths."""
    vectors = np.asarray(vectors, dtype=np.float64)
    reports: list[CompressionReport] = []
    for mode in modes:
        quantized = quantize_vectors(vectors, mode)
        reports.append(
            CompressionReport(
                mode=mode,
                dim=vectors.shape[1],
                nbytes=quantized.nbytes,
                overlap_at_5=knn_overlap(vectors, quantized.reconstructed),
            )
        )
    for dim in distill_dims:
        for label, student in (
            ("rand", random_projection(vectors, dim, seed=seed)),
            ("pca", pca_projection(vectors, dim)),
        ):
            quantized = quantize_vectors(student, FP16)
            reports.append(
                CompressionReport(
                    mode=f"distill{dim}-{label}+fp16",
                    dim=dim,
                    nbytes=quantized.nbytes,
                    overlap_at_5=knn_overlap(vectors, student),
                )
            )
    return reports
