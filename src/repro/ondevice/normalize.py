"""Normalisation of personal-record attributes.

Figure 7 links the contact "+1 (123) 555 1234" to the message sender
"123-555-1234": phones must compare equal across formats, emails
case-insensitively, names fuzzily.  These helpers produce canonical keys
for blocking and strong-evidence comparison in matching.
"""

from __future__ import annotations

import re

from repro.common.text import normalize_name

_DIGITS_RE = re.compile(r"\d")


def normalize_phone(raw: str, default_country: str = "1") -> str:
    """Canonical phone: digits only with a country prefix.

    >>> normalize_phone("+1 (123) 555 1234")
    '11235551234'
    >>> normalize_phone("123-555-1234")
    '11235551234'
    """
    digits = "".join(_DIGITS_RE.findall(raw))
    if not digits:
        return ""
    if len(digits) == 10:  # national format without country code
        digits = default_country + digits
    return digits


def normalize_email(raw: str) -> str:
    """Canonical email: trimmed, lowercased (empty for non-addresses)."""
    email = raw.strip().lower()
    return email if "@" in email else ""


def name_key(raw: str) -> str:
    """Blocking key for a person name: normalised full string."""
    return normalize_name(raw)


def name_token_keys(raw: str) -> list[str]:
    """Per-token blocking keys (catches 'Tim' vs 'Tim Smith')."""
    return [token for token in normalize_name(raw).split() if len(token) > 1]
