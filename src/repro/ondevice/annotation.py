"""On-device semantic annotation with personal contextual relevance.

§5: for the utterance "message Tim that I've added comments to the SIGMOD
draft", "a coworker that has meetings and conversations with the user
about 'SIGMOD' should be ranked above other less relevant contacts named
Tim."  Same architecture as the server-side annotator, with compact models
"optimized for on-device deployment":

* a narrow :class:`~repro.annotation.context_encoder.HashingContextEncoder`
  (64 dims instead of 256),
* person context vectors built from each contact's *interaction history*
  (their messages and calendar events), optionally quantized to int8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.annotation.alias_table import AliasTable
from repro.annotation.context_encoder import HashingContextEncoder
from repro.annotation.mention import Candidate, EntityLink, Mention
from repro.annotation.mention_detection import (
    DictionaryMentionDetector,
    MentionDetectorConfig,
)
from repro.common.text import content_tokens
from repro.kg.store import TripleStore
from repro.ondevice.compression import INT8, quantize_vectors
from repro.ondevice.fusion import FusedPerson
from repro.ondevice.records import CALENDAR, MESSAGES, SourceRecord
from repro.vector.similarity import normalize_rows


@dataclass
class PersonalAnnotatorConfig:
    """Compact-model knobs."""

    encoder_dim: int = 64
    weight_prior: float = 0.3
    weight_context: float = 2.0
    nil_threshold: float = 0.05
    quantize_int8: bool = False


class PersonalContextIndex:
    """Per-person interaction-context embeddings.

    A person's context vector hashes the text of every message they sent
    and every event they attend — the on-device analogue of the entity
    context index, built from private data that never leaves the device.
    """

    def __init__(
        self,
        people: list[FusedPerson],
        clusters: dict[str, list[SourceRecord]],
        encoder: HashingContextEncoder,
        quantize_int8: bool = False,
    ) -> None:
        self.encoder = encoder
        membership: dict[str, FusedPerson] = {}
        for person, members in _people_with_members(people, clusters):
            for record in members:
                membership[record.record_id] = person
        texts: dict[str, list[str]] = {person.entity: [] for person in people}
        for person, members in _people_with_members(people, clusters):
            for record in members:
                if record.source == MESSAGES:
                    texts[person.entity].append(str(record.get("text")))
                elif record.source == CALENDAR:
                    texts[person.entity].append(str(record.get("title")))
        self._entities = [person.entity for person in people]
        matrix = np.stack(
            [
                encoder.encode_tokens(
                    [
                        token
                        for text in texts[entity]
                        for token in content_tokens(text)
                    ]
                )
                for entity in self._entities
            ]
        ) if people else np.zeros((0, encoder.dim))
        if quantize_int8 and len(matrix):
            matrix = quantize_vectors(matrix, INT8).reconstructed
            matrix = normalize_rows(matrix)
        self._vectors = {
            entity: matrix[i] for i, entity in enumerate(self._entities)
        }

    def similarity(self, query_vector: np.ndarray, entity: str) -> float:
        """Cosine between an utterance vector and a person's context."""
        vector = self._vectors.get(entity)
        if vector is None:
            return 0.0
        return float(np.dot(query_vector, vector))


def _people_with_members(
    people: list[FusedPerson], clusters: dict[str, list[SourceRecord]]
) -> list[tuple[FusedPerson, list[SourceRecord]]]:
    by_records: dict[tuple[str, ...], list[SourceRecord]] = {
        tuple(sorted(record.record_id for record in members)): members
        for members in clusters.values()
    }
    out: list[tuple[FusedPerson, list[SourceRecord]]] = []
    for person in people:
        members = by_records.get(tuple(person.record_ids))
        if members is not None:
            out.append((person, members))
    return out


class PersonalAnnotator:
    """Annotate utterances against the personal KG with context ranking."""

    def __init__(
        self,
        store: TripleStore,
        people: list[FusedPerson],
        clusters: dict[str, list[SourceRecord]],
        config: PersonalAnnotatorConfig | None = None,
    ) -> None:
        self.config = config or PersonalAnnotatorConfig()
        self.store = store
        self.alias_table = AliasTable(store)
        self.detector = DictionaryMentionDetector(
            self.alias_table, MentionDetectorConfig(max_ngram=3)
        )
        self.encoder = HashingContextEncoder(dim=self.config.encoder_dim)
        self.context_index = PersonalContextIndex(
            people, clusters, self.encoder, quantize_int8=self.config.quantize_int8
        )

    def annotate(self, utterance: str) -> list[EntityLink]:
        """Entity links for one utterance, context-ranked."""
        cfg = self.config
        mentions = self.detector.detect(utterance)
        links: list[EntityLink] = []
        for mention in mentions:
            entries = self.alias_table.lookup(mention.surface)
            if not entries:
                continue
            query_vector = self._query_vector(utterance, mention)
            candidates = [
                Candidate(
                    entity=entry.entity,
                    prior=entry.prior,
                    # Clamp at zero: a context mismatch should not veto a
                    # link, only fail to boost it (hashed cosines can go
                    # negative on unrelated text).
                    context_similarity=max(
                        0.0,
                        self.context_index.similarity(query_vector, entry.entity),
                    ),
                )
                for entry in entries
            ]
            for candidate in candidates:
                candidate.score = (
                    cfg.weight_prior * candidate.prior
                    + cfg.weight_context * candidate.context_similarity
                )
            candidates.sort(key=lambda c: (-c.score, c.entity))
            best = candidates[0]
            if best.score < cfg.nil_threshold:
                continue
            links.append(
                EntityLink(
                    mention=mention,
                    entity=best.entity,
                    score=best.score,
                    entity_type="PERSON",
                    candidates=candidates,
                )
            )
        return links

    def _query_vector(self, utterance: str, mention: Mention) -> np.ndarray:
        window = utterance[: mention.start] + " " + utterance[mention.end :]
        return self.encoder.encode_text(window)
