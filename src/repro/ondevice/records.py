"""Source records: the raw per-device data of §5.

Personal devices expose "multiple sources of overlapping information"
(contacts, message senders, calendar invitees) in "different formats and
namespaces" — each with its own record shape.  These dataclasses are the
normalised-enough common denominator the construction pipeline ingests;
ground-truth person ids ride along for evaluation only.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

CONTACTS = "contacts"
MESSAGES = "messages"
CALENDAR = "calendar"

ALL_SOURCES = (CONTACTS, MESSAGES, CALENDAR)


@dataclass(frozen=True)
class SourceRecord:
    """One record from one on-device source.

    ``fields`` carries the source-specific payload:

    * contacts: ``first_name``, ``last_name``, ``phone``, ``email``
    * messages: ``sender_name``, ``sender_number``, ``text``, ``timestamp``
    * calendar: ``title``, ``attendee_name``, ``attendee_email``, ``start``

    ``true_person`` is generator ground truth (evaluation only).
    """

    record_id: str
    source: str
    fields: dict[str, Any] = field(default_factory=dict, hash=False)
    true_person: str = ""
    sequence: int = 0

    def __hash__(self) -> int:  # fields dict is excluded from identity
        return hash((self.record_id, self.source))

    def get(self, key: str, default: Any = "") -> Any:
        """Field accessor with default."""
        return self.fields.get(key, default)

    @property
    def display_name(self) -> str:
        """Best-effort person name in this record."""
        if self.source == CONTACTS:
            first = self.get("first_name")
            last = self.get("last_name")
            return f"{first} {last}".strip()
        if self.source == MESSAGES:
            return str(self.get("sender_name"))
        if self.source == CALENDAR:
            return str(self.get("attendee_name"))
        return ""

    @property
    def phone(self) -> str:
        """Raw phone number if the source carries one."""
        if self.source == CONTACTS:
            return str(self.get("phone"))
        if self.source == MESSAGES:
            return str(self.get("sender_number"))
        return ""

    @property
    def email(self) -> str:
        """Raw email if the source carries one."""
        if self.source == CONTACTS:
            return str(self.get("email"))
        if self.source == CALENDAR:
            return str(self.get("attendee_email"))
        return ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "record_id": self.record_id,
            "source": self.source,
            "fields": self.fields,
            "true_person": self.true_person,
            "sequence": self.sequence,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SourceRecord":
        return cls(
            record_id=payload["record_id"],
            source=payload["source"],
            fields=payload.get("fields", {}),
            true_person=payload.get("true_person", ""),
            sequence=payload.get("sequence", 0),
        )


def record_lww_key(record: SourceRecord) -> tuple[int, str]:
    """Total order for last-writer-wins merges of the same record id.

    ``sequence`` decides; canonical-JSON content breaks ties so two
    devices holding *different* same-sequence writes converge on the same
    winner regardless of exchange order (instead of each keeping its own).
    An incoming record replaces an existing one only when its key is
    strictly greater — re-adding an identical record is a no-op.
    """
    return (record.sequence, json.dumps(record.to_dict(), sort_keys=True))
