"""Graph fusion: matched records become unified Person entities.

Figure 7's outcome: contact + message sender + calendar invitee collapse
into one Person with given name, family name, phone (with category) and
email drawn from all three sources.  Clustering is union-find over match
decisions; each cluster is fused into the personal KG (a regular
:class:`~repro.kg.store.TripleStore` under the personal ontology).

Pairwise precision/recall against generator ground truth is the standard
entity-resolution quality metric (reported by the F7 benchmark).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.common import ids
from repro.kg.store import EntityRecord, TripleStore
from repro.kg.triple import LiteralType, literal_fact
from repro.ondevice.matching import MatchDecision
from repro.ondevice.normalize import normalize_email, normalize_phone
from repro.ondevice.records import CONTACTS, SourceRecord


class UnionFind:
    """Path-compressed union-find over string keys."""

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}

    def find(self, key: str) -> str:
        parent = self._parent.setdefault(key, key)
        if parent != key:
            root = self.find(parent)
            self._parent[key] = root
            return root
        return key

    def union(self, a: str, b: str) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            # Deterministic: smaller id wins as root.
            if root_b < root_a:
                root_a, root_b = root_b, root_a
            self._parent[root_b] = root_a

    def clusters(self, keys: list[str]) -> dict[str, list[str]]:
        """root → sorted members, for all ``keys``."""
        grouped: dict[str, list[str]] = defaultdict(list)
        for key in keys:
            grouped[self.find(key)].append(key)
        return {root: sorted(members) for root, members in grouped.items()}


@dataclass
class FusedPerson:
    """One unified person entity and its consolidated attributes."""

    entity: str
    name: str
    given_name: str
    family_name: str
    phones: list[str]
    emails: list[str]
    record_ids: list[str]
    sources: list[str]


def cluster_records(
    records: list[SourceRecord], decisions: list[MatchDecision]
) -> dict[str, list[SourceRecord]]:
    """Union-find clusters from positive match decisions."""
    uf = UnionFind()
    by_id = {record.record_id: record for record in records}
    for record in records:
        uf.find(record.record_id)
    for decision in decisions:
        if decision.matched:
            uf.union(decision.left, decision.right)
    clusters = uf.clusters(list(by_id))
    return {
        root: [by_id[member] for member in members]
        for root, members in clusters.items()
    }


def fuse_cluster(cluster_index: int, members: list[SourceRecord]) -> FusedPerson:
    """Consolidate one cluster into a unified person.

    Contacts are the most structured source, so their name fields win when
    present; phones/emails union across all members (normalised, deduped).
    """
    given = ""
    family = ""
    name_votes: Counter[str] = Counter()
    phones: dict[str, None] = {}
    emails: dict[str, None] = {}
    for record in members:
        if record.source == CONTACTS and not given:
            given = str(record.get("first_name"))
            family = str(record.get("last_name"))
        display = record.display_name.strip()
        if display:
            name_votes[display] += 1
        phone = normalize_phone(record.phone)
        if phone:
            phones[phone] = None
        email = normalize_email(record.email)
        if email:
            emails[email] = None
    # Prefer the most common multi-token display name.
    best_name = ""
    for candidate, _count in name_votes.most_common():
        if " " in candidate:
            best_name = candidate
            break
    if not best_name and name_votes:
        best_name = name_votes.most_common(1)[0][0]
    if not given and best_name:
        parts = best_name.split()
        given = parts[0]
        family = parts[-1] if len(parts) > 1 else ""
    return FusedPerson(
        entity=ids.entity_id(f"personal/person-{cluster_index:04d}"),
        name=best_name or f"{given} {family}".strip(),
        given_name=given,
        family_name=family,
        phones=sorted(phones),
        emails=sorted(emails),
        record_ids=sorted(record.record_id for record in members),
        sources=sorted({record.source for record in members}),
    )


def build_personal_kg(
    clusters: dict[str, list[SourceRecord]],
) -> tuple[TripleStore, list[FusedPerson]]:
    """Personal knowledge graph from fused clusters (Figure 7's output)."""
    store = TripleStore(name="personal-kg")
    people: list[FusedPerson] = []
    for index, root in enumerate(sorted(clusters)):
        person = fuse_cluster(index, clusters[root])
        people.append(person)
        aliases = tuple(
            sorted({person.given_name, person.family_name} - {"", person.name})
        )
        store.upsert_entity(
            EntityRecord(
                entity=person.entity,
                name=person.name,
                types=(ids.type_id("person"),),
                aliases=aliases,
                description=f"{person.name} is a personal contact.",
                popularity=float(len(person.record_ids)),
            )
        )
        facts = []
        if person.given_name:
            facts.append(("given_name", person.given_name, LiteralType.STRING))
        if person.family_name:
            facts.append(("family_name", person.family_name, LiteralType.STRING))
        for phone in person.phones:
            facts.append(("phone_number", phone, LiteralType.IDENTIFIER))
        for email in person.emails:
            facts.append(("email_address", email, LiteralType.IDENTIFIER))
        for local, value, literal_type in facts:
            store.add(
                literal_fact(
                    person.entity,
                    ids.predicate_id(local),
                    value,
                    literal_type,
                    sources=tuple(f"source:{s}" for s in person.sources),
                )
            )
    return store, people


@dataclass
class ClusterQualityReport:
    """Pairwise entity-resolution quality vs. ground truth."""

    precision: float
    recall: float
    f1: float
    num_clusters: int
    num_true_persons: int


def evaluate_clusters(
    clusters: dict[str, list[SourceRecord]]
) -> ClusterQualityReport:
    """Pairwise P/R/F1 using the records' ``true_person`` labels."""
    predicted_pairs: set[tuple[str, str]] = set()
    for members in clusters.values():
        rids = sorted(record.record_id for record in members)
        for i, left in enumerate(rids):
            for right in rids[i + 1 :]:
                predicted_pairs.add((left, right))

    by_truth: dict[str, list[str]] = defaultdict(list)
    for members in clusters.values():
        for record in members:
            if record.true_person:
                by_truth[record.true_person].append(record.record_id)
    true_pairs: set[tuple[str, str]] = set()
    for rids in by_truth.values():
        rids = sorted(rids)
        for i, left in enumerate(rids):
            for right in rids[i + 1 :]:
                true_pairs.add((left, right))

    tp = len(predicted_pairs & true_pairs)
    precision = tp / len(predicted_pairs) if predicted_pairs else 1.0
    recall = tp / len(true_pairs) if true_pairs else 1.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return ClusterQualityReport(
        precision=precision,
        recall=recall,
        f1=f1,
        num_clusters=len(clusters),
        num_true_persons=len(by_truth),
    )
