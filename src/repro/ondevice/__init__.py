"""§5 — Private on-device knowledge platform."""

from repro.ondevice.annotation import (
    PersonalAnnotator,
    PersonalAnnotatorConfig,
    PersonalContextIndex,
)
from repro.ondevice.blocking import BlockingStats, MemoryBoundedBlocker, blocking_keys
from repro.ondevice.compression import (
    FP16,
    FP32,
    INT8,
    CompressionReport,
    QuantizedVectors,
    knn_overlap,
    pca_projection,
    quantize_vectors,
    random_projection,
    sweep_compression,
)
from repro.ondevice.device import Device, DeviceProfile
from repro.ondevice.enrichment import (
    EnrichmentPlanner,
    EnrichmentPlannerConfig,
    EnrichmentReport,
    GlobalKnowledgeServer,
    dp_count_query,
)
from repro.ondevice.fusion import (
    ClusterQualityReport,
    FusedPerson,
    UnionFind,
    build_personal_kg,
    cluster_records,
    evaluate_clusters,
    fuse_cluster,
)
from repro.ondevice.incremental import (
    IncrementalPipeline,
    IncrementalPipelineConfig,
    Phase,
    PipelineResult,
    StepReport,
)
from repro.ondevice.matching import EntityMatcher, MatchConfig, MatchDecision
from repro.ondevice.normalize import (
    name_key,
    name_token_keys,
    normalize_email,
    normalize_phone,
)
from repro.ondevice.records import (
    ALL_SOURCES,
    CALENDAR,
    CONTACTS,
    MESSAGES,
    SourceRecord,
)
from repro.ondevice.sources import (
    DeviceDataset,
    Persona,
    PersonaWorldConfig,
    generate_device_dataset,
    generate_personas,
)
from repro.ondevice.sync import (
    SyncCoordinator,
    SyncRoundReport,
    kg_signature,
    offload_construction,
)

__all__ = [
    "ALL_SOURCES",
    "CALENDAR",
    "CONTACTS",
    "MESSAGES",
    "FP16",
    "FP32",
    "INT8",
    "BlockingStats",
    "ClusterQualityReport",
    "CompressionReport",
    "Device",
    "DeviceDataset",
    "DeviceProfile",
    "EnrichmentPlanner",
    "EnrichmentPlannerConfig",
    "EnrichmentReport",
    "EntityMatcher",
    "FusedPerson",
    "GlobalKnowledgeServer",
    "IncrementalPipeline",
    "IncrementalPipelineConfig",
    "MatchConfig",
    "MatchDecision",
    "MemoryBoundedBlocker",
    "Persona",
    "PersonaWorldConfig",
    "PersonalAnnotator",
    "PersonalAnnotatorConfig",
    "PersonalContextIndex",
    "Phase",
    "PipelineResult",
    "QuantizedVectors",
    "SourceRecord",
    "StepReport",
    "SyncCoordinator",
    "SyncRoundReport",
    "UnionFind",
    "blocking_keys",
    "build_personal_kg",
    "cluster_records",
    "dp_count_query",
    "evaluate_clusters",
    "fuse_cluster",
    "generate_device_dataset",
    "generate_personas",
    "kg_signature",
    "knn_overlap",
    "name_key",
    "name_token_keys",
    "normalize_email",
    "normalize_phone",
    "offload_construction",
    "pca_projection",
    "quantize_vectors",
    "random_projection",
    "sweep_compression",
]
