"""Incremental, pausable, checkpointed personal-KG construction.

§5 (privacy): "we implement an incremental continuous construction
pipeline.  This pipeline can be paused and resumed at any point without
losing state, allowing deferral of the construction process in favor of
any other higher priority task."

The pipeline advances in budgeted :meth:`step` calls (units ≈ records
ingested / pairs scored).  Between any two steps it can be checkpointed to
JSON and resumed — in the same process or a fresh one — and the final KG
is byte-identical to an uninterrupted run (tested property).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Any

from repro.common.errors import PipelineStateError
from repro.kg.store import TripleStore
from repro.ondevice.blocking import MemoryBoundedBlocker
from repro.ondevice.fusion import (
    FusedPerson,
    build_personal_kg,
    cluster_records,
)
from repro.ondevice.matching import EntityMatcher, MatchConfig, MatchDecision
from repro.ondevice.records import SourceRecord


class Phase(str, Enum):
    """Pipeline phases, in order."""

    INGEST = "ingest"
    BLOCK = "block"
    MATCH = "match"
    FUSE = "fuse"
    DONE = "done"


@dataclass
class StepReport:
    """What one budgeted step accomplished."""

    phase_before: Phase
    phase_after: Phase
    units_used: int


@dataclass
class PipelineResult:
    """Final output of a completed pipeline."""

    store: TripleStore
    people: list[FusedPerson]
    clusters: dict[str, list[SourceRecord]]


@dataclass
class IncrementalPipelineConfig:
    """Budgets and matcher settings."""

    memory_budget_keys: int = 10_000
    max_block_size: int = 64
    match: MatchConfig = field(default_factory=MatchConfig)


class IncrementalPipeline:
    """Budget-stepped construction: ingest → block → match → fuse."""

    def __init__(
        self,
        records: list[SourceRecord],
        config: IncrementalPipelineConfig | None = None,
    ) -> None:
        self.config = config or IncrementalPipelineConfig()
        self.phase = Phase.INGEST
        self._pending: list[SourceRecord] = sorted(
            records, key=lambda r: r.record_id
        )
        self._ingested: list[SourceRecord] = []
        self._pairs: list[tuple[str, str]] = []
        self._decisions: list[MatchDecision] = []
        self._result: PipelineResult | None = None
        self.total_units = 0

    # -- driving ------------------------------------------------------------

    def step(self, budget: int) -> StepReport:
        """Advance the pipeline by up to ``budget`` work units."""
        if budget <= 0:
            raise PipelineStateError(f"step budget must be positive, got {budget}")
        if self.phase is Phase.DONE:
            return StepReport(Phase.DONE, Phase.DONE, 0)
        before = self.phase
        used = 0
        while budget > 0 and self.phase is not Phase.DONE:
            if self.phase is Phase.INGEST:
                consumed = self._step_ingest(budget)
            elif self.phase is Phase.BLOCK:
                consumed = self._step_block(budget)
            elif self.phase is Phase.MATCH:
                consumed = self._step_match(budget)
            else:
                consumed = self._step_fuse(budget)
            if consumed == 0:
                break
            budget -= consumed
            used += consumed
        self.total_units += used
        return StepReport(phase_before=before, phase_after=self.phase, units_used=used)

    def run_to_completion(self, step_budget: int = 256) -> PipelineResult:
        """Repeated steps until DONE; returns the result."""
        while self.phase is not Phase.DONE:
            self.step(step_budget)
        assert self._result is not None
        return self._result

    @property
    def is_done(self) -> bool:
        return self.phase is Phase.DONE

    def result(self) -> PipelineResult:
        """The final output (raises before completion)."""
        if self._result is None:
            raise PipelineStateError("pipeline has not completed yet")
        return self._result

    @property
    def progress(self) -> dict[str, int]:
        """Queue depths, for UIs/tests."""
        return {
            "pending_records": len(self._pending),
            "ingested_records": len(self._ingested),
            "pending_pairs": len(self._pairs),
            "decisions": len(self._decisions),
        }

    # -- phases -------------------------------------------------------------

    def _step_ingest(self, budget: int) -> int:
        take = min(budget, len(self._pending))
        for _ in range(take):
            self._ingested.append(self._pending.pop(0))
        if not self._pending:
            self.phase = Phase.BLOCK
        # An empty ingest (no records at all) still charges one unit for
        # the phase transition so step() always makes progress.
        return max(take, 1)

    def _step_block(self, budget: int) -> int:
        """Blocking runs as one atomic (but budget-charged) unit of work."""
        blocker = MemoryBoundedBlocker(
            memory_budget_keys=self.config.memory_budget_keys,
            max_block_size=self.config.max_block_size,
        )
        pairs = blocker.candidate_pairs(self._ingested)
        self._pairs = [(left.record_id, right.record_id) for left, right in pairs]
        self.phase = Phase.MATCH
        return 1

    def _step_match(self, budget: int) -> int:
        by_id = {record.record_id: record for record in self._ingested}
        matcher = EntityMatcher(self.config.match)
        take = min(budget, len(self._pairs))
        for _ in range(take):
            left_id, right_id = self._pairs.pop(0)
            self._decisions.append(
                matcher.score_pair(by_id[left_id], by_id[right_id])
            )
        if not self._pairs:
            self.phase = Phase.FUSE
        return max(take, 1)

    def _step_fuse(self, budget: int) -> int:
        clusters = cluster_records(self._ingested, self._decisions)
        store, people = build_personal_kg(clusters)
        self._result = PipelineResult(store=store, people=people, clusters=clusters)
        self.phase = Phase.DONE
        return 1

    # -- checkpointing ------------------------------------------------------

    def checkpoint(self) -> dict[str, Any]:
        """Serialisable snapshot of all pipeline state."""
        if self.phase is Phase.DONE:
            raise PipelineStateError("nothing to checkpoint: pipeline is done")
        return {
            "phase": self.phase.value,
            "pending": [record.to_dict() for record in self._pending],
            "ingested": [record.to_dict() for record in self._ingested],
            "pairs": self._pairs,
            "decisions": [
                {
                    "left": d.left,
                    "right": d.right,
                    "score": d.score,
                    "matched": d.matched,
                    "phone_equal": d.phone_equal,
                    "email_equal": d.email_equal,
                    "name_score": d.name_score,
                }
                for d in self._decisions
            ],
            "total_units": self.total_units,
        }

    def save_checkpoint(self, path: str | Path) -> None:
        """Write the checkpoint JSON to ``path``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.checkpoint()), encoding="utf-8")

    @classmethod
    def from_checkpoint(
        cls,
        payload: dict[str, Any],
        config: IncrementalPipelineConfig | None = None,
    ) -> "IncrementalPipeline":
        """Rebuild a pipeline from :meth:`checkpoint` output."""
        pipeline = cls([], config)
        pipeline.phase = Phase(payload["phase"])
        pipeline._pending = [
            SourceRecord.from_dict(item) for item in payload["pending"]
        ]
        pipeline._ingested = [
            SourceRecord.from_dict(item) for item in payload["ingested"]
        ]
        pipeline._pairs = [tuple(pair) for pair in payload["pairs"]]
        pipeline._decisions = [
            MatchDecision(
                left=d["left"],
                right=d["right"],
                score=d["score"],
                matched=d["matched"],
                phone_equal=d["phone_equal"],
                email_equal=d["email_equal"],
                name_score=d["name_score"],
            )
            for d in payload["decisions"]
        ]
        pipeline.total_units = payload.get("total_units", 0)
        return pipeline

    @classmethod
    def load_checkpoint(
        cls, path: str | Path, config: IncrementalPipelineConfig | None = None
    ) -> "IncrementalPipeline":
        """Resume from a checkpoint file."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls.from_checkpoint(payload, config)
