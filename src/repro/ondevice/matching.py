"""Entity matching: do two records describe the same person?

Figure 7's rules, scored: "If we know that the message sender and the
contact have the same phone number; that the contact and calendar invitee
have the same email address; and that all have similar names; then we may
link these three source entities."

Strong identifiers (phone, email) dominate; names contribute fuzzily.
Conflicting strong identifiers veto a match even when names agree — that
is what keeps the two coworkers named Tim apart.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.text import name_similarity
from repro.ondevice.normalize import normalize_email, normalize_phone
from repro.ondevice.records import SourceRecord


@dataclass
class MatchConfig:
    """Weights and threshold of the scoring rules."""

    weight_phone: float = 0.6
    weight_email: float = 0.6
    weight_name: float = 0.35
    name_floor: float = 0.55  # below this, names count as disagreeing
    conflict_penalty: float = 0.8
    threshold: float = 0.5


@dataclass
class MatchDecision:
    """Scored decision for one record pair."""

    left: str
    right: str
    score: float
    matched: bool
    phone_equal: bool
    email_equal: bool
    name_score: float


class EntityMatcher:
    """Rule-scored pairwise matcher."""

    def __init__(self, config: MatchConfig | None = None) -> None:
        self.config = config or MatchConfig()

    def score_pair(self, left: SourceRecord, right: SourceRecord) -> MatchDecision:
        """Score one candidate pair."""
        cfg = self.config
        phone_l, phone_r = normalize_phone(left.phone), normalize_phone(right.phone)
        email_l, email_r = normalize_email(left.email), normalize_email(right.email)
        phone_equal = bool(phone_l) and phone_l == phone_r
        email_equal = bool(email_l) and email_l == email_r
        phone_conflict = bool(phone_l) and bool(phone_r) and phone_l != phone_r
        email_conflict = bool(email_l) and bool(email_r) and email_l != email_r

        name_score = name_similarity(left.display_name, right.display_name)
        # Partial-name containment ("Tim" ⊂ "Tim Smith") earns mid credit.
        tokens_l = set(left.display_name.lower().split())
        tokens_r = set(right.display_name.lower().split())
        if tokens_l and tokens_r and (tokens_l <= tokens_r or tokens_r <= tokens_l):
            name_score = max(name_score, 0.7)

        score = 0.0
        if phone_equal:
            score += cfg.weight_phone
        if email_equal:
            score += cfg.weight_email
        if name_score >= cfg.name_floor:
            score += cfg.weight_name * name_score
        if phone_conflict:
            score -= cfg.conflict_penalty
        if email_conflict:
            score -= cfg.conflict_penalty

        return MatchDecision(
            left=left.record_id,
            right=right.record_id,
            score=score,
            matched=score >= cfg.threshold,
            phone_equal=phone_equal,
            email_equal=email_equal,
            name_score=name_score,
        )

    def match_pairs(
        self, pairs: list[tuple[SourceRecord, SourceRecord]]
    ) -> list[MatchDecision]:
        """Decisions for all candidate pairs."""
        return [self.score_pair(left, right) for left, right in pairs]
