"""Synthetic device data: personas and their per-source record footprints.

Generates a user's social circle ("personas") and realises each persona as
overlapping records across contacts, messages and calendar — with the
format variation and noise that make entity linking non-trivial: phones in
different formats, names shortened ("Tim" vs "Tim Smith"), duplicate
contacts with typos, and *namesakes* (two distinct coworkers called Tim —
the §5 disambiguation example).

Message/calendar text is topical per relationship (coworker / family /
friend) so the contextual-relevance ranker has signal to work with.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.rng import substream
from repro.ondevice.records import CALENDAR, CONTACTS, MESSAGES, SourceRecord

_FIRST = ["Tim", "Ana", "Ravi", "Mona", "Luis", "Kate", "Omar", "Jill", "Sven", "Noor"]
_LAST = ["Smith", "Brown", "Iyer", "Khan", "Diaz", "Wong", "Berg", "Cole", "Holt", "Reyes"]

_TOPICS = {
    "coworker": ["the SIGMOD draft", "the quarterly review", "the design doc",
                 "the standup meeting", "the code review"],
    "family": ["the birthday dinner", "the grocery list", "the weekend trip",
               "the school pickup", "the family photos"],
    "friend": ["the basketball game", "the hiking trail", "the concert tickets",
               "the board-game night", "the fishing trip"],
}


@dataclass
class Persona:
    """One true person in the user's circle (generator ground truth)."""

    person_id: str
    first_name: str
    last_name: str
    phone: str
    email: str
    relationship: str  # coworker / family / friend

    @property
    def full_name(self) -> str:
        return f"{self.first_name} {self.last_name}"


@dataclass
class DeviceDataset:
    """All synthetic records of one device, per source."""

    device: str
    records: dict[str, list[SourceRecord]] = field(default_factory=dict)
    personas: list[Persona] = field(default_factory=list)

    def all_records(self, sources: tuple[str, ...] | None = None) -> list[SourceRecord]:
        """Flattened records, optionally restricted to some sources."""
        wanted = sources or tuple(self.records)
        out: list[SourceRecord] = []
        for source in wanted:
            out.extend(self.records.get(source, []))
        return out


@dataclass
class PersonaWorldConfig:
    """Scale/noise knobs of the synthetic personal world."""

    seed: int = 21
    num_personas: int = 30
    namesake_pairs: int = 2  # pairs of distinct personas sharing a first name
    messages_per_persona: int = 4
    events_per_persona: int = 2
    typo_fraction: float = 0.1
    missing_field_fraction: float = 0.15


def generate_personas(config: PersonaWorldConfig) -> list[Persona]:
    """The user's true social circle (deterministic in the seed)."""
    rng = substream(config.seed, "personas")
    personas: list[Persona] = []
    relationships = ["coworker", "family", "friend"]
    used_names: set[tuple[str, str]] = set()
    for i in range(config.num_personas):
        while True:
            first = _FIRST[int(rng.integers(len(_FIRST)))]
            last = _LAST[int(rng.integers(len(_LAST)))]
            if (first, last) not in used_names:
                used_names.add((first, last))
                break
        personas.append(
            Persona(
                person_id=f"persona/{i:03d}",
                first_name=first,
                last_name=last,
                phone=f"+1 (555) {100 + i:03d} {1000 + i:04d}",
                email=f"{first.lower()}.{last.lower()}{i}@example.com",
                relationship=relationships[i % len(relationships)],
            )
        )
    # Namesakes: force pairs to share a first name, different relationship.
    for pair in range(min(config.namesake_pairs, config.num_personas // 2 - 1)):
        a = personas[2 * pair]
        b = personas[2 * pair + 1]
        personas[2 * pair + 1] = Persona(
            person_id=b.person_id,
            first_name=a.first_name,
            last_name=b.last_name,
            phone=b.phone,
            email=f"{a.first_name.lower()}.{b.last_name.lower()}@example.com",
            relationship="coworker" if a.relationship != "coworker" else "family",
        )
    return personas


def _typo(name: str, rng: np.random.Generator) -> str:
    """Swap two adjacent characters (a common keyboard slip)."""
    if len(name) < 4:
        return name
    i = int(rng.integers(1, len(name) - 2))
    return name[:i] + name[i + 1] + name[i] + name[i + 2 :]


def generate_device_dataset(
    device: str,
    personas: list[Persona],
    config: PersonaWorldConfig,
    sources: tuple[str, ...] = (CONTACTS, MESSAGES, CALENDAR),
    seed_offset: int = 0,
) -> DeviceDataset:
    """Realise personas as records on one device.

    Different devices pass different ``seed_offset`` values, producing
    different message/event histories over the same circle (what sync must
    reconcile).
    """
    rng = substream(config.seed, "device", device, seed_offset)
    records: dict[str, list[SourceRecord]] = {source: [] for source in sources}
    sequence = 0

    if CONTACTS in sources:
        for i, persona in enumerate(personas):
            name = persona.first_name
            last = persona.last_name
            if rng.random() < config.typo_fraction:
                last = _typo(last, rng)
            fields = {"first_name": name, "last_name": last}
            if rng.random() >= config.missing_field_fraction:
                fields["phone"] = persona.phone
            if rng.random() >= config.missing_field_fraction:
                fields["email"] = persona.email
            records[CONTACTS].append(
                SourceRecord(
                    record_id=f"{device}/contact/{i:04d}",
                    source=CONTACTS,
                    fields=fields,
                    true_person=persona.person_id,
                    sequence=sequence,
                )
            )
            sequence += 1

    if MESSAGES in sources:
        counter = 0
        for persona in personas:
            topics = _TOPICS[persona.relationship]
            for m in range(config.messages_per_persona):
                # Messages render the phone in a *different* format.
                digits = "".join(ch for ch in persona.phone if ch.isdigit())
                dashed = f"{digits[-10:-7]}-{digits[-7:-4]}-{digits[-4:]}"
                topic = topics[int(rng.integers(len(topics)))]
                sender = (
                    persona.full_name if rng.random() < 0.7 else persona.first_name
                )
                records[MESSAGES].append(
                    SourceRecord(
                        record_id=f"{device}/msg/{counter:05d}",
                        source=MESSAGES,
                        fields={
                            "sender_name": sender,
                            "sender_number": dashed,
                            "text": f"About {topic} - let's sync up.",
                            "timestamp": float(1_700_000_000 + counter * 3600),
                        },
                        true_person=persona.person_id,
                        sequence=sequence,
                    )
                )
                counter += 1
                sequence += 1

    if CALENDAR in sources:
        counter = 0
        for persona in personas:
            topics = _TOPICS[persona.relationship]
            for e in range(config.events_per_persona):
                topic = topics[int(rng.integers(len(topics)))]
                records[CALENDAR].append(
                    SourceRecord(
                        record_id=f"{device}/event/{counter:05d}",
                        source=CALENDAR,
                        fields={
                            "title": f"Discuss {topic}",
                            "attendee_name": persona.full_name,
                            "attendee_email": persona.email,
                            "start": float(1_700_100_000 + counter * 7200),
                        },
                        true_person=persona.person_id,
                        sequence=sequence,
                    )
                )
                counter += 1
                sequence += 1

    return DeviceDataset(device=device, records=records, personas=personas)
