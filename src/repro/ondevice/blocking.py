"""Blocking: bound the pairwise comparison space, within a memory budget.

§5: "expensive computations (e.g., pairwise blocking and entity matching
…) spill to disk as necessary" and memory is "bounded" by "tunable memory
buffer sizes".  The blocker groups records by normalised keys (phone,
email, name tokens) and emits candidate pairs per block; when the
in-memory block map exceeds the budget, the largest blocks spill to a disk
store and are streamed back at pair-emission time.  The peak resident size
is tracked so benchmarks can show memory boundedness.
"""

from __future__ import annotations

import tempfile
from collections import defaultdict
from dataclasses import dataclass
from pathlib import Path

from repro.common.kvstore import DiskKVStore
from repro.ondevice.normalize import (
    name_key,
    name_token_keys,
    normalize_email,
    normalize_phone,
)
from repro.ondevice.records import SourceRecord


def blocking_keys(record: SourceRecord) -> list[str]:
    """All blocking keys of one record (typed prefixes avoid collisions)."""
    keys: list[str] = []
    phone = normalize_phone(record.phone)
    if phone:
        keys.append(f"phone:{phone}")
    email = normalize_email(record.email)
    if email:
        keys.append(f"email:{email}")
    full = name_key(record.display_name)
    if full:
        keys.append(f"name:{full}")
    for token in name_token_keys(record.display_name):
        keys.append(f"tok:{token}")
    return keys


@dataclass
class BlockingStats:
    """Accounting of one blocking pass."""

    records: int = 0
    blocks: int = 0
    pairs: int = 0
    spilled_blocks: int = 0
    peak_resident_keys: int = 0


class MemoryBoundedBlocker:
    """Key-based blocking with disk spill above a resident-key budget."""

    def __init__(
        self,
        memory_budget_keys: int = 10_000,
        max_block_size: int = 64,
        spill_dir: str | Path | None = None,
    ) -> None:
        if memory_budget_keys <= 0:
            raise ValueError("memory budget must be positive")
        self.memory_budget_keys = memory_budget_keys
        self.max_block_size = max_block_size
        self._spill_dir = spill_dir
        self.stats = BlockingStats()

    def candidate_pairs(
        self, records: list[SourceRecord]
    ) -> list[tuple[SourceRecord, SourceRecord]]:
        """Deduplicated candidate pairs from all blocks.

        Oversized blocks (above ``max_block_size``) are truncated — giant
        token blocks ("tok:tim") would otherwise explode quadratically, the
        standard blocking safeguard.
        """
        stats = self.stats = BlockingStats(records=len(records))
        blocks: dict[str, list[str]] = defaultdict(list)
        by_id = {record.record_id: record for record in records}
        spill: DiskKVStore | None = None
        spill_tmp: tempfile.TemporaryDirectory | None = None
        spilled_keys: set[str] = set()

        for record in records:
            for key in blocking_keys(record):
                if key in spilled_keys:
                    assert spill is not None
                    members = spill.get(key, [])
                    members.append(record.record_id)
                    spill.put(key, members)
                    continue
                blocks[key].append(record.record_id)
                stats.peak_resident_keys = max(stats.peak_resident_keys, len(blocks))
                if len(blocks) > self.memory_budget_keys:
                    if spill is None:
                        spill_tmp = tempfile.TemporaryDirectory(
                            prefix="blocker-", dir=self._spill_dir
                        )
                        spill = DiskKVStore(spill_tmp.name)
                    # Spill the largest half of resident blocks.
                    ordered = sorted(blocks, key=lambda k: -len(blocks[k]))
                    for victim in ordered[: len(ordered) // 2 + 1]:
                        spill.put(victim, blocks.pop(victim))
                        spilled_keys.add(victim)
                        stats.spilled_blocks += 1

        pairs: set[tuple[str, str]] = set()

        def emit(members: list[str]) -> None:
            bounded = members[: self.max_block_size]
            for i, left in enumerate(bounded):
                for right in bounded[i + 1 :]:
                    pairs.add((left, right) if left < right else (right, left))

        for members in blocks.values():
            emit(members)
        if spill is not None:
            for key in list(spill.keys()):
                emit(spill.get(key, []))
            assert spill_tmp is not None
            spill_tmp.cleanup()

        stats.blocks = len(blocks) + len(spilled_keys)
        stats.pairs = len(pairs)
        return [(by_id[a], by_id[b]) for a, b in sorted(pairs)]
