"""Cross-device knowledge sync with per-source preferences.

§5 (sync): "a user may decide to sync or not to sync on a per source
basis … the sync'd sources still need to be consistently represented
across devices."  The protocol syncs *source records* (not fused graphs):
after convergence every device deterministically reconstructs its KG from
its local record set, so two devices holding the same records provably
build the same graph.  Fused-graph sync would instead have to reconcile
cluster ids — syncing the inputs sidesteps that whole class of conflicts.

Also implements §5's computation offloading: "Ensuring a consistent
knowledge experience across devices may require offloading expensive
computation to more powerful devices … and syncing the result."  A watch
ships its records to a laptop, the laptop runs blocking+matching+fusion,
and the watch receives the finished result.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.common.errors import SyncError
from repro.ondevice.device import Device
from repro.ondevice.incremental import (
    IncrementalPipeline,
    IncrementalPipelineConfig,
    PipelineResult,
)
from repro.ondevice.records import record_lww_key


@dataclass
class SyncRoundReport:
    """Traffic accounting of one gossip round."""

    transfers: int = 0
    records_moved: int = 0
    tombstones_moved: int = 0
    bytes_moved: int = 0
    # (from_device, to_device, source) -> records in that transfer
    detail: dict[tuple[str, str, str], int] = field(default_factory=dict)

    @property
    def converged(self) -> bool:
        """True when the round changed no state anywhere."""
        return self.records_moved == 0 and self.tombstones_moved == 0


def _record_bytes(records: list) -> int:
    """Approximate wire size of a record batch (JSON encoding)."""
    return sum(len(json.dumps(record.to_dict())) for record in records)


class SyncCoordinator:
    """Pairwise record exchange honoring per-source preferences."""

    def __init__(self, devices: list[Device]) -> None:
        if len({device.device_id for device in devices}) != len(devices):
            raise SyncError("duplicate device ids in sync group")
        self.devices = devices

    def sync_round(self) -> SyncRoundReport:
        """One full round: every ordered pair exchanges eligible sources.

        A source flows from A to B only when *both* devices have the
        source enabled in their preferences (the paper's per-source
        opt-in).  Tombstones travel first so a record deleted on the
        sender is not re-offered to (or resurrected on) the receiver in
        the same round; records ship only when they would actually win
        the receiver's last-writer-wins merge.
        """
        report = SyncRoundReport()
        for sender in self.devices:
            for receiver in self.devices:
                if sender.device_id == receiver.device_id:
                    continue
                for source, enabled in sender.sync_preferences.items():
                    if not enabled or not receiver.sync_preferences.get(source, False):
                        continue
                    sender_tombs = sender.tombstones.get(source, {})
                    tombstones_moved = (
                        receiver.apply_tombstones(source, sender_tombs)
                        if sender_tombs
                        else 0
                    )
                    receiver_keys = {
                        record.record_id: record_lww_key(record)
                        for record in receiver.records.get(source, [])
                    }
                    receiver_tombs = receiver.tombstones.get(source, {})
                    outgoing = [
                        record
                        for record in sender.records.get(source, [])
                        if receiver_tombs.get(record.record_id, -1) < record.sequence
                        and (
                            record.record_id not in receiver_keys
                            or receiver_keys[record.record_id] < record_lww_key(record)
                        )
                    ]
                    if not outgoing and not tombstones_moved:
                        continue
                    added = receiver.add_records(source, outgoing) if outgoing else 0
                    report.transfers += 1
                    report.records_moved += added
                    report.tombstones_moved += tombstones_moved
                    report.bytes_moved += _record_bytes(outgoing)
                    report.detail[(sender.device_id, receiver.device_id, source)] = added
        return report

    def sync_until_stable(self, max_rounds: int = 8) -> list[SyncRoundReport]:
        """Rounds until no records or tombstones move (raises otherwise)."""
        reports: list[SyncRoundReport] = []
        for _ in range(max_rounds):
            report = self.sync_round()
            reports.append(report)
            if report.converged:
                return reports
        raise SyncError(f"sync did not converge within {max_rounds} rounds")

    def consistency_check(self, source: str) -> bool:
        """True when all devices syncing ``source`` hold identical records."""
        participating = [
            device
            for device in self.devices
            if device.sync_preferences.get(source, False)
        ]
        if len(participating) < 2:
            return True
        reference = participating[0].record_ids(source)
        return all(device.record_ids(source) == reference for device in participating[1:])


def offload_construction(
    weak: Device, strong: Device, pipeline_config: IncrementalPipelineConfig | None = None
) -> tuple[PipelineResult, int]:
    """Run the weak device's KG construction on the strong device.

    Returns the result (installed on the weak device) and the approximate
    bytes shipped (records up + a serialized result summary down).
    """
    if not strong.profile.can_run_matching:
        raise SyncError(
            f"offload target {strong.device_id} cannot run matching either"
        )
    records = weak.local_records()
    upload = _record_bytes(records)
    config = pipeline_config or IncrementalPipelineConfig(
        memory_budget_keys=strong.profile.memory_budget_keys
    )
    pipeline = IncrementalPipeline(records, config)
    result = pipeline.run_to_completion(strong.profile.step_budget)
    download = sum(
        len(json.dumps({"entity": p.entity, "name": p.name, "records": p.record_ids}))
        for p in result.people
    )
    weak.result = result
    return result, upload + download


def kg_signature(result: PipelineResult) -> list[tuple[str, tuple[str, ...]]]:
    """Canonical signature of a personal KG, for cross-device comparison.

    Two KGs with the same signature contain the same fused persons over
    the same record memberships (entity ids are deterministic, so equal
    record sets imply equal signatures).
    """
    return sorted(
        (person.name, tuple(person.record_ids)) for person in result.people
    )
