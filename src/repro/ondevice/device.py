"""Devices: resource profiles and per-device knowledge state.

§5: "devices have a wide range of capabilities, and knowledge-based
services must be functional within the resource constraints of each
hardware environment."  A :class:`DeviceProfile` captures the constraints
the pipeline must respect (memory budget for blocking, per-slice step
budget, whether the device is powerful enough to run matching locally);
a :class:`Device` owns its source records, sync preferences and personal
KG.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import DeviceError
from repro.ondevice.incremental import (
    IncrementalPipeline,
    IncrementalPipelineConfig,
    PipelineResult,
)
from repro.ondevice.records import ALL_SOURCES, SourceRecord

# Named profiles roughly ordered by capability.
PROFILES = {
    "watch": dict(memory_budget_keys=200, step_budget=64, can_run_matching=False),
    "phone": dict(memory_budget_keys=2_000, step_budget=512, can_run_matching=True),
    "laptop": dict(memory_budget_keys=20_000, step_budget=4_096, can_run_matching=True),
}


@dataclass(frozen=True)
class DeviceProfile:
    """Hardware class and its resource budgets."""

    name: str
    memory_budget_keys: int
    step_budget: int
    can_run_matching: bool

    @classmethod
    def named(cls, name: str) -> "DeviceProfile":
        """One of the standard profiles (watch/phone/laptop)."""
        try:
            spec = PROFILES[name]
        except KeyError:
            raise DeviceError(
                f"unknown profile {name!r}; available: {sorted(PROFILES)}"
            ) from None
        return cls(name=name, **spec)


@dataclass
class Device:
    """One device: records per source, sync prefs, personal KG state."""

    device_id: str
    profile: DeviceProfile
    # source name -> records currently on this device.
    records: dict[str, list[SourceRecord]] = field(default_factory=dict)
    # source name -> whether the user syncs this source on this device.
    sync_preferences: dict[str, bool] = field(
        default_factory=lambda: {source: True for source in ALL_SOURCES}
    )
    result: PipelineResult | None = None

    def local_records(self) -> list[SourceRecord]:
        """All records on this device, deterministic order."""
        out: list[SourceRecord] = []
        for source in sorted(self.records):
            out.extend(self.records[source])
        return sorted(out, key=lambda record: record.record_id)

    def record_ids(self, source: str) -> set[str]:
        """Record ids currently held for ``source``."""
        return {record.record_id for record in self.records.get(source, [])}

    def add_records(self, source: str, new_records: list[SourceRecord]) -> int:
        """Merge records into a source (dedup by id); returns adds."""
        existing = self.record_ids(source)
        bucket = self.records.setdefault(source, [])
        added = 0
        for record in new_records:
            if record.record_id not in existing:
                bucket.append(record)
                existing.add(record.record_id)
                added += 1
        bucket.sort(key=lambda record: record.record_id)
        return added

    def build_kg(self, pipeline_config: IncrementalPipelineConfig | None = None) -> PipelineResult:
        """(Re)construct the personal KG from current records.

        Runs the incremental pipeline in slices of the profile's step
        budget — a watch takes many more slices than a laptop, but the
        result is identical (the F7 benchmark measures both).
        """
        config = pipeline_config or IncrementalPipelineConfig(
            memory_budget_keys=self.profile.memory_budget_keys
        )
        if not self.profile.can_run_matching:
            raise DeviceError(
                f"device {self.device_id} ({self.profile.name}) cannot run "
                "matching locally; offload to a more capable device "
                "(see repro.ondevice.sync.offload_construction)"
            )
        pipeline = IncrementalPipeline(self.local_records(), config)
        self.result = pipeline.run_to_completion(self.profile.step_budget)
        return self.result
