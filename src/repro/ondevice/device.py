"""Devices: resource profiles and per-device knowledge state.

§5: "devices have a wide range of capabilities, and knowledge-based
services must be functional within the resource constraints of each
hardware environment."  A :class:`DeviceProfile` captures the constraints
the pipeline must respect (memory budget for blocking, per-slice step
budget, whether the device is powerful enough to run matching locally);
a :class:`Device` owns its source records, sync preferences and personal
KG.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import DeviceError
from repro.ondevice.incremental import (
    IncrementalPipeline,
    IncrementalPipelineConfig,
    PipelineResult,
)
from repro.ondevice.records import ALL_SOURCES, SourceRecord, record_lww_key

# Named profiles roughly ordered by capability.
PROFILES = {
    "watch": dict(memory_budget_keys=200, step_budget=64, can_run_matching=False),
    "phone": dict(memory_budget_keys=2_000, step_budget=512, can_run_matching=True),
    "laptop": dict(memory_budget_keys=20_000, step_budget=4_096, can_run_matching=True),
}


@dataclass(frozen=True)
class DeviceProfile:
    """Hardware class and its resource budgets."""

    name: str
    memory_budget_keys: int
    step_budget: int
    can_run_matching: bool

    @classmethod
    def named(cls, name: str) -> "DeviceProfile":
        """One of the standard profiles (watch/phone/laptop)."""
        try:
            spec = PROFILES[name]
        except KeyError:
            raise DeviceError(
                f"unknown profile {name!r}; available: {sorted(PROFILES)}"
            ) from None
        return cls(name=name, **spec)


@dataclass
class Device:
    """One device: records per source, sync prefs, personal KG state."""

    device_id: str
    profile: DeviceProfile
    # source name -> records currently on this device.
    records: dict[str, list[SourceRecord]] = field(default_factory=dict)
    # source name -> whether the user syncs this source on this device.
    sync_preferences: dict[str, bool] = field(
        default_factory=lambda: {source: True for source in ALL_SOURCES}
    )
    # source name -> record id -> deletion sequence.  Tombstones are
    # retained indefinitely (never garbage-collected) so a device that
    # syncs in late still learns about deletions instead of resurrecting
    # the record from its stale copy.
    tombstones: dict[str, dict[str, int]] = field(default_factory=dict)
    result: PipelineResult | None = None

    def local_records(self) -> list[SourceRecord]:
        """All records on this device, deterministic order."""
        out: list[SourceRecord] = []
        for source in sorted(self.records):
            out.extend(self.records[source])
        return sorted(out, key=lambda record: record.record_id)

    def record_ids(self, source: str) -> set[str]:
        """Record ids currently held for ``source``."""
        return {record.record_id for record in self.records.get(source, [])}

    def add_records(self, source: str, new_records: list[SourceRecord]) -> int:
        """Merge records into a source; returns records added or replaced.

        Last-writer-wins by :func:`record_lww_key`: an incoming record
        lands only when it strictly beats the existing copy (dedup by id
        is the degenerate case — identical records are no-ops).  A
        retained tombstone with ``sequence >=`` the record's suppresses
        the write (delete wins ties); a strictly newer write resurrects
        the record and clears the tombstone.
        """
        by_id = {r.record_id: r for r in self.records.get(source, [])}
        tombs = self.tombstones.get(source, {})
        changed = 0
        for record in new_records:
            tomb = tombs.get(record.record_id)
            if tomb is not None:
                if tomb >= record.sequence:
                    continue
                del tombs[record.record_id]
            existing = by_id.get(record.record_id)
            if existing is not None and record_lww_key(existing) >= record_lww_key(record):
                continue
            by_id[record.record_id] = record
            changed += 1
        self.records[source] = sorted(by_id.values(), key=lambda r: r.record_id)
        return changed

    def delete_record(self, source: str, record_id: str, sequence: int | None = None) -> bool:
        """Tombstone one record; True when a local copy was removed.

        ``sequence`` defaults to the deleted record's own sequence, so a
        plain delete always wins against replays of the copy it deleted.
        A delete older than the local record loses (the write stays).
        """
        by_id = {r.record_id: r for r in self.records.get(source, [])}
        existing = by_id.get(record_id)
        seq = sequence if sequence is not None else (existing.sequence if existing else 0)
        if existing is not None and seq < existing.sequence:
            return False
        tombs = self.tombstones.setdefault(source, {})
        tombs[record_id] = max(seq, tombs.get(record_id, seq))
        if existing is None:
            return False
        del by_id[record_id]
        self.records[source] = sorted(by_id.values(), key=lambda r: r.record_id)
        return True

    def apply_tombstones(self, source: str, incoming: dict[str, int]) -> int:
        """Adopt remote tombstones; returns tombstones newly learned/raised.

        A tombstone older than the local record loses entirely (the local
        write flows back out and resurrects the record on the deleting
        device); otherwise it is retained and any local copy at or below
        its sequence is dropped.
        """
        tombs = self.tombstones.setdefault(source, {})
        by_id = {r.record_id: r for r in self.records.get(source, [])}
        raised = 0
        for record_id, seq in incoming.items():
            current = tombs.get(record_id)
            if current is not None and current >= seq:
                continue
            existing = by_id.get(record_id)
            if existing is not None and existing.sequence > seq:
                continue
            tombs[record_id] = seq
            raised += 1
            if existing is not None:
                del by_id[record_id]
        if raised:
            self.records[source] = sorted(by_id.values(), key=lambda r: r.record_id)
        return raised

    def build_kg(self, pipeline_config: IncrementalPipelineConfig | None = None) -> PipelineResult:
        """(Re)construct the personal KG from current records.

        Runs the incremental pipeline in slices of the profile's step
        budget — a watch takes many more slices than a laptop, but the
        result is identical (the F7 benchmark measures both).
        """
        config = pipeline_config or IncrementalPipelineConfig(
            memory_budget_keys=self.profile.memory_budget_keys
        )
        if not self.profile.can_run_matching:
            raise DeviceError(
                f"device {self.device_id} ({self.profile.name}) cannot run "
                "matching locally; offload to a more capable device "
                "(see repro.ondevice.sync.offload_construction)"
            )
        pipeline = IncrementalPipeline(self.local_records(), config)
        self.result = pipeline.run_to_completion(self.profile.step_budget)
        return self.result
