"""Downstream ML services built on KG embeddings (Figure 2)."""

from repro.services.fact_ranking import (
    FactRanker,
    FactRankerConfig,
    FactRankingReport,
    RankedFact,
    evaluate_fact_ranking,
)
from repro.services.fact_verification import (
    FactVerifier,
    VerificationReport,
    Verdict,
    evaluate_verifier,
)
from repro.services.related_entities import (
    EmbeddingRelatedEntities,
    RelatedEntitiesBackend,
    RelatedEntity,
    RelatednessReport,
    TraversalRelatedEntities,
    evaluate_related,
)

__all__ = [
    "EmbeddingRelatedEntities",
    "FactRanker",
    "FactRankerConfig",
    "FactRankingReport",
    "FactVerifier",
    "RankedFact",
    "RelatedEntitiesBackend",
    "RelatedEntity",
    "RelatednessReport",
    "TraversalRelatedEntities",
    "VerificationReport",
    "Verdict",
    "evaluate_fact_ranking",
    "evaluate_related",
    "evaluate_verifier",
]
