"""Fact ranking: importance-order the values of a multi-valued predicate.

Figure 2: for "What is the occupation of LeBron James?" the assistant must
answer "Basketball Player" before "TV Actor" before "Screenwriter".  The
ranker scores each existing fact ``(s, p, o_i)`` with a blend of signals:

* **embedding score** — the trained model's plausibility (z-normalised
  within the candidate set), the paper's primary signal;
* **neighborhood agreement** — a graph-engine feature: how much of ``s``'s
  neighborhood is shared with other subjects asserting the same value
  (LeBron shares teams/awards with other basketball players, not with
  screenwriters);
* **object popularity** and **fact confidence** — priors that break ties
  and demote low-confidence noise edges.

Weights are configurable; the benchmark ablates them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embeddings.inference import BatchInference
from repro.kg.graph_engine import GraphEngine
from repro.kg.store import TripleStore


@dataclass
class RankedFact:
    """One ranked value with its blended score and feature breakdown."""

    obj: str
    score: float
    model_score: float
    agreement: float
    popularity: float
    confidence: float


@dataclass
class FactRankerConfig:
    """Blend weights of the ranking features (need not sum to 1)."""

    weight_model: float = 1.0
    weight_agreement: float = 1.0
    weight_popularity: float = 0.25
    weight_confidence: float = 0.5
    agreement_sample: int = 8


class FactRanker:
    """Ranks the objects of ``(subject, predicate, ?)`` by importance."""

    def __init__(
        self,
        store: TripleStore,
        inference: BatchInference,
        config: FactRankerConfig | None = None,
    ) -> None:
        self.store = store
        self.engine = GraphEngine(store)
        self.inference = inference
        self.config = config or FactRankerConfig()

    def rank(self, subject: str, predicate: str) -> list[RankedFact]:
        """Importance-ranked values of ``(subject, predicate, ?)``.

        Returns an empty list when the subject has no such facts.
        """
        return self.rank_many([subject], predicate)[0]

    def rank_many(self, subjects: list[str], predicate: str) -> list[list[RankedFact]]:
        """Rankings for many subjects with one batched embedding pass.

        The serving layer's ``FactRankRequest`` hot path: every subject's
        candidate triples score in a single ``score_triples`` call instead
        of one model invocation per subject.  Z-normalisation stays
        *within* each subject's candidate set (scores are only comparable
        against their own alternatives), so per-subject output is
        identical to :meth:`rank`.
        """
        per_subject_facts = [
            list(self.store.scan(subject=subject, predicate=predicate))
            for subject in subjects
        ]
        candidates = [
            (subject, predicate, fact.obj)
            for subject, facts in zip(subjects, per_subject_facts)
            for fact in facts
        ]
        scored = self.inference.score_triples(candidates)
        raw_scores: dict[tuple[str, str], float] = {
            (item.subject, item.obj): item.score for item in scored
        }
        return [
            self._rank_one(subject, predicate, facts, raw_scores)
            for subject, facts in zip(subjects, per_subject_facts)
        ]

    def _rank_one(
        self,
        subject: str,
        predicate: str,
        facts: list,
        raw_scores: dict[tuple[str, str], float],
    ) -> list[RankedFact]:
        if not facts:
            return []
        objects = [fact.obj for fact in facts]
        confidences = {fact.obj: fact.confidence for fact in facts}

        model_scores = self._normalize_scores(
            objects, [raw_scores.get((subject, obj), 0.0) for obj in objects]
        )
        agreements = {
            obj: self._neighborhood_agreement(subject, predicate, obj)
            for obj in objects
        }
        popularity = {
            obj: (self.store.entity(obj).popularity if self.store.has_entity(obj) else 0.0)
            for obj in objects
        }

        cfg = self.config
        ranked = [
            RankedFact(
                obj=obj,
                score=(
                    cfg.weight_model * model_scores[obj]
                    + cfg.weight_agreement * agreements[obj]
                    + cfg.weight_popularity * popularity[obj]
                    + cfg.weight_confidence * confidences[obj]
                ),
                model_score=model_scores[obj],
                agreement=agreements[obj],
                popularity=popularity[obj],
                confidence=confidences[obj],
            )
            for obj in objects
        ]
        ranked.sort(key=lambda item: (-item.score, item.obj))
        return ranked

    @staticmethod
    def _normalize_scores(
        objects: list[str], raw: list[float]
    ) -> dict[str, float]:
        """Embedding scores z-normalised within one candidate set."""
        values = np.array(raw, dtype=np.float64)
        if len(values) > 1 and values.std() > 0:
            values = (values - values.mean()) / values.std()
        else:
            values = np.zeros_like(values)
        return {obj: float(v) for obj, v in zip(objects, values)}

    def _neighborhood_agreement(self, subject: str, predicate: str, obj: str) -> float:
        """Overlap between ``subject``'s neighborhood and peers asserting
        the same (predicate, obj) value, in [0, 1]."""
        mine = self.store.neighbors(subject)
        if not mine:
            return 0.0
        peers = [
            peer for peer in self.store.subjects(predicate, obj) if peer != subject
        ]
        if not peers:
            return 0.0
        peers = peers[: self.config.agreement_sample]
        shared: set[str] = set()
        for peer in peers:
            shared |= self.store.neighbors(peer)
        shared.discard(subject)
        return len(mine & shared) / len(mine)


@dataclass
class FactRankingReport:
    """Quality of a ranker against generator ground truth."""

    precision_at_1: float
    ndcg: float
    num_subjects: int


def evaluate_fact_ranking(
    ranker: FactRanker,
    predicate: str,
    truth_order: dict[str, list[str]],
    min_values: int = 2,
) -> FactRankingReport:
    """Evaluate against known importance orders (primary value first).

    Only subjects with at least ``min_values`` ground-truth values are
    scored — ranking a single value is trivially correct.
    """
    hits = 0
    ndcgs: list[float] = []
    subjects = 0
    for subject, ordered_truth in sorted(truth_order.items()):
        if len(ordered_truth) < min_values:
            continue
        ranked = ranker.rank(subject, predicate)
        if not ranked:
            continue
        subjects += 1
        if ranked[0].obj == ordered_truth[0]:
            hits += 1
        ndcgs.append(_ndcg([item.obj for item in ranked], ordered_truth))
    return FactRankingReport(
        precision_at_1=hits / subjects if subjects else 0.0,
        ndcg=float(np.mean(ndcgs)) if ndcgs else 0.0,
        num_subjects=subjects,
    )


def _ndcg(ranking: list[str], truth_order: list[str]) -> float:
    """NDCG with graded relevance: truth position i gets gain len - i."""
    gains = {obj: len(truth_order) - i for i, obj in enumerate(truth_order)}
    dcg = sum(
        gains.get(obj, 0) / np.log2(position + 2)
        for position, obj in enumerate(ranking)
    )
    ideal = sum(
        gain / np.log2(position + 2)
        for position, gain in enumerate(sorted(gains.values(), reverse=True))
    )
    return float(dcg / ideal) if ideal > 0 else 0.0
