"""Fact verification: is a candidate triple correct?

Figure 2: "Q: <LeBron James, Occupation, TV Actor>?  A: Correct."
Industrial KGs continuously absorb facts from noisy feeds (§2), so the
platform must "reason about the correctness … of these facts at scale".

The verifier thresholds the embedding model's plausibility score.  The
threshold is *calibrated* on a validation set of true facts plus uniform
corruptions (via :func:`repro.embeddings.evaluation.triple_classification`),
then applied to unseen candidates — the deployment shape ODKE's
corroboration stage (§4) also consumes as one of its evidence signals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import EmbeddingError
from repro.embeddings.evaluation import (
    ClassificationReport,
    corrupt_uniform,
    triple_classification,
)
from repro.embeddings.trainer import TrainedEmbeddings


@dataclass
class Verdict:
    """Outcome of verifying one candidate fact."""

    subject: str
    predicate: str
    obj: str
    score: float
    plausible: bool
    margin: float  # score - threshold; how confidently classified


class FactVerifier:
    """Calibrated plausibility classifier over a trained embedding model."""

    def __init__(self, trained: TrainedEmbeddings) -> None:
        self.trained = trained
        self._threshold: float | None = None
        self._calibration: ClassificationReport | None = None

    @property
    def is_calibrated(self) -> bool:
        """Whether :meth:`calibrate` has been run."""
        return self._threshold is not None

    @property
    def calibration(self) -> ClassificationReport:
        """The calibration report (raises before calibration)."""
        if self._calibration is None:
            raise EmbeddingError("verifier not calibrated; call calibrate() first")
        return self._calibration

    def calibrate(
        self, validation_triples: np.ndarray, seed: int = 0
    ) -> ClassificationReport:
        """Fit the decision threshold on held-out positives + corruptions."""
        if len(validation_triples) == 0:
            raise EmbeddingError("cannot calibrate on an empty validation set")
        known = self.trained.dataset.known_set()
        negatives = corrupt_uniform(
            validation_triples, self.trained.dataset.num_entities, known, seed=seed
        )
        report = triple_classification(
            self.trained.model, validation_triples, negatives
        )
        self._threshold = report.threshold
        self._calibration = report
        return report

    def adopt_calibration(self, report: ClassificationReport) -> None:
        """Install a previously-fitted calibration without refitting.

        The persisted-snapshot path: the threshold was calibrated once at
        ``save_snapshot`` time and rides in the embedding layer's
        manifest, so no serving replica re-runs the corruption +
        classification pass — and every replica thresholds at the exact
        float the saved verifier did.
        """
        self._threshold = report.threshold
        self._calibration = report

    def verify(self, subject: str, predicate: str, obj: str) -> Verdict:
        """Verdict on one symbolic candidate triple."""
        if self._threshold is None:
            raise EmbeddingError("verifier not calibrated; call calibrate() first")
        score = self.trained.score_fact(subject, predicate, obj)
        return Verdict(
            subject=subject,
            predicate=predicate,
            obj=obj,
            score=score,
            plausible=score >= self._threshold,
            margin=score - self._threshold,
        )

    def verify_batch(self, candidates: list[tuple[str, str, str]]) -> list[Verdict]:
        """Verdicts for many candidates in one batched embedding pass.

        Encodes every symbolic candidate up front and scores the whole
        batch with a single vectorised ``score_triples`` call — the
        serving layer's ``VerifyRequest`` hot path — instead of one
        single-row model evaluation per candidate.  Scores are identical
        to :meth:`verify`: the models reduce per row, so batching does
        not change the arithmetic.  Unknown symbols raise, exactly like
        the per-candidate path.
        """
        if self._threshold is None:
            raise EmbeddingError("verifier not calibrated; call calibrate() first")
        if not candidates:
            return []
        dataset = self.trained.dataset
        encoded = np.array(
            [dataset.encode(s, p, o) for s, p, o in candidates], dtype=np.int64
        )
        scores = self.trained.model.score_triples(encoded)
        threshold = self._threshold
        return [
            Verdict(
                subject=subject,
                predicate=predicate,
                obj=obj,
                score=float(score),
                plausible=bool(score >= threshold),
                margin=float(score) - threshold,
            )
            for (subject, predicate, obj), score in zip(candidates, scores)
        ]

    def plausibility(self, subject: str, predicate: str, obj: str) -> float:
        """Sigmoid-squashed score in (0, 1); usable as an evidence feature
        even before calibration."""
        score = self.trained.score_fact(subject, predicate, obj)
        return float(1.0 / (1.0 + np.exp(-np.clip(score, -30, 30))))


@dataclass
class VerificationReport:
    """Held-out verification quality."""

    accuracy: float
    auc: float
    num_candidates: int


def evaluate_verifier(
    verifier: FactVerifier, test_triples: np.ndarray, seed: int = 1
) -> VerificationReport:
    """Accuracy/AUC of a calibrated verifier on unseen positives+corruptions."""
    trained = verifier.trained
    known = trained.dataset.known_set()
    negatives = corrupt_uniform(
        test_triples, trained.dataset.num_entities, known, seed=seed
    )
    report = triple_classification(trained.model, test_triples, negatives)

    # Accuracy at the *calibrated* threshold (not re-fit on test data).
    pos_scores = trained.model.score_triples(test_triples)
    neg_scores = trained.model.score_triples(negatives)
    threshold = verifier.calibration.threshold
    correct = int(np.sum(pos_scores >= threshold)) + int(np.sum(neg_scores < threshold))
    total = len(pos_scores) + len(neg_scores)
    return VerificationReport(
        accuracy=correct / total if total else 0.0,
        auc=report.auc,
        num_candidates=total,
    )
