"""Related entities: "people also searched for"-style recommendations.

Figure 2: querying LeBron James should surface Stephen Curry, Kobe Bryant
and Savannah James.  §2 describes two strategies, both implemented here:

* :class:`EmbeddingRelatedEntities` — generic KG embeddings + k-NN (the
  baseline: reuse the same vectors trained for ranking/verification);
* :class:`TraversalRelatedEntities` — *specialized* embeddings built from
  graph-engine pre-computed traversals: random walks → windowed
  co-occurrence counts → PPMI matrix → truncated SVD.  This is the
  "pre-compute graph traversals" approach the paper says it uses for the
  related-entities task specifically.

The benchmark compares the two against generator ground truth — the paper's
claim is that the specialized pipeline wins on this task.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.kg.graph_engine import GraphEngine
from repro.kg.store import TripleStore
from repro.vector.index import ExactIndex, SearchHit
from repro.vector.service import EmbeddingService
from repro.vector.similarity import normalize_rows


@dataclass
class RelatedEntity:
    """One related-entity suggestion."""

    entity: str
    score: float


class RelatedEntitiesBackend:
    """Interface: rank entities related to a seed entity."""

    def related(self, entity: str, k: int = 10) -> list[RelatedEntity]:
        raise NotImplementedError


class EmbeddingRelatedEntities(RelatedEntitiesBackend):
    """Baseline: k-NN over the general-purpose KG embeddings.

    Optionally restricts results to entities sharing a type with the seed
    (an assistant suggests people for people, not the city they were born
    in).
    """

    def __init__(
        self,
        service: EmbeddingService,
        store: TripleStore | None = None,
        same_type_only: bool = True,
    ) -> None:
        self.service = service
        self.store = store
        self.same_type_only = same_type_only and store is not None

    def related(self, entity: str, k: int = 10) -> list[RelatedEntity]:
        self.service.require_entity(entity)
        overfetch = k * 5 if self.same_type_only else k
        hits = self.service.knn(entity, k=overfetch)
        if self.same_type_only:
            hits = self._filter_by_type(entity, hits)
        return [RelatedEntity(entity=h.key, score=h.score) for h in hits[:k]]

    def _filter_by_type(self, entity: str, hits: list[SearchHit]) -> list[SearchHit]:
        assert self.store is not None
        if not self.store.has_entity(entity):
            return hits
        seed_types = set(self.store.entity(entity).types)
        if not seed_types:
            return hits
        kept = []
        for hit in hits:
            if not self.store.has_entity(hit.key):
                continue
            if seed_types & set(self.store.entity(hit.key).types):
                kept.append(hit)
        return kept


class TraversalRelatedEntities(RelatedEntitiesBackend):
    """Specialized related-entity embeddings from pre-computed traversals.

    Pipeline (all deterministic in ``seed``):

    1. the graph engine samples ``walks_per_entity`` random walks per seed
       entity (§2's pre-computed traversals);
    2. co-occurrences within a ``window`` of each walk are counted;
    3. the count matrix is reweighted with positive PMI;
    4. a truncated SVD yields ``dim``-dimensional vectors, indexed for k-NN.
    """

    def __init__(
        self,
        store: TripleStore,
        entities: list[str] | None = None,
        dim: int = 32,
        walk_length: int = 8,
        walks_per_entity: int = 6,
        window: int = 3,
        seed: int = 0,
        same_type_only: bool = True,
        engine: GraphEngine | None = None,
    ) -> None:
        self.store = store
        # A caller-supplied engine (e.g. a serving worker's, with an
        # mmap-adopted CSR snapshot) skips the adjacency rebuild the
        # default construction pays; walks are identical either way.
        self.engine = engine if engine is not None else GraphEngine(store)
        self.same_type_only = same_type_only
        self.entities = entities if entities is not None else sorted(store.entity_ids())
        self._index_of = {e: i for i, e in enumerate(self.entities)}
        self.dim = dim
        self._vectors = self._build(walk_length, walks_per_entity, window, seed, dim)
        self._knn = ExactIndex(metric="cosine")
        self._knn.add(self.entities, self._vectors)

    def _build(
        self, walk_length: int, walks_per_entity: int, window: int, seed: int, dim: int
    ) -> np.ndarray:
        # Consume walks in encoded (dictionary-id) form straight from the
        # engine's CSR snapshot: snapshot ids translate to local row indices
        # through one flat table, with no string round-trip per step.
        walks, snapshot = self.engine.random_walks_ids(
            self.entities,
            walk_length=walk_length,
            walks_per_entity=walks_per_entity,
            seed=seed,
        )
        local_of = [-1] * (len(snapshot.dictionary) + 1)  # [-1] slot: sentinel seeds
        for local, entity in enumerate(self.entities):
            node_id = snapshot.dictionary.get(entity)
            if node_id is not None:
                local_of[node_id] = local
        counts: Counter[tuple[int, int]] = Counter()
        for walk in walks:
            indexed = [local_of[node] for node in walk]
            indexed = [local for local in indexed if local >= 0]
            for i, center in enumerate(indexed):
                for j in range(max(0, i - window), min(len(indexed), i + window + 1)):
                    if i != j:
                        counts[(center, indexed[j])] += 1
        n = len(self.entities)
        matrix = np.zeros((n, n), dtype=np.float64)
        for (row, col), count in counts.items():
            matrix[row, col] = count
        total = matrix.sum()
        if total == 0:
            return np.zeros((n, dim))
        row_sums = matrix.sum(axis=1, keepdims=True)
        col_sums = matrix.sum(axis=0, keepdims=True)
        with np.errstate(divide="ignore", invalid="ignore"):
            expected = row_sums @ col_sums / total
            pmi = np.log(np.where(expected > 0, matrix * total / np.maximum(expected, 1e-12), 1.0))
        ppmi = np.maximum(pmi, 0.0)
        ppmi[~np.isfinite(ppmi)] = 0.0
        # Truncated SVD; ppmi is symmetric-ish so left vectors suffice.
        u, s, _vt = np.linalg.svd(ppmi, full_matrices=False)
        k = min(dim, len(s))
        vectors = u[:, :k] * np.sqrt(s[:k])
        if k < dim:
            vectors = np.pad(vectors, ((0, 0), (0, dim - k)))
        return normalize_rows(vectors)

    def vector(self, entity: str) -> np.ndarray:
        """Traversal-embedding of ``entity`` (zeros for unknown)."""
        index = self._index_of.get(entity)
        if index is None:
            return np.zeros(self.dim)
        return self._vectors[index].copy()

    def related(self, entity: str, k: int = 10) -> list[RelatedEntity]:
        if entity not in self._index_of:
            return []
        overfetch = k * 5 if self.same_type_only else k + 1
        hits = self._knn.search(self._vectors[self._index_of[entity]], overfetch)
        hits = [hit for hit in hits if hit.key != entity]
        if self.same_type_only and self.store.has_entity(entity):
            seed_types = set(self.store.entity(entity).types)
            hits = [
                hit
                for hit in hits
                if self.store.has_entity(hit.key)
                and seed_types & set(self.store.entity(hit.key).types)
            ]
        return [RelatedEntity(entity=h.key, score=h.score) for h in hits[:k]]


@dataclass
class RelatednessReport:
    """Precision/recall of related-entity suggestions vs. ground truth."""

    precision_at_k: float
    recall_at_k: float
    k: int
    num_seeds: int


def evaluate_related(
    backend: RelatedEntitiesBackend,
    truth: dict[str, set[str]],
    k: int = 10,
    max_seeds: int | None = None,
) -> RelatednessReport:
    """Average precision/recall@k over seeds with non-empty truth sets."""
    precisions: list[float] = []
    recalls: list[float] = []
    seeds = sorted(entity for entity, related in truth.items() if related)
    if max_seeds is not None:
        seeds = seeds[:max_seeds]
    for entity in seeds:
        suggestions = backend.related(entity, k=k)
        if not suggestions:
            precisions.append(0.0)
            recalls.append(0.0)
            continue
        suggested = {item.entity for item in suggestions}
        relevant = truth[entity]
        overlap = len(suggested & relevant)
        precisions.append(overlap / len(suggested))
        recalls.append(overlap / len(relevant))
    return RelatednessReport(
        precision_at_k=float(np.mean(precisions)) if precisions else 0.0,
        recall_at_k=float(np.mean(recalls)) if recalls else 0.0,
        k=k,
        num_seeds=len(seeds),
    )
