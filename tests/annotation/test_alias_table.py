"""Tests for the alias table."""

import pytest

from repro.annotation.alias_table import AliasTable
from repro.kg.store import EntityRecord, TripleStore


@pytest.fixture()
def store():
    s = TripleStore()
    s.upsert_entity(
        EntityRecord(
            entity="entity:mj-player", name="Michael Jordan",
            aliases=("M. Jordan", "Jordan"), popularity=0.9,
            types=("type:basketball_player",),
        )
    )
    s.upsert_entity(
        EntityRecord(
            entity="entity:mj-prof", name="Michael Jordan",
            aliases=("M. Jordan",), popularity=0.2,
            types=("type:person",),
        )
    )
    s.upsert_entity(
        EntityRecord(entity="entity:city", name="Jordanville", popularity=0.3)
    )
    return s


class TestLookup:
    def test_exact_lookup_case_insensitive(self, store):
        table = AliasTable(store)
        entries = table.lookup("michael jordan")
        assert {e.entity for e in entries} == {"entity:mj-player", "entity:mj-prof"}

    def test_priors_normalised_and_ordered(self, store):
        table = AliasTable(store)
        entries = table.lookup("Michael Jordan")
        assert entries[0].entity == "entity:mj-player"  # more popular first
        assert sum(e.prior for e in entries) == pytest.approx(1.0)

    def test_alias_lookup(self, store):
        table = AliasTable(store)
        entries = table.lookup("M. Jordan")
        assert {e.entity for e in entries} == {"entity:mj-player", "entity:mj-prof"}

    def test_missing_surface_empty(self, store):
        assert AliasTable(store).lookup("Nobody Here") == []

    def test_contains(self, store):
        table = AliasTable(store)
        assert table.contains("Michael  Jordan")  # whitespace normalised
        assert not table.contains("Santa Claus")

    def test_max_key_tokens(self, store):
        assert AliasTable(store).max_key_tokens() == 2


class TestTrie:
    def test_trie_spells_every_key(self, store):
        from repro.annotation.alias_table import TRIE_KEY

        table = AliasTable(store)
        for key in table._exact:
            node = table.trie
            for word in key.split(" "):
                node = node[word]
            assert TRIE_KEY in node

    def test_trie_rejects_partial_key(self, store):
        from repro.annotation.alias_table import TRIE_KEY

        table = AliasTable(store)
        node = table.trie["michael"]
        assert TRIE_KEY not in node  # "michael" alone is not a surface form
        assert TRIE_KEY in node["jordan"]

    def test_trie_rebuilt_on_refresh(self, store):
        table = AliasTable(store)
        assert "fresh" not in table.trie
        store.upsert_entity(
            EntityRecord(entity="entity:new", name="Fresh Entity", popularity=0.1)
        )
        table.refresh()
        assert "fresh" in table.trie
        assert table.max_key_tokens() == 2


class TestFuzzy:
    def test_typo_recovered(self, store):
        table = AliasTable(store, fuzzy_threshold=0.6)
        entries = table.lookup_fuzzy("Jordanvile")  # missing letter
        assert any(e.entity == "entity:city" for e in entries)
        assert all(not e.exact for e in entries)

    def test_exact_preferred_when_available(self, store):
        table = AliasTable(store)
        entries = table.lookup_fuzzy("Michael Jordan")
        assert all(e.exact for e in entries)

    def test_fuzzy_prior_discounted(self, store):
        table = AliasTable(store, fuzzy_threshold=0.6)
        exact_prior = table.lookup("Jordanville")[0].prior
        fuzzy = table.lookup_fuzzy("Jordanvile")
        city = next(e for e in fuzzy if e.entity == "entity:city")
        assert city.prior < exact_prior

    def test_limit_respected(self, store):
        table = AliasTable(store, fuzzy_threshold=0.1)
        assert len(table.lookup_fuzzy("Jordan", limit=1)) <= 1


class TestFreshness:
    def test_refresh_picks_up_new_entities(self, store):
        table = AliasTable(store)
        assert not table.contains("Fresh Entity")
        store.upsert_entity(
            EntityRecord(entity="entity:new", name="Fresh Entity", popularity=0.1)
        )
        assert table.is_stale
        table.refresh()
        assert table.contains("Fresh Entity")

    def test_refresh_noop_when_current(self, store):
        table = AliasTable(store)
        version_before = store.version
        table.refresh()
        assert store.version == version_before
        assert not table.is_stale
