"""Tests for the assembled annotation pipeline (tiers, quality, NIL)."""

import pytest

from repro.annotation.evaluation import evaluate_annotations
from repro.annotation.pipeline import make_pipeline
from repro.annotation.web_annotator import WebAnnotator
from repro.common.text import normalize_name


class TestAnnotateText:
    def test_links_known_entities(self, kg, full_annotation_pipeline):
        record = next(
            r for r in kg.store.entities() if "type:person" in r.types
        )
        links = full_annotation_pipeline.annotate(f"News about {record.name} today.")
        assert any(link.mention.surface == record.name for link in links)

    def test_nil_for_unknown_names(self, full_annotation_pipeline):
        links = full_annotation_pipeline.annotate(
            "Zebulon Crabtree and Perpetua Nightingale met for tea."
        )
        assert links == []

    def test_candidates_attached(self, kg, full_annotation_pipeline):
        name = next(iter(kg.truth.ambiguous_names))
        links = full_annotation_pipeline.annotate(f"A story about {name}.")
        assert links
        assert len(links[0].candidates) >= 2

    def test_entity_types_labelled(self, kg, full_annotation_pipeline):
        person = next(
            r for r in kg.store.entities() if "type:person" in r.types
        )
        links = full_annotation_pipeline.annotate(f"{person.name} spoke today.")
        assert links and links[0].entity_type == "PERSON"

    def test_document_offsets_rebased(self, kg, corpus, full_annotation_pipeline):
        doc = next(d for d in corpus if d.gold_mentions)
        annotated = full_annotation_pipeline.annotate_document(doc)
        for link in annotated.links:
            assert doc.text[link.mention.start : link.mention.end] == link.mention.surface


class TestDisambiguation:
    def test_context_beats_prior_on_ambiguous_names(self, kg, corpus):
        """The Figure 2 claim: the full tier disambiguates namesakes far
        better than the prior-only lite tier."""
        full = make_pipeline(kg.store, tier="full")
        lite = make_pipeline(kg.store, tier="lite")
        ambiguous_keys = {normalize_name(n) for n in kg.truth.ambiguous_names}
        docs = [
            d for d in corpus
            if any(normalize_name(m.surface) in ambiguous_keys for m in d.gold_mentions)
        ]
        assert docs, "corpus must contain ambiguous-name documents"

        def disambig_accuracy(pipeline):
            predictions = {
                d.doc_id: pipeline.annotate_document(d).links for d in docs
            }
            report = evaluate_annotations(predictions, docs, kg.truth.ambiguous_names)
            return report.disambiguation_accuracy

        assert disambig_accuracy(full) > disambig_accuracy(lite) + 0.1

    def test_full_quality_floor(self, kg, corpus, full_annotation_pipeline):
        docs = corpus.documents[:150]
        predictions = {
            d.doc_id: full_annotation_pipeline.annotate_document(d).links for d in docs
        }
        report = evaluate_annotations(predictions, docs, kg.truth.ambiguous_names)
        assert report.f1 > 0.85
        assert report.precision > 0.85


class TestWebAnnotator:
    def test_full_run_covers_corpus(self, kg, corpus, full_annotation_pipeline):
        annotator = WebAnnotator(full_annotation_pipeline)
        report = annotator.annotate_corpus(corpus)
        assert report.docs_processed == len(corpus)
        assert report.docs_skipped_unchanged == 0
        assert annotator.store.num_links == report.links_produced

    def test_incremental_skips_unchanged(self, kg, corpus, full_annotation_pipeline):
        annotator = WebAnnotator(full_annotation_pipeline)
        annotator.annotate_corpus(corpus)
        second = annotator.annotate_corpus(corpus)
        assert second.docs_processed == 0
        assert second.docs_skipped_unchanged == len(corpus)

    def test_incremental_processes_changed(self, kg, corpus, full_annotation_pipeline):
        from repro.web.crawl import evolve

        annotator = WebAnnotator(full_annotation_pipeline)
        annotator.annotate_corpus(corpus)
        evolved, delta = evolve(corpus, kg, change_fraction=0.1, new_fraction=0.0, seed=3)
        report = annotator.annotate_corpus(evolved)
        assert report.docs_processed == len(delta.changed_ids)

    def test_full_reprocess_after_reset(self, kg, corpus, full_annotation_pipeline):
        annotator = WebAnnotator(full_annotation_pipeline)
        annotator.annotate_corpus(corpus)
        annotator.reset_state()
        report = annotator.annotate_corpus(corpus)
        assert report.docs_processed == len(corpus)

    def test_entity_docs_projection(self, kg, corpus, full_annotation_pipeline):
        annotator = WebAnnotator(full_annotation_pipeline)
        annotator.annotate_corpus(corpus)
        doc = next(d for d in corpus if d.gold_mentions)
        annotated = annotator.store.links_of(doc.doc_id)
        assert annotated is not None
        for entity in annotated.entities:
            assert doc.doc_id in annotator.store.docs_mentioning(entity)

    def test_num_links_counter_tracks_overwrites(self, kg, corpus, full_annotation_pipeline):
        from repro.annotation.web_annotator import AnnotationStore

        store = AnnotationStore()
        docs = [d for d in corpus.documents[:10]]
        annotated = [full_annotation_pipeline.annotate_document(d) for d in docs]
        for doc in annotated:
            store.put(doc)
        expected = sum(len(d.links) for d in annotated)
        assert store.num_links == expected
        # Replacing a document must not double-count its links.
        store.put(annotated[0])
        assert store.num_links == expected
        assert store.num_links == sum(len(d.links) for d in store.documents.values())

    def test_shard_assignment_stable(self, full_annotation_pipeline):
        annotator = WebAnnotator(full_annotation_pipeline, num_shards=8)
        assert annotator.shard_of("doc:web/000001") == annotator.shard_of("doc:web/000001")
        with pytest.raises(ValueError):
            WebAnnotator(full_annotation_pipeline, num_shards=0)


class TestAnnotateBatch:
    """Cross-document batching must not change what gets linked."""

    @staticmethod
    def signature(links):
        return [
            (
                link.mention.start,
                link.mention.end,
                link.mention.surface,
                link.entity,
                link.entity_type,
                [candidate.entity for candidate in link.candidates],
            )
            for link in links
        ]

    def test_matches_per_document_annotate(self, kg, corpus):
        pipeline = make_pipeline(kg.store, tier="full")
        reference = make_pipeline(kg.store, tier="full")
        texts = [doc.full_text for doc in list(corpus)[:10]]
        batched = pipeline.annotate_batch(texts)
        assert len(batched) == len(texts)
        for text, links in zip(texts, batched):
            assert self.signature(links) == self.signature(reference.annotate(text))

    def test_lite_tier_batches_bitwise(self, kg, corpus):
        """No context matmul in lite — scores must match exactly too."""
        pipeline = make_pipeline(kg.store, tier="lite")
        reference = make_pipeline(kg.store, tier="lite")
        texts = [doc.full_text for doc in list(corpus)[:8]]
        for text, links in zip(texts, pipeline.annotate_batch(texts)):
            expected = reference.annotate(text)
            assert self.signature(links) == self.signature(expected)
            assert [link.score for link in links] == [link.score for link in expected]

    def test_empty_and_linkless_documents(self, kg, full_annotation_pipeline):
        results = full_annotation_pipeline.annotate_batch(
            ["", "Nothing known here.", ""]
        )
        assert results == [[], [], []]

    def test_metrics_count_batches(self, kg):
        pipeline = make_pipeline(kg.store, tier="lite")
        pipeline.annotate_batch(["one text", "two text"])
        assert pipeline.metrics.counters["texts"] == 2
        assert pipeline.metrics.counters["batches"] == 1
