"""Tests for context encoding, candidate generation and NER typing."""

import numpy as np
import pytest

from repro.annotation.alias_table import AliasTable
from repro.annotation.candidates import CandidateGenerator, CandidateGeneratorConfig
from repro.annotation.context_encoder import EntityContextIndex, HashingContextEncoder
from repro.annotation.mention import Mention
from repro.annotation.ner import PERSON, PLACE, WORK, EntityTyper
from repro.common import ids
from repro.kg.store import EntityRecord, TripleStore
from repro.kg.triple import entity_fact


@pytest.fixture()
def store():
    s = TripleStore()
    s.upsert_entity(
        EntityRecord(
            entity="entity:player", name="Michael Jordan", popularity=0.9,
            types=(ids.type_id("basketball_player"), ids.type_id("person")),
            description="Michael Jordan is a basketball player.",
        )
    )
    s.upsert_entity(
        EntityRecord(
            entity="entity:prof", name="Michael Jordan", popularity=0.3,
            types=(ids.type_id("person"),),
            description="Michael Jordan is a university professor.",
        )
    )
    s.upsert_entity(
        EntityRecord(
            entity="entity:team", name="Chicago Hawks", popularity=0.5,
            types=(ids.type_id("sports_team"),),
            description="The Chicago Hawks are a basketball team.",
        )
    )
    s.add(entity_fact("entity:player", ids.predicate_id("member_of_sports_team"), "entity:team"))
    return s


class TestEncoder:
    def test_deterministic_across_instances(self):
        a = HashingContextEncoder(dim=64).encode_text("basketball stats game")
        b = HashingContextEncoder(dim=64).encode_text("basketball stats game")
        assert np.array_equal(a, b)

    def test_unit_norm(self):
        vector = HashingContextEncoder(dim=64).encode_text("some words here")
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_empty_text_zero_vector(self):
        vector = HashingContextEncoder(dim=64).encode_text("")
        assert np.all(vector == 0)

    def test_similar_texts_closer(self):
        encoder = HashingContextEncoder(dim=256)
        a = encoder.encode_text("basketball game player team score")
        b = encoder.encode_text("basketball team player match")
        c = encoder.encode_text("university research professor students")
        assert float(a @ b) > float(a @ c)

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            HashingContextEncoder(dim=0)

    def test_batch_matches_single_bitwise(self):
        encoder = HashingContextEncoder(dim=64)
        token_lists = [
            ["basketball", "game", "player"],
            [],
            ["professor", "students", "professor", "university"],
            ["one"],
        ]
        batch = encoder.encode_batch(token_lists)
        assert batch.shape == (4, 64)
        for row, tokens in enumerate(token_lists):
            assert np.array_equal(batch[row], encoder.encode_tokens(tokens))

    def test_memoisation_does_not_change_vectors(self):
        warm = HashingContextEncoder(dim=64)
        warm.encode_tokens(["alpha", "beta"])  # warm the token memo
        cold = HashingContextEncoder(dim=64)
        assert np.array_equal(
            warm.encode_tokens(["alpha", "beta", "gamma"]),
            cold.encode_tokens(["alpha", "beta", "gamma"]),
        )


class TestEntityContextIndex:
    def test_build_counts(self, store):
        index = EntityContextIndex(store)
        assert index.build() == 3
        assert not index.is_stale

    def test_vectors_cached(self, store):
        index = EntityContextIndex(store)
        index.build()
        v1 = index.vector("entity:player")
        v2 = index.vector("entity:player")
        assert np.array_equal(v1, v2)

    def test_context_disambiguates(self, store):
        """Basketball context is closer to the player than the professor."""
        index = EntityContextIndex(store)
        index.build()
        query = index.encoder.encode_text("basketball stats game team")
        assert index.similarity(query, "entity:player") > index.similarity(
            query, "entity:prof"
        )

    def test_unknown_entity_zero_vector(self, store):
        index = EntityContextIndex(store)
        assert np.all(index.vector("entity:ghost") == 0)

    def test_staleness(self, store):
        index = EntityContextIndex(store)
        index.build()
        store.upsert_entity(EntityRecord(entity="entity:new", name="New", popularity=0.1))
        assert index.is_stale

    def test_rows_gather_matches_vectors(self, store):
        index = EntityContextIndex(store)
        index.build()
        entities = ["entity:team", "entity:player", "entity:team"]
        rows = index.rows(entities)
        assert rows.shape == (3, index.encoder.dim)
        for row, entity in zip(rows, entities):
            assert np.array_equal(row, index.vector(entity))
        assert index.rows([]).shape == (0, index.encoder.dim)

    def test_rows_materialise_misses(self, store):
        index = EntityContextIndex(store)  # never built
        rows = index.rows(["entity:player", "entity:ghost"])
        assert np.any(rows[0] != 0)
        assert np.all(rows[1] == 0)

    def test_kv_store_remains_persistence_view(self, store):
        index = EntityContextIndex(store)
        index.build()
        assert len(index) == 3
        for record in store.entities():
            assert np.array_equal(index.cache.get(record.entity), index.vector(record.entity))

    def test_clear_reads_cold(self, store):
        index = EntityContextIndex(store)
        index.build()
        index.clear()
        assert len(index) == 0
        assert len(index.cache) == 0
        assert index.is_stale
        # Still serves vectors, recomputed from the live store.
        assert np.any(index.vector("entity:player") != 0)


class TestCandidateGenerator:
    def test_generates_with_priors(self, store):
        generator = CandidateGenerator(AliasTable(store), store)
        candidates = generator.generate(Mention(0, 14, "Michael Jordan"))
        assert len(candidates) == 2
        assert candidates[0].prior >= candidates[1].prior
        assert all(c.name_similarity == pytest.approx(1.0) for c in candidates)

    def test_max_candidates(self, store):
        generator = CandidateGenerator(
            AliasTable(store), store, CandidateGeneratorConfig(max_candidates=1)
        )
        assert len(generator.generate(Mention(0, 14, "Michael Jordan"))) == 1

    def test_fuzzy_fallback(self, store):
        generator = CandidateGenerator(AliasTable(store), store)
        candidates = generator.generate(Mention(0, 13, "Chicago Hawkes"))
        assert any(c.entity == "entity:team" for c in candidates)

    def test_fuzzy_disabled(self, store):
        generator = CandidateGenerator(
            AliasTable(store), store, CandidateGeneratorConfig(enable_fuzzy=False)
        )
        assert generator.generate(Mention(0, 13, "Chicago Hawkes")) == []


class TestEntityTyper:
    def test_types_from_kg(self, store):
        typer = EntityTyper(store)
        assert typer.label_for_entity("entity:player") == PERSON
        assert typer.label_for_entity("entity:team") == "ORG"
        assert typer.label_for_entity("entity:ghost") == "OTHER"

    def test_context_fallback(self):
        assert EntityTyper.label_from_context(["the", "film", "was", "released"]) == WORK
        assert EntityTyper.label_from_context(["visit", "the", "city"]) == PLACE
        assert EntityTyper.label_from_context(["xyzzy"]) == "OTHER"

    def test_mention_invariants(self):
        with pytest.raises(ValueError):
            Mention(5, 5, "")
