"""Golden parity tests: the vectorized serving path vs the legacy one.

The trie detector, batched encoder and one-matmul reranker must emit the
same links the historical per-window / per-pair implementations did.  The
legacy implementations are reproduced verbatim below (the PR-1 pattern)
and run side by side with the shipped pipeline across randomized corpora,
stale-refresh cycles, fuzzy fallback and unicode edge cases.

Parity contract:

* mention spans/surfaces, chosen entities, entity types, candidate order
  and the prior/name-similarity features are **byte-identical**;
* lite-tier scores are byte-identical (pure elementwise float64);
* full-tier context/coherence scores agree to float64 rounding — the one
  matmul reduces in a different order than per-pair BLAS ``ddot``, the
  same class of difference a different BLAS build would produce.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.annotation.alias_table import AliasTable
from repro.annotation.candidates import CandidateGenerator
from repro.annotation.mention import Mention
from repro.annotation.mention_detection import (
    DictionaryMentionDetector,
    MentionDetectorConfig,
)
from repro.annotation.pipeline import make_pipeline
from repro.common.text import name_similarity, tokenize_with_offsets
from repro.kg.store import EntityRecord, TripleStore
from repro.vector.service import EmbeddingService

SCORE_TOL = 1e-9


class LegacyDictionaryMentionDetector:
    """Seed implementation: per-window slicing + ``contains`` lookups."""

    def __init__(self, alias_table, config=None):
        self.alias_table = alias_table
        self.config = config or MentionDetectorConfig()

    def detect(self, text):
        tokens = tokenize_with_offsets(text)
        config = self.config
        max_ngram = min(config.max_ngram, self.alias_table.max_key_tokens())
        mentions = []
        i = 0
        while i < len(tokens):
            matched = False
            for n in range(min(max_ngram, len(tokens) - i), 0, -1):
                window = tokens[i : i + n]
                surface = text[window[0][1] : window[-1][2]]
                if len(surface) < config.min_surface_chars:
                    continue
                if config.require_capitalized and not any(
                    tok[0][:1].isupper() for tok in window
                ):
                    continue
                if self.alias_table.contains(surface):
                    mentions.append(
                        Mention(start=window[0][1], end=window[-1][2], surface=surface)
                    )
                    i += n
                    matched = True
                    break
            if not matched:
                i += 1
        return mentions


def legacy_coherence(service, entity, document_entities):
    """Seed implementation of the coherence feature (per-pair similarity)."""
    if not service.has_entity(entity):
        return 0.0
    similarities = [
        service.similarity(entity, other)
        for other in document_entities
        if other != entity and service.has_entity(other)
    ]
    return float(np.mean(similarities)) if similarities else 0.0


def legacy_rerank(reranker, candidates, query_vector=None, document_entities=None):
    """Seed implementation: one ``np.dot`` + dict lookup per candidate."""
    cfg = reranker.config
    for candidate in candidates:
        if cfg.use_context and query_vector is not None:
            candidate.context_similarity = reranker.context_index.similarity(
                query_vector, candidate.entity
            )
        if (
            cfg.use_coherence
            and reranker.embedding_service is not None
            and document_entities
        ):
            candidate.coherence = legacy_coherence(
                reranker.embedding_service, candidate.entity, document_entities
            )
        candidate.score = (
            cfg.weight_prior * candidate.prior
            + cfg.weight_name * candidate.name_similarity
            + cfg.weight_context * candidate.context_similarity
            + cfg.weight_coherence * candidate.coherence
        )
    candidates.sort(key=lambda c: (-c.score, c.entity))
    return candidates


def legacy_annotate_text(pipeline, text):
    """Seed implementation of ``AnnotationPipeline._annotate_text``."""
    from repro.annotation.mention import EntityLink

    if pipeline.alias_table.is_stale:
        pipeline.alias_table.refresh()
    detector = LegacyDictionaryMentionDetector(
        pipeline.alias_table, pipeline.detector.config
    )
    mentions = detector.detect(text)
    resolved = []
    use_coherence = pipeline.reranker.config.use_coherence
    first_pass = []
    for mention in mentions:
        candidates = pipeline.candidate_generator.generate(mention)
        if not candidates:
            continue
        query_vector = pipeline._query_vector(text, mention)
        legacy_rerank(pipeline.reranker, candidates, query_vector=query_vector)
        first_pass.append((mention, candidates))
    document_entities = [cands[0].entity for _, cands in first_pass if cands]
    for mention, candidates in first_pass:
        if use_coherence and len(document_entities) > 1:
            query_vector = pipeline._query_vector(text, mention)
            legacy_rerank(
                pipeline.reranker,
                candidates,
                query_vector=query_vector,
                document_entities=document_entities,
            )
        best = candidates[0]
        if not pipeline.reranker.accepts(best):
            continue
        resolved.append(
            EntityLink(
                mention=mention,
                entity=best.entity,
                score=best.score,
                entity_type=pipeline.typer.label_for_entity(best.entity),
                candidates=candidates,
            )
        )
    return resolved


def snapshot_links(links):
    """A deep, comparison-friendly copy of an ``EntityLink`` list.

    ``legacy_annotate_text`` mutates the same ``Candidate`` objects the new
    path produces, so each run must be snapshotted before the other runs.
    """
    return [
        {
            "mention": (link.mention.start, link.mention.end, link.mention.surface),
            "entity": link.entity,
            "score": link.score,
            "entity_type": link.entity_type,
            "candidates": [
                (c.entity, c.prior, c.name_similarity, c.context_similarity,
                 c.coherence, c.score)
                for c in link.candidates
            ],
        }
        for link in links
    ]


def assert_links_match(new, old, exact_scores):
    assert len(new) == len(old)
    for got, want in zip(new, old):
        assert got["mention"] == want["mention"]
        assert got["entity"] == want["entity"]
        assert got["entity_type"] == want["entity_type"]
        got_entities = [c[0] for c in got["candidates"]]
        want_entities = [c[0] for c in want["candidates"]]
        assert got_entities == want_entities, "candidate order must be identical"
        if exact_scores:
            assert got["score"] == want["score"]
            assert got["candidates"] == want["candidates"]
        else:
            assert got["score"] == pytest.approx(want["score"], abs=SCORE_TOL)
            for gc, wc in zip(got["candidates"], want["candidates"]):
                assert gc[1] == wc[1]  # prior: byte-identical
                assert gc[2] == wc[2]  # name similarity: byte-identical
                for idx in (3, 4, 5):  # context, coherence, score
                    assert gc[idx] == pytest.approx(wc[idx], abs=SCORE_TOL)


def run_parity(pipeline, texts, exact_scores):
    for text in texts:
        new = snapshot_links(pipeline.annotate(text))
        old = snapshot_links(legacy_annotate_text(pipeline, text))
        assert_links_match(new, old, exact_scores=exact_scores)


@pytest.fixture(scope="module")
def corpus_texts(corpus):
    return [doc.full_text for doc in corpus.documents[:80]]


class TestDetectorParity:
    def test_randomized_corpus(self, kg, corpus):
        table = AliasTable(kg.store)
        new = DictionaryMentionDetector(table)
        old = LegacyDictionaryMentionDetector(table)
        for doc in corpus.documents[:150]:
            assert new.detect(doc.full_text) == old.detect(doc.full_text)

    def test_unicode_and_punctuation_edges(self):
        store = TripleStore()
        for entity, name, aliases in [
            ("entity:jose", "José García", ("Jose",)),
            ("entity:obrien", "O'Brien", ()),
            ("entity:mueller", "Müller", ()),
            ("entity:root", "Joe Root", ("Root",)),
            ("entity:ny", "New York City", ("New York",)),
        ]:
            store.upsert_entity(
                EntityRecord(entity=entity, name=name, aliases=aliases, popularity=0.5)
            )
        table = AliasTable(store)
        new = DictionaryMentionDetector(table)
        old = LegacyDictionaryMentionDetector(table)
        texts = [
            "José García met O'Brien in New York City.",
            "Jose Garcia, O'Brien and Müller toured New York.",
            "Muller; Jose — and Joe Root!  ''' Root",
            "JOSÉ GARCÍA and o'brien and new york city",  # caps + lowercase gates
            "JoéRoot is glued; Joe Root is not.",  # combining char glue
            "Joé Root and José García again",
            "Joe, Root / New\tYork  City ... O'Brien's",
            "…Müller… (José) [García] O''Brien",
            "",
        ]
        for text in texts:
            assert new.detect(text) == old.detect(text), text

    def test_gate_configs(self, kg, corpus):
        table = AliasTable(kg.store)
        for config in [
            MentionDetectorConfig(require_capitalized=False),
            MentionDetectorConfig(max_ngram=2),
            MentionDetectorConfig(min_surface_chars=6),
        ]:
            new = DictionaryMentionDetector(table, config)
            old = LegacyDictionaryMentionDetector(table, config)
            for doc in corpus.documents[:40]:
                assert new.detect(doc.full_text) == old.detect(doc.full_text)


class TestPipelineParity:
    def test_full_tier(self, kg, corpus_texts):
        pipeline = make_pipeline(kg.store, tier="full")
        run_parity(pipeline, corpus_texts, exact_scores=False)

    def test_lite_tier_byte_identical(self, kg, corpus_texts):
        pipeline = make_pipeline(kg.store, tier="lite")
        run_parity(pipeline, corpus_texts, exact_scores=True)

    def test_full_tier_with_coherence(self, kg, trained, corpus_texts):
        service = EmbeddingService(trained.trained)
        pipeline = make_pipeline(kg.store, tier="full", embedding_service=service)
        assert pipeline.reranker.config.use_coherence
        run_parity(pipeline, corpus_texts[:30], exact_scores=False)

    def test_query_vectors_byte_identical(self, kg, corpus_texts):
        pipeline = make_pipeline(kg.store, tier="full")
        for text in corpus_texts[:20]:
            mentions = pipeline.detector.detect(text)
            if not mentions:
                continue
            batch = pipeline.encoder.encode_batch(
                [pipeline._window_tokens(text, m) for m in mentions]
            )
            for row, mention in enumerate(mentions):
                single = pipeline._query_vector(text, mention)
                assert np.array_equal(batch[row], single)


class TestStaleRefreshParity:
    def test_parity_across_refresh_cycles(self, corpus_texts):
        from repro.kg.generator import SyntheticKGConfig, generate_kg

        kg = generate_kg(SyntheticKGConfig(seed=23, scale=0.25))
        pipeline = make_pipeline(kg.store, tier="full")
        texts = corpus_texts[:15]
        run_parity(pipeline, texts, exact_scores=False)

        # Grow the KG: the alias table must pick up the new surface forms
        # on its refresh, identically on both paths.
        kg.store.upsert_entity(
            EntityRecord(
                entity="entity:new-star",
                name="Zadie Mooncrest",
                aliases=("Mooncrest",),
                popularity=0.9,
                types=("type:person",),
                description="Zadie Mooncrest is a celebrated novelist.",
            )
        )
        assert pipeline.alias_table.is_stale
        run_parity(
            pipeline,
            ["Zadie Mooncrest published a novel.", *texts[:10]],
            exact_scores=False,
        )

        # A second cycle, touching an existing surface form.
        kg.store.upsert_entity(
            EntityRecord(
                entity="entity:new-star-2",
                name="Zadie Mooncrest",
                popularity=0.4,
                types=("type:person",),
                description="Another Zadie Mooncrest, a painter.",
            )
        )
        run_parity(
            pipeline,
            ["Critics praised Zadie Mooncrest today.", *texts[:10]],
            exact_scores=False,
        )


class TestFuzzyFallbackParity:
    def test_fuzzy_candidates_and_scores(self, kg):
        """Typo'd surfaces exercise ``lookup_fuzzy``; the generator features
        and the batched rerank must match the legacy scalar path."""
        pipeline = make_pipeline(kg.store, tier="full")
        generator = CandidateGenerator(
            pipeline.alias_table, kg.store, pipeline.candidate_generator.config
        )
        names = [r.name for r in list(kg.store.entities())[:40] if len(r.name) > 6]
        checked = 0
        for name in names:
            typo = name[:-2] + name[-1]  # drop a letter near the end
            mention = Mention(start=0, end=len(typo), surface=typo)
            candidates = generator.generate(mention)
            if not candidates or candidates[0].entity in {
                e.entity for e in pipeline.alias_table.lookup(typo)
            }:
                continue
            checked += 1
            # Feature parity vs the seed name_similarity computation.
            for candidate in candidates:
                record_name = (
                    kg.store.entity(candidate.entity).name
                    if kg.store.has_entity(candidate.entity)
                    else candidate.entity
                )
                assert candidate.name_similarity == name_similarity(typo, record_name)
            # Rerank parity on the fuzzy candidates.
            text = f"{typo} appeared in the news"
            query = pipeline._query_vector(text, mention)
            import copy

            legacy_side = copy.deepcopy(candidates)
            legacy_rerank(pipeline.reranker, legacy_side, query_vector=query)
            pipeline.reranker.rerank_batch([candidates], query_matrix=query[None, :])
            assert [c.entity for c in candidates] == [c.entity for c in legacy_side]
            for got, want in zip(candidates, legacy_side):
                assert got.prior == want.prior
                assert got.name_similarity == want.name_similarity
                assert got.score == pytest.approx(want.score, abs=SCORE_TOL)
        assert checked >= 3, "expected several fuzzy-fallback cases"
