"""Tests for dictionary mention detection."""

import pytest

from repro.annotation.alias_table import AliasTable
from repro.annotation.mention_detection import (
    DictionaryMentionDetector,
    MentionDetectorConfig,
)
from repro.kg.store import EntityRecord, TripleStore


@pytest.fixture()
def detector():
    store = TripleStore()
    store.upsert_entity(
        EntityRecord(entity="entity:root", name="Joe Root", aliases=("Root",), popularity=0.8)
    )
    store.upsert_entity(
        EntityRecord(entity="entity:england", name="England", popularity=0.9)
    )
    return DictionaryMentionDetector(AliasTable(store))


class TestDetection:
    def test_finds_full_names(self, detector):
        mentions = detector.detect("Joe Root hits a hundred as England celebrate")
        surfaces = {m.surface for m in mentions}
        assert "Joe Root" in surfaces
        assert "England" in surfaces

    def test_offsets_correct(self, detector):
        text = "Joe Root hits a hundred"
        mention = detector.detect(text)[0]
        assert text[mention.start : mention.end] == mention.surface

    def test_longest_match_wins(self, detector):
        mentions = detector.detect("Joe Root scored")
        assert mentions[0].surface == "Joe Root"  # not just "Root"

    def test_capitalisation_gate(self, detector):
        # lowercase "root" (the word) must not fire the alias "Root".
        mentions = detector.detect("the root of the problem in england")
        assert mentions == []

    def test_capitalised_alias_fires(self, detector):
        mentions = detector.detect("Root hits hundred")
        assert mentions and mentions[0].surface == "Root"

    def test_no_overlapping_mentions(self, detector):
        mentions = detector.detect("Joe Root and England and Joe Root again")
        spans = [(m.start, m.end) for m in mentions]
        for i in range(len(spans) - 1):
            assert spans[i][1] <= spans[i + 1][0]

    def test_gate_disabled(self, detector):
        config = MentionDetectorConfig(require_capitalized=False)
        permissive = DictionaryMentionDetector(detector.alias_table, config)
        assert permissive.detect("talking about england today")

    def test_empty_text(self, detector):
        assert detector.detect("") == []

    def test_min_surface_chars(self, detector):
        store = TripleStore()
        store.upsert_entity(EntityRecord(entity="entity:x", name="A", popularity=0.5))
        tiny = DictionaryMentionDetector(
            AliasTable(store), MentionDetectorConfig(min_surface_chars=2)
        )
        assert tiny.detect("A short letter") == []
