"""Tests for similarity kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.vector.similarity import (
    cosine,
    dot,
    euclidean,
    normalize_rows,
    pairwise_cosine,
)


class TestNormalize:
    def test_unit_norms(self):
        matrix = np.array([[3.0, 4.0], [1.0, 0.0]])
        normalized = normalize_rows(matrix)
        assert np.allclose(np.linalg.norm(normalized, axis=1), 1.0)

    def test_zero_rows_stay_zero(self):
        normalized = normalize_rows(np.zeros((2, 3)))
        assert np.all(normalized == 0)

    @settings(max_examples=25, deadline=None)
    @given(arrays(np.float64, (4, 3), elements=st.floats(-10, 10)))
    def test_property_norm_at_most_one(self, matrix):
        norms = np.linalg.norm(normalize_rows(matrix), axis=1)
        assert np.all((np.isclose(norms, 1.0)) | (norms == 0.0))


class TestMetrics:
    def test_cosine_self(self):
        v = np.array([1.0, 2.0])
        assert cosine(v, v[None, :])[0] == pytest.approx(1.0)

    def test_cosine_orthogonal(self):
        assert cosine(np.array([1.0, 0.0]), np.array([[0.0, 1.0]]))[0] == pytest.approx(0.0)

    def test_dot(self):
        assert dot(np.array([1.0, 2.0]), np.array([[3.0, 4.0]]))[0] == 11.0

    def test_euclidean_negated_distance(self):
        scores = euclidean(np.array([0.0, 0.0]), np.array([[3.0, 4.0], [0.0, 0.0]]))
        assert scores[0] == pytest.approx(-5.0)
        assert scores[1] == pytest.approx(0.0)
        assert scores[1] > scores[0]  # closer = larger

    def test_pairwise_cosine_shape(self):
        a = np.random.default_rng(0).normal(size=(3, 4))
        b = np.random.default_rng(1).normal(size=(5, 4))
        assert pairwise_cosine(a, b).shape == (3, 5)

    def test_pairwise_cosine_bounds(self):
        a = np.random.default_rng(0).normal(size=(3, 4))
        matrix = pairwise_cosine(a, a)
        assert np.all(matrix <= 1.0 + 1e-9)
        assert np.allclose(np.diag(matrix), 1.0)
