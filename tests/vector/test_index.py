"""Tests for the exact and IVF vector indexes."""

import numpy as np
import pytest

from repro.common.errors import IndexError_
from repro.vector.index import ExactIndex, IVFIndex, _GrowableMatrix, recall_at_k


@pytest.fixture()
def vectors():
    rng = np.random.default_rng(4)
    matrix = rng.normal(size=(200, 16))
    keys = [f"entity:e{i:03d}" for i in range(200)]
    return keys, matrix


class TestExactIndex:
    def test_self_is_nearest(self, vectors):
        keys, matrix = vectors
        index = ExactIndex()
        index.add(keys, matrix)
        hits = index.search(matrix[17], k=1)
        assert hits[0].key == keys[17]

    def test_results_sorted(self, vectors):
        keys, matrix = vectors
        index = ExactIndex()
        index.add(keys, matrix)
        hits = index.search(matrix[0], k=10)
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)

    def test_k_larger_than_index(self):
        index = ExactIndex()
        index.add(["entity:a"], np.ones((1, 4)))
        assert len(index.search(np.ones(4), k=10)) == 1

    def test_empty_index(self):
        assert ExactIndex().search(np.ones(4), k=5) == []

    def test_duplicate_key_rejected(self):
        index = ExactIndex()
        index.add(["entity:a"], np.ones((1, 4)))
        with pytest.raises(IndexError_):
            index.add(["entity:a"], np.ones((1, 4)))

    def test_dimension_mismatch_rejected(self):
        index = ExactIndex()
        index.add(["entity:a"], np.ones((1, 4)))
        with pytest.raises(IndexError_):
            index.add(["entity:b"], np.ones((1, 5)))

    def test_key_count_mismatch_rejected(self):
        with pytest.raises(IndexError_):
            ExactIndex().add(["entity:a", "entity:b"], np.ones((1, 4)))

    def test_vector_lookup(self, vectors):
        keys, matrix = vectors
        index = ExactIndex()
        index.add(keys, matrix)
        assert np.allclose(index.vector(keys[5]), matrix[5])
        with pytest.raises(IndexError_):
            index.vector("entity:ghost")

    def test_unknown_metric_rejected(self):
        with pytest.raises(IndexError_):
            ExactIndex(metric="manhattan")

    def test_incremental_add(self, vectors):
        keys, matrix = vectors
        index = ExactIndex()
        index.add(keys[:100], matrix[:100])
        index.add(keys[100:], matrix[100:])
        assert len(index) == 200
        assert index.search(matrix[150], k=1)[0].key == keys[150]

    def test_cosine_prenormalised_scores_match_legacy_kernel(self, vectors):
        """The rows-normalised-at-add fast path must reproduce the scores of
        the historical normalise-the-whole-matrix-per-query kernel bitwise,
        so recall@k against the old implementation is exactly 1.0."""
        from repro.vector.similarity import METRICS

        keys, matrix = vectors
        index = ExactIndex(metric="cosine")
        index.add(keys, matrix)
        for query in matrix[:10]:
            hits = index.search(query, k=7)
            legacy = METRICS["cosine"](np.asarray(query, dtype=np.float64), index._matrix)
            order = np.argsort(-legacy, kind="mergesort")[:7]
            assert [h.key for h in hits] == [keys[i] for i in order]
            assert [h.score for h in hits] == [float(legacy[i]) for i in order]

    def test_non_cosine_metrics_unchanged(self, vectors):
        keys, matrix = vectors
        for metric in ("dot", "euclidean"):
            index = ExactIndex(metric=metric)
            index.add(keys, matrix)
            assert index.search(matrix[3], k=1)[0].key == keys[3]


class TestGrowableMatrix:
    def test_appends_accumulate_in_order(self):
        storage = _GrowableMatrix()
        rng = np.random.default_rng(0)
        chunks = [rng.normal(size=(n, 8)) for n in (1, 3, 17, 40)]
        for chunk in chunks:
            storage.append(chunk)
        stacked = np.vstack(chunks).astype(np.float32)
        assert len(storage) == 61
        assert np.array_equal(storage.view(), stacked)

    def test_stores_float32(self):
        storage = _GrowableMatrix()
        storage.append(np.ones((2, 4), dtype=np.float64))
        assert storage.view().dtype == np.float32

    def test_capacity_grows_amortised(self):
        storage = _GrowableMatrix()
        for i in range(100):
            storage.append(np.full((1, 4), float(i)))
        assert len(storage) == 100
        # Backing buffer is a power-of-two-ish capacity >= rows, not 100 copies.
        assert len(storage._buffer) >= 100
        assert np.array_equal(storage.view()[:, 0], np.arange(100, dtype=np.float32))

    def test_dimension_mismatch_rejected(self):
        storage = _GrowableMatrix()
        storage.append(np.ones((1, 4)))
        with pytest.raises(IndexError_):
            storage.append(np.ones((1, 5)))

    def test_dtype_parameter(self):
        storage = _GrowableMatrix(dtype=np.float64)
        storage.append(np.ones((2, 4), dtype=np.float32))
        assert storage.view().dtype == np.float64

    def test_clear_retains_capacity(self):
        storage = _GrowableMatrix()
        storage.append(np.ones((40, 4)))
        capacity = len(storage._buffer)
        storage.clear()
        assert len(storage) == 0
        assert len(storage._buffer) == capacity
        storage.append(np.zeros((1, 4)))
        assert np.array_equal(storage.view(), np.zeros((1, 4), dtype=np.float32))

    def test_one_by_one_adds_match_bulk_search(self):
        rng = np.random.default_rng(9)
        matrix = rng.normal(size=(50, 8))
        keys = [f"entity:k{i}" for i in range(50)]
        bulk = ExactIndex()
        bulk.add(keys, matrix)
        incremental = ExactIndex()
        for key, row in zip(keys, matrix):
            incremental.add([key], row[None, :])
        for query in matrix[:5]:
            assert [h.key for h in bulk.search(query, k=5)] == [
                h.key for h in incremental.search(query, k=5)
            ]


class TestIVFIndex:
    def test_self_is_nearest(self, vectors):
        keys, matrix = vectors
        index = IVFIndex(nlist=8, nprobe=8, seed=1)
        index.add(keys, matrix)
        index.train()
        hits = index.search(matrix[17], k=1)
        assert hits[0].key == keys[17]

    def test_lazy_training_on_search(self, vectors):
        keys, matrix = vectors
        index = IVFIndex(nlist=8, nprobe=2, seed=1)
        index.add(keys, matrix)
        assert not index.is_trained
        index.search(matrix[0], k=3)
        assert index.is_trained

    def test_add_invalidates_training(self, vectors):
        keys, matrix = vectors
        index = IVFIndex(nlist=4, nprobe=2, seed=1)
        index.add(keys[:100], matrix[:100])
        index.train()
        index.add(keys[100:], matrix[100:])
        assert not index.is_trained

    def test_full_probe_equals_exact(self, vectors):
        """nprobe == nlist probes everything → exact results."""
        keys, matrix = vectors
        exact = ExactIndex()
        exact.add(keys, matrix)
        ivf = IVFIndex(nlist=8, nprobe=8, seed=2)
        ivf.add(keys, matrix)
        recall = recall_at_k(ivf, exact, matrix[:20], k=10)
        assert recall == pytest.approx(1.0)

    def test_recall_increases_with_nprobe(self, vectors):
        keys, matrix = vectors
        exact = ExactIndex()
        exact.add(keys, matrix)
        recalls = []
        for nprobe in (1, 4, 16):
            ivf = IVFIndex(nlist=16, nprobe=nprobe, seed=2)
            ivf.add(keys, matrix)
            recalls.append(recall_at_k(ivf, exact, matrix[:20], k=10))
        assert recalls[0] <= recalls[1] <= recalls[2]
        assert recalls[2] == pytest.approx(1.0)

    def test_train_empty_raises(self):
        with pytest.raises(IndexError_):
            IVFIndex().train()

    def test_rejects_bad_params(self):
        with pytest.raises(IndexError_):
            IVFIndex(nlist=0)
        with pytest.raises(IndexError_):
            IVFIndex(nprobe=0)

    def test_contains_and_len(self, vectors):
        keys, matrix = vectors
        index = IVFIndex()
        index.add(keys, matrix)
        assert keys[0] in index
        assert len(index) == 200

    def test_add_after_train_invalidates_postings(self, vectors):
        """New rows must be searchable after retrain — stale postings would
        silently drop them from every probe."""
        keys, matrix = vectors
        index = IVFIndex(nlist=4, nprobe=4, seed=1)
        index.add(keys[:100], matrix[:100])
        index.train()
        index.add(keys[100:], matrix[100:])
        assert not index.is_trained
        assert index._postings == []
        hits = index.search(matrix[150], k=1)
        assert hits[0].key == keys[150]

    def test_concurrent_first_search_trains_once(self, vectors):
        """Many threads racing the lazy first-search train must all see a
        fully-published quantizer (no half-trained state, no crash)."""
        import threading

        keys, matrix = vectors
        index = IVFIndex(nlist=8, nprobe=8, seed=3)
        index.add(keys, matrix)
        results: list[list] = [None] * 16
        barrier = threading.Barrier(16)

        def worker(slot: int) -> None:
            barrier.wait()
            results[slot] = [h.key for h in index.search(matrix[slot], k=5)]

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        reference = IVFIndex(nlist=8, nprobe=8, seed=3)
        reference.add(keys, matrix)
        reference.train()
        for slot, got in enumerate(results):
            assert got == [h.key for h in reference.search(matrix[slot], k=5)]

    def test_rejects_bad_quantization(self):
        with pytest.raises(IndexError_):
            IVFIndex(quantization="fp8")
        with pytest.raises(IndexError_):
            IVFIndex(rerank_factor=0)


def _hits_as_tuples(hits):
    return [(h.key, h.score) for h in hits]


class TestSearchMany:
    def test_exact_matches_scalar_bitwise(self, vectors):
        keys, matrix = vectors
        index = ExactIndex()
        index.add(keys, matrix)
        batched = index.search_many(matrix[:25], k=7)
        scalar = [index.search(q, k=7) for q in matrix[:25]]
        assert [_hits_as_tuples(h) for h in batched] == [
            _hits_as_tuples(h) for h in scalar
        ]

    def test_ivf_matches_scalar_bitwise(self, vectors):
        keys, matrix = vectors
        index = IVFIndex(nlist=8, nprobe=3, seed=2)
        index.add(keys, matrix)
        batched = index.search_many(matrix[:25], k=7)
        scalar = [index.search(q, k=7) for q in matrix[:25]]
        assert [_hits_as_tuples(h) for h in batched] == [
            _hits_as_tuples(h) for h in scalar
        ]

    def test_empty_index_and_empty_batch(self):
        assert ExactIndex().search_many(np.ones((3, 4)), k=5) == [[], [], []]
        index = ExactIndex()
        index.add(["entity:a"], np.ones((1, 4)))
        assert index.search_many(np.empty((0, 4)), k=5) == []


class TestIVFAdoptAndQuantization:
    def test_adopt_round_trips_bitwise(self, vectors):
        keys, matrix = vectors
        trained = IVFIndex(nlist=8, nprobe=3, seed=2)
        trained.add(keys, matrix)
        trained.train()
        adopted = IVFIndex.adopt(
            keys, trained.state_arrays(), nlist=8, nprobe=3, seed=2
        )
        assert adopted.is_trained
        for query in matrix[:20]:
            assert _hits_as_tuples(adopted.search(query, k=10)) == _hits_as_tuples(
                trained.search(query, k=10)
            )

    def test_adopt_over_readonly_arrays(self, vectors):
        """The mmap contract: adoption must never write the base arrays."""
        keys, matrix = vectors
        trained = IVFIndex(nlist=8, nprobe=8, seed=2, quantization="int8")
        trained.add(keys, matrix)
        trained.train()
        arrays = {k: np.ascontiguousarray(v) for k, v in trained.state_arrays().items()}
        for array in arrays.values():
            array.setflags(write=False)
        adopted = IVFIndex.adopt(
            keys, arrays, nlist=8, nprobe=8, seed=2, quantization="int8"
        )
        assert adopted.search(matrix[17], k=1)[0].key == keys[17]
        assert np.allclose(adopted.vector(keys[5]), arrays["knn_rows"][5])

    def test_adopt_validates_shapes_and_codes(self, vectors):
        keys, matrix = vectors
        trained = IVFIndex(nlist=4, nprobe=2, seed=0)
        trained.add(keys, matrix)
        trained.train()
        arrays = trained.state_arrays()
        with pytest.raises(IndexError_):
            IVFIndex.adopt(keys[:-1], arrays, nlist=4, nprobe=2)
        with pytest.raises(IndexError_):  # fp32 export lacks the int8 side-channel
            IVFIndex.adopt(keys, arrays, nlist=4, nprobe=2, quantization="int8")

    def test_state_arrays_trains_if_needed(self, vectors):
        keys, matrix = vectors
        index = IVFIndex(nlist=4, nprobe=2, seed=0)
        index.add(keys, matrix)
        arrays = index.state_arrays()
        assert index.is_trained
        assert len(arrays["knn_rows"]) == len(keys)
        assert arrays["knn_postings_offsets"][-1] == len(keys)

    def test_int8_shortlist_rerank_recall(self, vectors):
        """The int8 candidate pass may only cost a little recall versus the
        same index at full precision, and final scores are exact (from the
        float rows, not dequantized codes)."""
        keys, matrix = vectors
        exact = ExactIndex()
        exact.add(keys, matrix)
        fp32 = IVFIndex(nlist=8, nprobe=4, seed=2)
        fp32.add(keys, matrix)
        int8 = IVFIndex(nlist=8, nprobe=4, seed=2, quantization="int8", rerank_factor=4)
        int8.add(keys, matrix)
        queries = matrix[:40]
        recall_fp32 = recall_at_k(fp32, exact, queries, k=10)
        recall_int8 = recall_at_k(int8, exact, queries, k=10)
        assert recall_int8 >= recall_fp32 - 0.1
        assert recall_int8 >= 0.8
        for query in queries[:5]:
            int8_hits = {h.key: h.score for h in int8.search(query, k=10)}
            fp32_hits = {h.key: h.score for h in fp32.search(query, k=10)}
            for key in int8_hits.keys() & fp32_hits.keys():
                assert int8_hits[key] == fp32_hits[key]

    def test_wide_rerank_factor_recovers_fp32_results(self, vectors):
        """A shortlist wider than any candidate set disables the filter, so
        int8 results equal the fp32 IVF results exactly."""
        keys, matrix = vectors
        fp32 = IVFIndex(nlist=8, nprobe=4, seed=2)
        fp32.add(keys, matrix)
        int8 = IVFIndex(
            nlist=8, nprobe=4, seed=2, quantization="int8", rerank_factor=1000
        )
        int8.add(keys, matrix)
        for query in matrix[:10]:
            assert _hits_as_tuples(int8.search(query, k=10)) == _hits_as_tuples(
                fp32.search(query, k=10)
            )
