"""Tests for the exact and IVF vector indexes."""

import numpy as np
import pytest

from repro.common.errors import IndexError_
from repro.vector.index import ExactIndex, IVFIndex, _GrowableMatrix, recall_at_k


@pytest.fixture()
def vectors():
    rng = np.random.default_rng(4)
    matrix = rng.normal(size=(200, 16))
    keys = [f"entity:e{i:03d}" for i in range(200)]
    return keys, matrix


class TestExactIndex:
    def test_self_is_nearest(self, vectors):
        keys, matrix = vectors
        index = ExactIndex()
        index.add(keys, matrix)
        hits = index.search(matrix[17], k=1)
        assert hits[0].key == keys[17]

    def test_results_sorted(self, vectors):
        keys, matrix = vectors
        index = ExactIndex()
        index.add(keys, matrix)
        hits = index.search(matrix[0], k=10)
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)

    def test_k_larger_than_index(self):
        index = ExactIndex()
        index.add(["entity:a"], np.ones((1, 4)))
        assert len(index.search(np.ones(4), k=10)) == 1

    def test_empty_index(self):
        assert ExactIndex().search(np.ones(4), k=5) == []

    def test_duplicate_key_rejected(self):
        index = ExactIndex()
        index.add(["entity:a"], np.ones((1, 4)))
        with pytest.raises(IndexError_):
            index.add(["entity:a"], np.ones((1, 4)))

    def test_dimension_mismatch_rejected(self):
        index = ExactIndex()
        index.add(["entity:a"], np.ones((1, 4)))
        with pytest.raises(IndexError_):
            index.add(["entity:b"], np.ones((1, 5)))

    def test_key_count_mismatch_rejected(self):
        with pytest.raises(IndexError_):
            ExactIndex().add(["entity:a", "entity:b"], np.ones((1, 4)))

    def test_vector_lookup(self, vectors):
        keys, matrix = vectors
        index = ExactIndex()
        index.add(keys, matrix)
        assert np.allclose(index.vector(keys[5]), matrix[5])
        with pytest.raises(IndexError_):
            index.vector("entity:ghost")

    def test_unknown_metric_rejected(self):
        with pytest.raises(IndexError_):
            ExactIndex(metric="manhattan")

    def test_incremental_add(self, vectors):
        keys, matrix = vectors
        index = ExactIndex()
        index.add(keys[:100], matrix[:100])
        index.add(keys[100:], matrix[100:])
        assert len(index) == 200
        assert index.search(matrix[150], k=1)[0].key == keys[150]

    def test_cosine_prenormalised_scores_match_legacy_kernel(self, vectors):
        """The rows-normalised-at-add fast path must reproduce the scores of
        the historical normalise-the-whole-matrix-per-query kernel bitwise,
        so recall@k against the old implementation is exactly 1.0."""
        from repro.vector.similarity import METRICS

        keys, matrix = vectors
        index = ExactIndex(metric="cosine")
        index.add(keys, matrix)
        for query in matrix[:10]:
            hits = index.search(query, k=7)
            legacy = METRICS["cosine"](np.asarray(query, dtype=np.float64), index._matrix)
            order = np.argsort(-legacy, kind="mergesort")[:7]
            assert [h.key for h in hits] == [keys[i] for i in order]
            assert [h.score for h in hits] == [float(legacy[i]) for i in order]

    def test_non_cosine_metrics_unchanged(self, vectors):
        keys, matrix = vectors
        for metric in ("dot", "euclidean"):
            index = ExactIndex(metric=metric)
            index.add(keys, matrix)
            assert index.search(matrix[3], k=1)[0].key == keys[3]


class TestGrowableMatrix:
    def test_appends_accumulate_in_order(self):
        storage = _GrowableMatrix()
        rng = np.random.default_rng(0)
        chunks = [rng.normal(size=(n, 8)) for n in (1, 3, 17, 40)]
        for chunk in chunks:
            storage.append(chunk)
        stacked = np.vstack(chunks).astype(np.float32)
        assert len(storage) == 61
        assert np.array_equal(storage.view(), stacked)

    def test_stores_float32(self):
        storage = _GrowableMatrix()
        storage.append(np.ones((2, 4), dtype=np.float64))
        assert storage.view().dtype == np.float32

    def test_capacity_grows_amortised(self):
        storage = _GrowableMatrix()
        for i in range(100):
            storage.append(np.full((1, 4), float(i)))
        assert len(storage) == 100
        # Backing buffer is a power-of-two-ish capacity >= rows, not 100 copies.
        assert len(storage._buffer) >= 100
        assert np.array_equal(storage.view()[:, 0], np.arange(100, dtype=np.float32))

    def test_dimension_mismatch_rejected(self):
        storage = _GrowableMatrix()
        storage.append(np.ones((1, 4)))
        with pytest.raises(IndexError_):
            storage.append(np.ones((1, 5)))

    def test_dtype_parameter(self):
        storage = _GrowableMatrix(dtype=np.float64)
        storage.append(np.ones((2, 4), dtype=np.float32))
        assert storage.view().dtype == np.float64

    def test_clear_retains_capacity(self):
        storage = _GrowableMatrix()
        storage.append(np.ones((40, 4)))
        capacity = len(storage._buffer)
        storage.clear()
        assert len(storage) == 0
        assert len(storage._buffer) == capacity
        storage.append(np.zeros((1, 4)))
        assert np.array_equal(storage.view(), np.zeros((1, 4), dtype=np.float32))

    def test_one_by_one_adds_match_bulk_search(self):
        rng = np.random.default_rng(9)
        matrix = rng.normal(size=(50, 8))
        keys = [f"entity:k{i}" for i in range(50)]
        bulk = ExactIndex()
        bulk.add(keys, matrix)
        incremental = ExactIndex()
        for key, row in zip(keys, matrix):
            incremental.add([key], row[None, :])
        for query in matrix[:5]:
            assert [h.key for h in bulk.search(query, k=5)] == [
                h.key for h in incremental.search(query, k=5)
            ]


class TestIVFIndex:
    def test_self_is_nearest(self, vectors):
        keys, matrix = vectors
        index = IVFIndex(nlist=8, nprobe=8, seed=1)
        index.add(keys, matrix)
        index.train()
        hits = index.search(matrix[17], k=1)
        assert hits[0].key == keys[17]

    def test_lazy_training_on_search(self, vectors):
        keys, matrix = vectors
        index = IVFIndex(nlist=8, nprobe=2, seed=1)
        index.add(keys, matrix)
        assert not index.is_trained
        index.search(matrix[0], k=3)
        assert index.is_trained

    def test_add_invalidates_training(self, vectors):
        keys, matrix = vectors
        index = IVFIndex(nlist=4, nprobe=2, seed=1)
        index.add(keys[:100], matrix[:100])
        index.train()
        index.add(keys[100:], matrix[100:])
        assert not index.is_trained

    def test_full_probe_equals_exact(self, vectors):
        """nprobe == nlist probes everything → exact results."""
        keys, matrix = vectors
        exact = ExactIndex()
        exact.add(keys, matrix)
        ivf = IVFIndex(nlist=8, nprobe=8, seed=2)
        ivf.add(keys, matrix)
        recall = recall_at_k(ivf, exact, matrix[:20], k=10)
        assert recall == pytest.approx(1.0)

    def test_recall_increases_with_nprobe(self, vectors):
        keys, matrix = vectors
        exact = ExactIndex()
        exact.add(keys, matrix)
        recalls = []
        for nprobe in (1, 4, 16):
            ivf = IVFIndex(nlist=16, nprobe=nprobe, seed=2)
            ivf.add(keys, matrix)
            recalls.append(recall_at_k(ivf, exact, matrix[:20], k=10))
        assert recalls[0] <= recalls[1] <= recalls[2]
        assert recalls[2] == pytest.approx(1.0)

    def test_train_empty_raises(self):
        with pytest.raises(IndexError_):
            IVFIndex().train()

    def test_rejects_bad_params(self):
        with pytest.raises(IndexError_):
            IVFIndex(nlist=0)
        with pytest.raises(IndexError_):
            IVFIndex(nprobe=0)

    def test_contains_and_len(self, vectors):
        keys, matrix = vectors
        index = IVFIndex()
        index.add(keys, matrix)
        assert keys[0] in index
        assert len(index) == 200
