"""Tests for the embedding service."""

import numpy as np
import pytest

from repro.common.errors import EmbeddingError, IndexError_
from repro.vector.index import IVFIndex
from repro.vector.service import EmbeddingService


class TestService:
    def test_vector_matches_model(self, trained):
        service = EmbeddingService(trained.trained)
        entity = trained.dataset.entities[0]
        assert np.allclose(service.vector(entity), trained.trained.entity_vector(entity))

    def test_cache_hits(self, trained):
        service = EmbeddingService(trained.trained)
        entity = trained.dataset.entities[0]
        service.vector(entity)
        service.vector(entity)
        assert service.cache_hit_rate == pytest.approx(0.5)

    def test_similarity_self(self, trained):
        service = EmbeddingService(trained.trained)
        entity = trained.dataset.entities[0]
        assert service.similarity(entity, entity) == pytest.approx(1.0)

    def test_knn_excludes_self(self, trained):
        service = EmbeddingService(trained.trained)
        entity = trained.dataset.entities[0]
        hits = service.knn(entity, k=5)
        assert entity not in {hit.key for hit in hits}
        assert len(hits) == 5

    def test_knn_include_self(self, trained):
        service = EmbeddingService(trained.trained)
        entity = trained.dataset.entities[0]
        hits = service.knn(entity, k=3, exclude_self=False)
        assert hits[0].key == entity

    def test_knn_vector_query(self, trained):
        service = EmbeddingService(trained.trained)
        entity = trained.dataset.entities[3]
        hits = service.knn_vector(service.vector(entity), k=1)
        assert hits[0].key == entity

    def test_batch_similarity_unknowns_zero(self, trained):
        service = EmbeddingService(trained.trained)
        entity = trained.dataset.entities[0]
        sims = service.batch_similarity([(entity, entity), (entity, "entity:ghost")])
        assert sims[0] == pytest.approx(1.0)
        assert sims[1] == 0.0

    def test_custom_index_populated(self, trained):
        index = IVFIndex(nlist=4, nprobe=4, seed=0)
        service = EmbeddingService(trained.trained, index=index)
        assert len(index) == trained.trained.model.num_entities
        entity = trained.dataset.entities[0]
        assert service.knn(entity, k=1)

    def test_require_entity(self, trained):
        service = EmbeddingService(trained.trained)
        with pytest.raises(IndexError_):
            service.require_entity("entity:ghost")

    def test_metrics_recorded(self, trained):
        service = EmbeddingService(trained.trained)
        entity = trained.dataset.entities[0]
        service.knn(entity, k=2)
        assert service.metrics.timer_stats("knn").count == 1


class TestKnnMany:
    def test_matches_scalar_knn_bitwise(self, trained):
        service = EmbeddingService(trained.trained)
        entities = trained.dataset.entities[:12]
        batched = service.knn_many(entities, k=5)
        scalar = [service.knn(entity, k=5) for entity in entities]
        assert [[(h.key, h.score) for h in hits] for hits in batched] == [
            [(h.key, h.score) for h in hits] for hits in scalar
        ]

    def test_matches_scalar_with_ivf_index(self, trained):
        index = IVFIndex(nlist=4, nprobe=2, seed=0)
        service = EmbeddingService(trained.trained, index=index)
        entities = trained.dataset.entities[:12]
        batched = service.knn_many(entities, k=5)
        scalar = [service.knn(entity, k=5) for entity in entities]
        assert [[(h.key, h.score) for h in hits] for hits in batched] == [
            [(h.key, h.score) for h in hits] for hits in scalar
        ]

    def test_exclude_self_per_entity(self, trained):
        service = EmbeddingService(trained.trained)
        entities = trained.dataset.entities[:6]
        for entity, hits in zip(entities, service.knn_many(entities, k=4)):
            assert entity not in {h.key for h in hits}
            assert len(hits) == 4

    def test_include_self(self, trained):
        service = EmbeddingService(trained.trained)
        entities = trained.dataset.entities[:4]
        for entity, hits in zip(
            entities, service.knn_many(entities, k=3, exclude_self=False)
        ):
            assert hits[0].key == entity

    def test_unknown_entity_raises_like_scalar_path(self, trained):
        service = EmbeddingService(trained.trained)
        known = trained.dataset.entities[0]
        with pytest.raises(EmbeddingError):
            service.knn_many([known, "entity:ghost"], k=3)

    def test_empty_input(self, trained):
        service = EmbeddingService(trained.trained)
        assert service.knn_many([], k=3) == []
