"""Sync conflict edges: concurrent upserts, delete replays, tombstone
retention for late joiners.

These pin the convergence properties the multi-tenant serving layer
inherits (the server's LWW merge mirrors :class:`Device` exactly): every
conflict resolves deterministically, identically, on every replica, and
deletions stay deleted no matter how stale the replaying peer is.
"""

from __future__ import annotations

from repro.ondevice.device import Device, DeviceProfile
from repro.ondevice.records import CONTACTS, SourceRecord, record_lww_key
from repro.ondevice.sync import SyncCoordinator, kg_signature


def device(device_id: str) -> Device:
    return Device(device_id=device_id, profile=DeviceProfile.named("phone"))


def contact(record_id: str, first: str, *, sequence: int = 0, **extra) -> SourceRecord:
    fields = {"first_name": first, "last_name": "Singer", **extra}
    return SourceRecord(
        record_id=record_id, source=CONTACTS, fields=fields, sequence=sequence
    )


def records_of(dev: Device) -> dict[str, SourceRecord]:
    return {r.record_id: r for r in dev.records.get(CONTACTS, [])}


class TestConcurrentUpserts:
    def test_higher_sequence_wins_everywhere(self):
        a, b = device("a"), device("b")
        a.add_records(CONTACTS, [contact("r1", "Alice", sequence=3, phone="111")])
        b.add_records(CONTACTS, [contact("r1", "Alicia", sequence=5, phone="222")])
        coordinator = SyncCoordinator([a, b])
        coordinator.sync_until_stable()
        assert coordinator.consistency_check(CONTACTS)
        for dev in (a, b):
            winner = records_of(dev)["r1"]
            assert winner.sequence == 5
            assert winner.fields["first_name"] == "Alicia"

    def test_equal_sequence_ties_break_deterministically(self):
        """Offline edits at the *same* sequence: the canonical-JSON
        tiebreak picks one winner, the same one on every device and in
        every sync order."""
        edit_x = contact("r1", "Xavier", sequence=4)
        edit_y = contact("r1", "Yvonne", sequence=4)
        expected = max(edit_x, edit_y, key=record_lww_key)

        for first, second in ((edit_x, edit_y), (edit_y, edit_x)):
            a, b = device("a"), device("b")
            a.add_records(CONTACTS, [first])
            b.add_records(CONTACTS, [second])
            SyncCoordinator([a, b]).sync_until_stable()
            for dev in (a, b):
                winner = records_of(dev)["r1"]
                assert record_lww_key(winner) == record_lww_key(expected)

    def test_three_way_concurrent_edit_converges_to_one_kg(self):
        devices = [device(f"d{i}") for i in range(3)]
        for i, dev in enumerate(devices):
            dev.add_records(
                CONTACTS,
                [
                    contact("r1", f"Edit{i}", sequence=i + 1),
                    contact(f"own-{i}", f"Own{i}", sequence=1),
                ],
            )
        coordinator = SyncCoordinator(devices)
        coordinator.sync_until_stable()
        assert coordinator.consistency_check(CONTACTS)
        signatures = {
            tuple(kg_signature(dev.build_kg())) for dev in devices
        }
        assert len(signatures) == 1
        assert records_of(devices[0])["r1"].fields["first_name"] == "Edit2"


class TestDeleteThenSyncReplay:
    def test_deleted_record_does_not_resurrect_from_stale_peer(self):
        a, b = device("a"), device("b")
        shared = contact("r1", "Alice", sequence=2)
        a.add_records(CONTACTS, [shared])
        b.add_records(CONTACTS, [shared])
        assert a.delete_record(CONTACTS, "r1")
        report = SyncCoordinator([a, b]).sync_until_stable()
        # The tombstone travelled; the stale copy never flowed back.
        assert any(r.tombstones_moved for r in report)
        for dev in (a, b):
            assert "r1" not in dev.record_ids(CONTACTS)
            assert dev.tombstones[CONTACTS]["r1"] == 2

    def test_replaying_the_deleted_copy_is_suppressed_forever(self):
        a = device("a")
        a.add_records(CONTACTS, [contact("r1", "Alice", sequence=2)])
        a.delete_record(CONTACTS, "r1")
        # Replay the exact deleted copy (equal sequence): delete wins ties.
        assert a.add_records(CONTACTS, [contact("r1", "Alice", sequence=2)]) == 0
        assert "r1" not in a.record_ids(CONTACTS)

    def test_newer_write_resurrects_and_clears_tombstone(self):
        a, b = device("a"), device("b")
        a.add_records(CONTACTS, [contact("r1", "Alice", sequence=2)])
        a.delete_record(CONTACTS, "r1")
        b.add_records(CONTACTS, [contact("r1", "Alice II", sequence=7)])
        coordinator = SyncCoordinator([a, b])
        coordinator.sync_until_stable()
        assert coordinator.consistency_check(CONTACTS)
        for dev in (a, b):
            assert records_of(dev)["r1"].sequence == 7
            assert "r1" not in dev.tombstones.get(CONTACTS, {})

    def test_stale_delete_loses_to_existing_newer_record(self):
        a, b = device("a"), device("b")
        newer = contact("r1", "Alice II", sequence=9)
        a.add_records(CONTACTS, [contact("r1", "Alice", sequence=2)])
        b.add_records(CONTACTS, [newer])
        # A deletes its *old* copy (tombstone at sequence 2) ...
        a.delete_record(CONTACTS, "r1")
        coordinator = SyncCoordinator([a, b])
        coordinator.sync_until_stable()
        # ... and the newer write flows back and resurrects it on A.
        for dev in (a, b):
            assert records_of(dev)["r1"].sequence == 9


class TestTombstoneRetention:
    def test_late_joining_device_learns_old_deletions(self):
        """Tombstones are never garbage-collected: a device that was
        offline through the whole delete still drops its stale copy."""
        stale_copy = contact("r1", "Alice", sequence=1)
        a, b = device("a"), device("b")
        a.add_records(CONTACTS, [stale_copy])
        b.add_records(CONTACTS, [stale_copy])
        a.delete_record(CONTACTS, "r1")
        SyncCoordinator([a, b]).sync_until_stable()

        # Much later, a third device joins holding the stale record.
        c = device("c")
        c.add_records(CONTACTS, [stale_copy])
        coordinator = SyncCoordinator([a, b, c])
        coordinator.sync_until_stable()
        assert coordinator.consistency_check(CONTACTS)
        for dev in (a, b, c):
            assert "r1" not in dev.record_ids(CONTACTS)
            assert dev.tombstones[CONTACTS]["r1"] == 1

    def test_tombstones_survive_unrelated_traffic(self):
        a, b = device("a"), device("b")
        a.add_records(CONTACTS, [contact("r1", "Alice", sequence=1)])
        a.delete_record(CONTACTS, "r1")
        coordinator = SyncCoordinator([a, b])
        coordinator.sync_until_stable()
        for round_no in range(3):
            a.add_records(
                CONTACTS, [contact(f"new-{round_no}", "Noise", sequence=1)]
            )
            coordinator.sync_until_stable()
        for dev in (a, b):
            assert dev.tombstones[CONTACTS]["r1"] == 1
            assert "r1" not in dev.record_ids(CONTACTS)

    def test_per_source_opt_out_blocks_tombstones_too(self):
        a, b = device("a"), device("b")
        b.sync_preferences[CONTACTS] = False
        shared = contact("r1", "Alice", sequence=1)
        a.add_records(CONTACTS, [shared])
        b.add_records(CONTACTS, [shared])
        a.delete_record(CONTACTS, "r1")
        SyncCoordinator([a, b]).sync_until_stable()
        # The opted-out source moves nothing — not even deletions.
        assert "r1" in b.record_ids(CONTACTS)
        assert "r1" not in b.tombstones.get(CONTACTS, {})
