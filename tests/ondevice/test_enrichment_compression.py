"""Tests for global enrichment paths and model compression."""

import numpy as np
import pytest

from repro.common.errors import DeviceError
from repro.kg.store import TripleStore
from repro.ondevice.compression import (
    FP16,
    FP32,
    INT8,
    knn_overlap,
    quantize_vectors,
    random_projection,
    sweep_compression,
)
from repro.ondevice.enrichment import (
    EnrichmentPlanner,
    EnrichmentPlannerConfig,
    GlobalKnowledgeServer,
    dp_count_query,
)


@pytest.fixture(scope="module")
def server(kg):
    return GlobalKnowledgeServer(kg.store)


class TestStaticAsset:
    def test_popular_entities_included(self, kg, server):
        asset, size = server.build_static_asset(top_k=50)
        assert size > 0
        ranked = sorted(kg.store.entities(), key=lambda r: -r.popularity)
        top_entity = ranked[0].entity
        assert asset.has_entity(top_entity)

    def test_asset_size_grows_with_k(self, server):
        _, small = server.build_static_asset(top_k=20)
        _, large = server.build_static_asset(top_k=200)
        assert large > small


class TestEnrichmentPlanner:
    def test_paths_partition_coverage(self, kg, server):
        needed = sorted(kg.store.entity_ids())[:60]
        planner = EnrichmentPlanner(
            server, EnrichmentPlannerConfig(static_asset_top_k=80, pir_budget_bytes=10**9)
        )
        report = planner.enrich(needed, interaction_entities=set(needed[:10]))
        covered = report.covered_static + report.covered_piggyback + report.covered_pir
        assert covered <= report.needed
        assert report.coverage == pytest.approx(covered / report.needed)

    def test_only_interaction_entities_revealed(self, kg, server):
        """Privacy invariant: static + PIR reveal nothing; only piggyback
        entities (already user-initiated) appear in revealed_entities."""
        needed = sorted(kg.store.entity_ids())[:40]
        interaction = set(needed[5:10])
        planner = EnrichmentPlanner(
            server, EnrichmentPlannerConfig(static_asset_top_k=10, pir_budget_bytes=10**9)
        )
        report = planner.enrich(needed, interaction_entities=interaction)
        assert set(report.revealed_entities) <= interaction

    def test_pir_budget_caps_spending(self, kg, server):
        needed = sorted(kg.store.entity_ids())[:50]
        tight = EnrichmentPlanner(
            server,
            EnrichmentPlannerConfig(static_asset_top_k=5, pir_budget_bytes=1),
        )
        report = tight.enrich(needed, interaction_entities=set())
        # One PIR fetch may land before the budget check trips; never more
        # than budget + one block.
        assert report.covered_pir <= 1

    def test_pir_more_expensive_than_piggyback(self, kg, server):
        entity = sorted(kg.store.entity_ids())[0]
        _, piggy_cost = server.piggyback(entity)
        _, pir_cost = server.pir_fetch(entity)
        assert pir_cost > piggy_cost

    def test_facts_installed_on_device(self, kg, server):
        needed = sorted(kg.store.entity_ids())[:20]
        device_store = TripleStore("device")
        planner = EnrichmentPlanner(
            server,
            EnrichmentPlannerConfig(static_asset_top_k=100, pir_budget_bytes=10**9),
        )
        report = planner.enrich(needed, interaction_entities=set(), device_store=device_store)
        covered = report.covered_static + report.covered_pir
        assert len(device_store.entity_ids()) >= covered


class TestDPQuery:
    def test_noise_added(self):
        noisy = dp_count_query(100, epsilon=0.5, seed=1)
        assert noisy != 100

    def test_smaller_epsilon_more_noise(self):
        tight = [abs(dp_count_query(100, 0.1, seed=s) - 100) for s in range(30)]
        loose = [abs(dp_count_query(100, 10.0, seed=s) - 100) for s in range(30)]
        assert np.mean(tight) > np.mean(loose)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(DeviceError):
            dp_count_query(5, epsilon=0)


class TestQuantization:
    @pytest.fixture()
    def vectors(self):
        return np.random.default_rng(2).normal(size=(50, 32))

    def test_fp16_smaller_than_fp32(self, vectors):
        assert quantize_vectors(vectors, FP16).nbytes < quantize_vectors(vectors, FP32).nbytes

    def test_int8_smallest(self, vectors):
        assert (
            quantize_vectors(vectors, INT8).nbytes
            < quantize_vectors(vectors, FP16).nbytes
        )

    def test_int8_reconstruction_bounded(self, vectors):
        quantized = quantize_vectors(vectors, INT8)
        max_error = np.abs(quantized.reconstructed - vectors).max()
        scale = np.abs(vectors).max()
        assert max_error <= scale / 127 + 1e-9

    def test_unknown_mode(self, vectors):
        with pytest.raises(DeviceError):
            quantize_vectors(vectors, "fp8")

    def test_quality_order(self, vectors):
        fp16 = knn_overlap(vectors, quantize_vectors(vectors, FP16).reconstructed)
        int8 = knn_overlap(vectors, quantize_vectors(vectors, INT8).reconstructed)
        assert fp16 >= int8 - 0.05  # fp16 at least as faithful (tolerance for ties)
        assert fp16 > 0.9


class TestDistillation:
    def test_projection_shape(self):
        vectors = np.random.default_rng(3).normal(size=(40, 64))
        student = random_projection(vectors, 16, seed=1)
        assert student.shape == (40, 16)

    def test_projection_preserves_some_structure(self):
        vectors = np.random.default_rng(4).normal(size=(60, 64))
        student = random_projection(vectors, 32, seed=1)
        assert knn_overlap(vectors, student, k=5) > 0.3

    def test_target_wider_than_source_is_identity_normalised(self):
        vectors = np.random.default_rng(5).normal(size=(10, 8))
        student = random_projection(vectors, 16, seed=1)
        assert student.shape == (10, 8)

    def test_rejects_bad_dim(self):
        with pytest.raises(DeviceError):
            random_projection(np.ones((3, 4)), 0)

    def test_sweep_reports(self):
        vectors = np.random.default_rng(6).normal(size=(30, 32))
        reports = sweep_compression(vectors, distill_dims=(8,))
        modes = {r.mode for r in reports}
        assert {"fp32", "fp16", "int8", "distill8-rand+fp16", "distill8-pca+fp16"} <= modes
        for report in reports:
            assert 0.0 <= report.overlap_at_5 <= 1.0
            assert report.nbytes > 0

    def test_mismatched_rows_rejected(self):
        with pytest.raises(DeviceError):
            knn_overlap(np.ones((3, 2)), np.ones((4, 2)))
