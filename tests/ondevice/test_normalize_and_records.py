"""Tests for record normalization and the source-record model."""

from hypothesis import given
from hypothesis import strategies as st

from repro.ondevice.normalize import (
    name_key,
    name_token_keys,
    normalize_email,
    normalize_phone,
)
from repro.ondevice.records import CALENDAR, CONTACTS, MESSAGES, SourceRecord


class TestPhones:
    def test_figure7_formats_agree(self):
        """The exact Figure 7 case: contact vs message sender formats."""
        assert normalize_phone("+1 (123) 555 1234") == normalize_phone("123-555-1234")

    def test_country_code_added(self):
        assert normalize_phone("1235551234") == "11235551234"

    def test_already_has_country_code(self):
        assert normalize_phone("+1 123 555 1234") == "11235551234"

    def test_empty_and_garbage(self):
        assert normalize_phone("") == ""
        assert normalize_phone("no digits") == ""

    @given(st.text(alphabet="0123456789 ()-+", max_size=20))
    def test_property_idempotent(self, raw):
        once = normalize_phone(raw)
        assert normalize_phone(once) in ("", once, "1" + once)


class TestEmails:
    def test_case_insensitive(self):
        assert normalize_email("Tim@Example.com") == "tim@example.com"

    def test_non_address_rejected(self):
        assert normalize_email("not-an-email") == ""

    def test_whitespace_trimmed(self):
        assert normalize_email("  a@b.c  ") == "a@b.c"


class TestNameKeys:
    def test_name_key(self):
        assert name_key("Tim  SMITH") == "tim smith"

    def test_token_keys_skip_initials(self):
        assert name_token_keys("Tim J Smith") == ["tim", "smith"]


class TestSourceRecord:
    def test_contact_accessors(self):
        record = SourceRecord(
            record_id="r1", source=CONTACTS,
            fields={"first_name": "Tim", "last_name": "Smith",
                    "phone": "+1 (123) 555 1234", "email": "tim@example.com"},
        )
        assert record.display_name == "Tim Smith"
        assert record.phone == "+1 (123) 555 1234"
        assert record.email == "tim@example.com"

    def test_message_accessors(self):
        record = SourceRecord(
            record_id="r2", source=MESSAGES,
            fields={"sender_name": "Tim Smith", "sender_number": "123-555-1234"},
        )
        assert record.display_name == "Tim Smith"
        assert record.phone == "123-555-1234"
        assert record.email == ""

    def test_calendar_accessors(self):
        record = SourceRecord(
            record_id="r3", source=CALENDAR,
            fields={"attendee_name": "Tim Smith", "attendee_email": "tim@example.com"},
        )
        assert record.display_name == "Tim Smith"
        assert record.email == "tim@example.com"
        assert record.phone == ""

    def test_dict_roundtrip(self):
        record = SourceRecord(
            record_id="r4", source=CONTACTS,
            fields={"first_name": "A"}, true_person="persona/001", sequence=9,
        )
        assert SourceRecord.from_dict(record.to_dict()) == record

    def test_hashable(self):
        record = SourceRecord(record_id="r5", source=CONTACTS, fields={"x": 1})
        assert record in {record}
