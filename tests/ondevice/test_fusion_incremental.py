"""Tests for clustering/fusion and the incremental pipeline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import PipelineStateError
from repro.ondevice.fusion import UnionFind, evaluate_clusters
from repro.ondevice.incremental import (
    IncrementalPipeline,
    Phase,
)
from repro.ondevice.sources import (
    PersonaWorldConfig,
    generate_device_dataset,
    generate_personas,
)
from repro.ondevice.sync import kg_signature


@pytest.fixture(scope="module")
def records():
    cfg = PersonaWorldConfig(seed=5, num_personas=20)
    dataset = generate_device_dataset("dev", generate_personas(cfg), cfg)
    return dataset.all_records()


class TestUnionFind:
    def test_transitive_union(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.find("a") == uf.find("c")

    def test_disjoint_stay_apart(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.find("c")
        assert uf.find("a") != uf.find("c")

    @settings(max_examples=30, deadline=None)
    @given(
        unions=st.lists(
            st.tuples(
                st.sampled_from("abcdef"), st.sampled_from("abcdef")
            ),
            max_size=15,
        )
    )
    def test_property_clusters_partition_keys(self, unions):
        uf = UnionFind()
        keys = list("abcdef")
        for key in keys:
            uf.find(key)
        for left, right in unions:
            uf.union(left, right)
        clusters = uf.clusters(keys)
        flattened = sorted(k for members in clusters.values() for k in members)
        assert flattened == sorted(keys)  # every key in exactly one cluster


class TestPipeline:
    def test_full_run_quality(self, records):
        result = IncrementalPipeline(records).run_to_completion(256)
        quality = evaluate_clusters(result.clusters)
        assert quality.f1 > 0.75
        assert quality.precision > 0.9

    def test_phases_in_order(self, records):
        pipeline = IncrementalPipeline(records)
        seen = [pipeline.phase]
        while not pipeline.is_done:
            pipeline.step(64)
            if pipeline.phase != seen[-1]:
                seen.append(pipeline.phase)
        assert seen == [Phase.INGEST, Phase.BLOCK, Phase.MATCH, Phase.FUSE, Phase.DONE][
            : len(seen)
        ] or seen[-1] is Phase.DONE

    def test_step_budget_respected_in_match(self, records):
        pipeline = IncrementalPipeline(records)
        # Drive to MATCH phase.
        while pipeline.phase is not Phase.MATCH:
            pipeline.step(1000)
            if pipeline.is_done:
                pytest.skip("pipeline finished before MATCH could be observed")
        pairs_before = pipeline.progress["pending_pairs"]
        pipeline.step(5)
        pairs_after = pipeline.progress["pending_pairs"]
        assert pairs_before - pairs_after <= 5

    def test_result_before_done_raises(self, records):
        pipeline = IncrementalPipeline(records)
        with pytest.raises(PipelineStateError):
            pipeline.result()

    def test_step_rejects_bad_budget(self, records):
        with pytest.raises(PipelineStateError):
            IncrementalPipeline(records).step(0)

    def test_interrupted_equals_uninterrupted(self, records):
        """The §5 guarantee: pausing at any point loses nothing."""
        uninterrupted = IncrementalPipeline(records).run_to_completion(100_000)
        pipeline = IncrementalPipeline(records)
        while not pipeline.is_done:
            pipeline.step(17)  # deliberately awkward budget
        assert kg_signature(pipeline.result()) == kg_signature(uninterrupted)


class TestCheckpointing:
    def test_checkpoint_resume_equivalence(self, records):
        reference = IncrementalPipeline(records).run_to_completion(4096)
        pipeline = IncrementalPipeline(records)
        pipeline.step(40)
        resumed = IncrementalPipeline.from_checkpoint(pipeline.checkpoint())
        result = resumed.run_to_completion(64)
        assert kg_signature(result) == kg_signature(reference)

    def test_checkpoint_file_roundtrip(self, records, tmp_path):
        pipeline = IncrementalPipeline(records)
        pipeline.step(30)
        path = tmp_path / "ckpt.json"
        pipeline.save_checkpoint(path)
        resumed = IncrementalPipeline.load_checkpoint(path)
        assert resumed.phase == pipeline.phase
        assert resumed.progress == pipeline.progress

    def test_checkpoint_at_every_phase(self, records):
        reference = kg_signature(IncrementalPipeline(records).run_to_completion(4096))
        pipeline = IncrementalPipeline(records)
        while not pipeline.is_done:
            # checkpoint+restore at every step boundary
            pipeline = IncrementalPipeline.from_checkpoint(pipeline.checkpoint())
            pipeline.step(97)
        assert kg_signature(pipeline.result()) == reference

    def test_done_pipeline_cannot_checkpoint(self, records):
        pipeline = IncrementalPipeline(records)
        pipeline.run_to_completion(4096)
        with pytest.raises(PipelineStateError):
            pipeline.checkpoint()


class TestFusedOutput:
    def test_personal_kg_contents(self, records):
        result = IncrementalPipeline(records).run_to_completion(4096)
        assert result.people
        person = max(result.people, key=lambda p: len(p.record_ids))
        assert person.name
        assert person.phones or person.emails
        stored = result.store.entity(person.entity)
        assert stored.name == person.name
        facts = result.store.facts_of(person.entity)
        assert facts

    def test_cluster_merges_sources(self, records):
        result = IncrementalPipeline(records).run_to_completion(4096)
        multi_source = [p for p in result.people if len(p.sources) >= 2]
        assert multi_source, "expected at least one cross-source person"
