"""Tests for blocking and pairwise matching."""

import pytest

from repro.ondevice.blocking import MemoryBoundedBlocker, blocking_keys
from repro.ondevice.matching import EntityMatcher, MatchConfig
from repro.ondevice.records import CALENDAR, CONTACTS, MESSAGES, SourceRecord
from repro.ondevice.sources import PersonaWorldConfig, generate_device_dataset, generate_personas


def _contact(rid, first, last, phone="", email=""):
    fields = {"first_name": first, "last_name": last}
    if phone:
        fields["phone"] = phone
    if email:
        fields["email"] = email
    return SourceRecord(record_id=rid, source=CONTACTS, fields=fields)


def _message(rid, name, number):
    return SourceRecord(
        record_id=rid, source=MESSAGES,
        fields={"sender_name": name, "sender_number": number},
    )


class TestBlockingKeys:
    def test_typed_keys(self):
        record = _contact("r1", "Tim", "Smith", phone="+1 123 555 1234",
                          email="tim@example.com")
        keys = blocking_keys(record)
        assert "phone:11235551234" in keys
        assert "email:tim@example.com" in keys
        assert "name:tim smith" in keys
        assert "tok:tim" in keys and "tok:smith" in keys

    def test_missing_fields_no_keys(self):
        record = _contact("r2", "", "")
        assert blocking_keys(record) == []


class TestBlocker:
    def test_same_phone_pair_found(self):
        records = [
            _contact("a", "Tim", "Smith", phone="+1 (123) 555 1234"),
            _message("b", "Tim", "123-555-1234"),
        ]
        pairs = MemoryBoundedBlocker().candidate_pairs(records)
        assert any({left.record_id, right.record_id} == {"a", "b"} for left, right in pairs)

    def test_unrelated_records_not_paired(self):
        records = [
            _contact("a", "Tim", "Smith", phone="+1 111 111 1111"),
            _contact("b", "Ana", "Diaz", phone="+1 222 222 2222"),
        ]
        assert MemoryBoundedBlocker().candidate_pairs(records) == []

    def test_pairs_deduplicated(self):
        # Same pair reachable via phone AND email AND name blocks.
        records = [
            _contact("a", "Tim", "Smith", phone="+1 111 111 1111", email="t@x.com"),
            _contact("b", "Tim", "Smith", phone="+1 111 111 1111", email="t@x.com"),
        ]
        pairs = MemoryBoundedBlocker().candidate_pairs(records)
        assert len(pairs) == 1

    def test_oversized_block_truncated(self):
        records = [_contact(f"r{i}", "Tim", f"L{i}") for i in range(50)]
        blocker = MemoryBoundedBlocker(max_block_size=10)
        pairs = blocker.candidate_pairs(records)
        # Bounded: at most C(10, 2) pairs from the shared 'tok:tim' block.
        assert len(pairs) <= 45

    def test_spill_preserves_pairs(self, tmp_path):
        cfg = PersonaWorldConfig(seed=3, num_personas=20)
        dataset = generate_device_dataset("d", generate_personas(cfg), cfg)
        records = dataset.all_records()
        unbounded = MemoryBoundedBlocker(memory_budget_keys=100_000)
        bounded = MemoryBoundedBlocker(memory_budget_keys=20, spill_dir=tmp_path)
        pairs_unbounded = {
            (a.record_id, b.record_id) for a, b in unbounded.candidate_pairs(records)
        }
        pairs_bounded = {
            (a.record_id, b.record_id) for a, b in bounded.candidate_pairs(records)
        }
        assert pairs_bounded == pairs_unbounded
        assert bounded.stats.spilled_blocks > 0
        assert bounded.stats.peak_resident_keys <= 21

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            MemoryBoundedBlocker(memory_budget_keys=0)


class TestMatcher:
    def test_figure7_triple_link(self):
        """Contact + message (same phone) + calendar (same email) all match."""
        contact = _contact("c", "Tim", "Smith", phone="+1 (123) 555 1234",
                           email="Tim@example.com")
        message = _message("m", "Tim Smith", "123-555-1234")
        event = SourceRecord(
            record_id="e", source=CALENDAR,
            fields={"attendee_name": "Tim Smith", "attendee_email": "tim@example.com"},
        )
        matcher = EntityMatcher()
        assert matcher.score_pair(contact, message).matched
        assert matcher.score_pair(contact, event).matched

    def test_name_only_not_enough(self):
        """Two different people sharing a name must not merge."""
        a = _contact("a", "Tim", "Smith", phone="+1 111 111 1111")
        b = _contact("b", "Tim", "Smith", phone="+1 222 222 2222")
        decision = EntityMatcher().score_pair(a, b)
        assert not decision.matched  # conflicting phones veto

    def test_partial_name_with_phone_matches(self):
        a = _contact("a", "Tim", "Smith", phone="+1 111 111 1111")
        b = _message("b", "Tim", "111-111-1111")
        decision = EntityMatcher().score_pair(a, b)
        assert decision.matched
        assert decision.phone_equal

    def test_conflicting_email_penalised(self):
        a = _contact("a", "Tim", "Smith", email="a@x.com")
        b = _contact("b", "Tim", "Smith", email="b@x.com")
        assert not EntityMatcher().score_pair(a, b).matched

    def test_threshold_configurable(self):
        a = _contact("a", "Tim", "Smith")
        b = _contact("b", "Tim", "Smith")
        strict = EntityMatcher(MatchConfig(threshold=0.9))
        lenient = EntityMatcher(MatchConfig(threshold=0.1))
        assert not strict.score_pair(a, b).matched
        assert lenient.score_pair(a, b).matched

    def test_match_pairs_bulk(self):
        a = _contact("a", "Tim", "Smith", phone="+1 111 111 1111")
        b = _message("b", "Tim Smith", "111-111-1111")
        decisions = EntityMatcher().match_pairs([(a, b)])
        assert len(decisions) == 1
