"""Tests for on-device semantic annotation with contextual relevance."""

import pytest

from repro.ondevice.annotation import PersonalAnnotator, PersonalAnnotatorConfig
from repro.ondevice.incremental import IncrementalPipeline
from repro.ondevice.sources import (
    PersonaWorldConfig,
    generate_device_dataset,
    generate_personas,
)


@pytest.fixture(scope="module")
def personal_world():
    cfg = PersonaWorldConfig(seed=13, num_personas=20, namesake_pairs=2)
    personas = generate_personas(cfg)
    dataset = generate_device_dataset("user", personas, cfg)
    result = IncrementalPipeline(dataset.all_records()).run_to_completion(4096)
    return personas, dataset, result


@pytest.fixture(scope="module")
def annotator(personal_world):
    _, _, result = personal_world
    return PersonalAnnotator(result.store, result.people, result.clusters)


def _person_for(result, persona):
    """The fused person entity whose records belong to ``persona``."""
    for root, members in result.clusters.items():
        if any(m.true_person == persona.person_id for m in members):
            ids_ = tuple(sorted(m.record_id for m in members))
            for person in result.people:
                if tuple(person.record_ids) == ids_:
                    return person
    return None


class TestBasicLinking:
    def test_full_name_links(self, personal_world, annotator):
        personas, _, result = personal_world
        persona = personas[-1]
        links = annotator.annotate(f"call {persona.full_name} tomorrow")
        assert links
        fused = _person_for(result, persona)
        assert fused is not None
        assert links[0].entity == fused.entity

    def test_unknown_name_nil(self, annotator):
        assert annotator.annotate("call Zebulon Crabtree now") == []

    def test_empty_utterance(self, annotator):
        assert annotator.annotate("") == []


class TestContextualRelevance:
    def test_sigmod_example(self, personal_world):
        """§5's example: 'message Tim that I've added comments to the
        SIGMOD draft' ranks the coworker Tim above other Tims."""
        personas, _, result = personal_world
        namesakes = {}
        for persona in personas:
            namesakes.setdefault(persona.first_name, []).append(persona)
        shared_first = next(
            (first for first, group in namesakes.items() if len(group) >= 2), None
        )
        assert shared_first is not None, "world must contain namesakes"
        group = namesakes[shared_first]
        coworkers = [p for p in group if p.relationship == "coworker"]
        if not coworkers:
            pytest.skip("no coworker namesake in this seed")

        annotator = PersonalAnnotator(result.store, result.people, result.clusters)
        # Coworker message topics include "the SIGMOD draft" (sources.py);
        # several namesakes may be coworkers, any of them is a correct pick.
        links = annotator.annotate(
            f"message {shared_first} that I've added comments to the SIGMOD draft"
        )
        assert links
        # A persona's records may split over several fused entities; any
        # fragment whose records belong to a coworker persona is correct.
        coworker_ids = {p.person_id for p in coworkers}
        by_records = {
            tuple(sorted(m.record_id for m in members)): {
                m.true_person for m in members
            }
            for members in result.clusters.values()
        }
        coworker_entities = {
            person.entity
            for person in result.people
            if by_records.get(tuple(person.record_ids), set()) & coworker_ids
        }
        assert links[0].entity in coworker_entities

    def test_context_weight_zero_falls_back_to_prior(self, personal_world):
        personas, _, result = personal_world
        config = PersonalAnnotatorConfig(weight_context=0.0)
        annotator = PersonalAnnotator(result.store, result.people, result.clusters, config)
        persona = personas[-1]
        links = annotator.annotate(f"message {persona.full_name} hello")
        assert links  # still links, just without context signal

    def test_quantized_index_still_disambiguates(self, personal_world):
        personas, _, result = personal_world
        config = PersonalAnnotatorConfig(quantize_int8=True)
        annotator = PersonalAnnotator(result.store, result.people, result.clusters, config)
        persona = personas[-1]
        links = annotator.annotate(f"message {persona.full_name} about dinner")
        assert links


class TestCandidateScores:
    def test_candidates_sorted(self, personal_world, annotator):
        personas, _, _ = personal_world
        shared = {}
        for persona in personas:
            shared.setdefault(persona.first_name, []).append(persona)
        first = next((f for f, g in shared.items() if len(g) >= 2), None)
        if first is None:
            pytest.skip("no shared first name")
        links = annotator.annotate(f"message {first} about the plan")
        if not links:
            pytest.skip("first name below NIL threshold")
        scores = [c.score for c in links[0].candidates]
        assert scores == sorted(scores, reverse=True)
