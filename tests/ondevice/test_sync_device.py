"""Tests for devices, sync and computation offloading."""

import pytest

from repro.common.errors import DeviceError, SyncError
from repro.ondevice.device import Device, DeviceProfile
from repro.ondevice.records import CALENDAR, CONTACTS, MESSAGES
from repro.ondevice.sources import (
    PersonaWorldConfig,
    generate_device_dataset,
    generate_personas,
)
from repro.ondevice.sync import SyncCoordinator, kg_signature, offload_construction


@pytest.fixture()
def fleet():
    cfg = PersonaWorldConfig(seed=9, num_personas=16)
    personas = generate_personas(cfg)
    data = generate_device_dataset("user", personas, cfg)
    phone = Device(
        "phone", DeviceProfile.named("phone"),
        records={CONTACTS: data.records[CONTACTS], MESSAGES: data.records[MESSAGES]},
    )
    laptop = Device(
        "laptop", DeviceProfile.named("laptop"),
        records={CONTACTS: [], CALENDAR: data.records[CALENDAR]},
    )
    watch = Device(
        "watch", DeviceProfile.named("watch"),
        records={MESSAGES: data.records[MESSAGES][:20]},
    )
    return phone, laptop, watch, data


class TestDeviceProfiles:
    def test_named_profiles(self):
        assert DeviceProfile.named("watch").memory_budget_keys < DeviceProfile.named(
            "laptop"
        ).memory_budget_keys

    def test_unknown_profile(self):
        with pytest.raises(DeviceError):
            DeviceProfile.named("toaster")

    def test_watch_cannot_build_locally(self, fleet):
        _, _, watch, _ = fleet
        with pytest.raises(DeviceError):
            watch.build_kg()

    def test_phone_builds(self, fleet):
        phone, _, _, _ = fleet
        result = phone.build_kg()
        assert result.people
        assert phone.result is result

    def test_add_records_dedupes(self, fleet):
        phone, _, _, data = fleet
        before = len(phone.records[CONTACTS])
        added = phone.add_records(CONTACTS, data.records[CONTACTS])
        assert added == 0
        assert len(phone.records[CONTACTS]) == before


class TestSync:
    def test_converges(self, fleet):
        phone, laptop, watch, _ = fleet
        coordinator = SyncCoordinator([phone, laptop, watch])
        reports = coordinator.sync_until_stable()
        assert reports[-1].records_moved == 0
        assert reports[0].bytes_moved > 0

    def test_synced_sources_consistent(self, fleet):
        phone, laptop, watch, _ = fleet
        coordinator = SyncCoordinator([phone, laptop, watch])
        coordinator.sync_until_stable()
        assert coordinator.consistency_check(CONTACTS)
        assert coordinator.consistency_check(CALENDAR)

    def test_per_source_opt_out_respected(self, fleet):
        phone, laptop, _, _ = fleet
        laptop.sync_preferences[MESSAGES] = False
        coordinator = SyncCoordinator([phone, laptop])
        coordinator.sync_until_stable()
        assert not laptop.records.get(MESSAGES)
        # But contacts flowed phone → laptop.
        assert laptop.record_ids(CONTACTS) == phone.record_ids(CONTACTS)

    def test_same_records_same_kg(self, fleet):
        """The consistency guarantee: equal record sets → identical KGs."""
        phone, laptop, _, _ = fleet
        laptop.sync_preferences[MESSAGES] = True
        phone.sync_preferences[CALENDAR] = True
        coordinator = SyncCoordinator([phone, laptop])
        coordinator.sync_until_stable()
        result_phone = phone.build_kg()
        result_laptop = laptop.build_kg()
        assert kg_signature(result_phone) == kg_signature(result_laptop)

    def test_unsynced_source_diverges(self, fleet):
        phone, laptop, _, _ = fleet
        laptop.sync_preferences[MESSAGES] = False
        SyncCoordinator([phone, laptop]).sync_until_stable()
        phone_kg = phone.build_kg()
        laptop_kg = laptop.build_kg()
        # The phone sees message senders the laptop doesn't.
        assert kg_signature(phone_kg) != kg_signature(laptop_kg)

    def test_duplicate_device_ids_rejected(self, fleet):
        phone, _, _, _ = fleet
        with pytest.raises(SyncError):
            SyncCoordinator([phone, phone])


class TestOffload:
    def test_offload_installs_result(self, fleet):
        _, laptop, watch, _ = fleet
        result, bytes_moved = offload_construction(watch, laptop)
        assert watch.result is result
        assert result.people
        assert bytes_moved > 0

    def test_offload_matches_local_build(self, fleet):
        """Offloaded construction must equal what a capable device would
        compute locally on the same records."""
        phone, laptop, _, _ = fleet
        local = phone.build_kg()
        phone.result = None
        offloaded, _ = offload_construction(phone, laptop)
        assert kg_signature(offloaded) == kg_signature(local)

    def test_offload_to_weak_device_rejected(self, fleet):
        phone, _, watch, _ = fleet
        with pytest.raises(SyncError):
            offload_construction(phone, watch)
