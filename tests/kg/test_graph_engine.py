"""Tests for the graph query engine."""

import pytest

from repro.kg.graph_engine import GraphEngine, TriplePattern
from repro.kg.store import EntityRecord, TripleStore
from repro.kg.triple import entity_fact


@pytest.fixture()
def engine() -> GraphEngine:
    store = TripleStore()
    # A small chain + hub: a-b-c, hub connected to all.
    for local, name, types in [
        ("a", "A", ("type:person",)),
        ("b", "B", ("type:person",)),
        ("c", "C", ("type:city",)),
        ("hub", "Hub", ("type:award",)),
    ]:
        store.upsert_entity(EntityRecord(entity=f"entity:{local}", name=name, types=types))
    store.add(entity_fact("entity:a", "predicate:knows", "entity:b"))
    store.add(entity_fact("entity:b", "predicate:lives_in", "entity:c"))
    for local in ("a", "b", "c"):
        store.add(entity_fact(f"entity:{local}", "predicate:linked", "entity:hub"))
    return GraphEngine(store)


class TestPatterns:
    def test_match(self, engine):
        facts = list(engine.match(TriplePattern(predicate="predicate:knows")))
        assert len(facts) == 1

    def test_match_all_dedupes(self, engine):
        facts = engine.match_all(
            [
                TriplePattern(subject="entity:a"),
                TriplePattern(predicate="predicate:knows"),
            ]
        )
        keys = [fact.key for fact in facts]
        assert len(keys) == len(set(keys))

    def test_filter_facts(self, engine):
        kept = list(engine.filter_facts(lambda fact: fact.predicate == "predicate:linked"))
        assert len(kept) == 3


class TestTypedLookups:
    def test_entities_of_type(self, engine):
        assert engine.entities_of_type("type:person") == ["entity:a", "entity:b"]

    def test_type_of(self, engine):
        assert engine.type_of("entity:c") == ("type:city",)
        assert engine.type_of("entity:unknown") == ()


class TestTraversals:
    def test_neighborhood_1hop(self, engine):
        assert engine.neighborhood("entity:a", 1) == {"entity:b", "entity:hub"}

    def test_neighborhood_2hop_excludes_seed(self, engine):
        hood = engine.neighborhood("entity:a", 2)
        assert "entity:a" not in hood
        assert "entity:c" in hood  # via b or hub

    def test_neighborhood_rejects_negative(self, engine):
        with pytest.raises(ValueError):
            engine.neighborhood("entity:a", -1)

    def test_shortest_path(self, engine):
        assert engine.shortest_path_length("entity:a", "entity:a") == 0
        assert engine.shortest_path_length("entity:a", "entity:b") == 1
        assert engine.shortest_path_length("entity:a", "entity:c") == 2

    def test_shortest_path_cutoff(self, engine):
        assert engine.shortest_path_length("entity:a", "entity:c", cutoff=1) is None

    def test_random_walks_deterministic(self, engine):
        walks_a = engine.random_walks(["entity:a"], walk_length=4, walks_per_entity=2, seed=5)
        walks_b = engine.random_walks(["entity:a"], walk_length=4, walks_per_entity=2, seed=5)
        assert walks_a == walks_b
        assert all(walk[0] == "entity:a" for walk in walks_a)

    def test_random_walks_follow_edges(self, engine):
        for walk in engine.random_walks(["entity:a"], walk_length=5, walks_per_entity=3, seed=1):
            for i in range(len(walk) - 1):
                assert walk[i + 1] in engine.store.neighbors(walk[i])

    def test_co_neighbor_counts(self, engine):
        counts = engine.co_neighbor_counts("entity:a")
        # a and c share the hub (and b) as neighbours.
        assert counts.get("entity:c", 0) >= 1


class TestCandidates:
    def test_candidate_triples_default_objects(self, engine):
        candidates = engine.candidate_triples("entity:a", "predicate:lives_in")
        assert ("entity:a", "predicate:lives_in", "entity:c") in candidates

    def test_candidate_triples_explicit(self, engine):
        candidates = engine.candidate_triples(
            "entity:a", "predicate:knows", ["entity:b", "entity:c"]
        )
        assert len(candidates) == 2

    def test_candidate_pairs_sampled(self, engine):
        entities = [f"entity:{x}" for x in "abc"]
        pairs = engine.candidate_pairs(entities, max_pairs=2, seed=1)
        assert len(pairs) == 2

    def test_entity_edges_excludes_literals(self, engine):
        from repro.kg.triple import LiteralType, literal_fact

        engine.store.add(
            literal_fact("entity:a", "predicate:height", 180, LiteralType.NUMBER)
        )
        assert all(fact.obj.startswith("entity:") for fact in engine.entity_edges())

    def test_degree_distribution(self, engine):
        degrees = engine.degree_distribution()
        assert degrees["entity:hub"] == 3
