"""Tests for the Fact data model."""

import pytest

from repro.common.errors import StoreError
from repro.kg.triple import Fact, LiteralType, ObjectKind, entity_fact, literal_fact


class TestConstruction:
    def test_entity_fact(self):
        fact = entity_fact("entity:a", "predicate:p", "entity:b")
        assert fact.obj_kind is ObjectKind.ENTITY
        assert not fact.is_literal

    def test_literal_fact_number(self):
        fact = literal_fact("entity:a", "predicate:h", 180, LiteralType.NUMBER)
        assert fact.is_literal
        assert fact.is_numeric
        assert fact.obj == "180"

    def test_literal_fact_date(self):
        fact = literal_fact("entity:a", "predicate:dob", "1979-07-23", LiteralType.DATE)
        assert fact.literal_type is LiteralType.DATE
        assert not fact.is_numeric

    def test_rejects_non_entity_subject(self):
        with pytest.raises(StoreError):
            entity_fact("doc:web/1", "predicate:p", "entity:b")

    def test_rejects_non_predicate(self):
        with pytest.raises(StoreError):
            entity_fact("entity:a", "entity:p", "entity:b")

    def test_rejects_literal_object_in_entity_fact(self):
        with pytest.raises(StoreError):
            entity_fact("entity:a", "predicate:p", "just a string")

    def test_entity_fact_must_not_have_literal_type(self):
        with pytest.raises(StoreError):
            Fact(
                subject="entity:a",
                predicate="predicate:p",
                obj="entity:b",
                obj_kind=ObjectKind.ENTITY,
                literal_type=LiteralType.STRING,
            )

    def test_literal_fact_requires_literal_type(self):
        with pytest.raises(StoreError):
            Fact(
                subject="entity:a",
                predicate="predicate:p",
                obj="x",
                obj_kind=ObjectKind.LITERAL,
            )

    def test_rejects_out_of_range_confidence(self):
        with pytest.raises(StoreError):
            entity_fact("entity:a", "predicate:p", "entity:b", confidence=1.5)


class TestBehaviour:
    def test_key_ignores_metadata(self):
        a = entity_fact("entity:a", "predicate:p", "entity:b", confidence=0.5)
        b = entity_fact("entity:a", "predicate:p", "entity:b", confidence=0.9)
        assert a.key == b.key

    def test_with_metadata(self):
        fact = entity_fact("entity:a", "predicate:p", "entity:b")
        updated = fact.with_metadata(confidence=0.7, sources=("source:x",), updated_at=99.0)
        assert updated.confidence == 0.7
        assert updated.sources == ("source:x",)
        assert updated.updated_at == 99.0
        assert fact.confidence == 1.0  # original untouched (frozen)

    def test_hashable(self):
        fact = entity_fact("entity:a", "predicate:p", "entity:b")
        assert fact in {fact}

    def test_dict_roundtrip(self):
        fact = literal_fact(
            "entity:a", "predicate:dob", "1990-01-02", LiteralType.DATE,
            confidence=0.8, sources=("source:s",), updated_at=5.0,
        )
        assert Fact.from_dict(fact.to_dict()) == fact

    def test_entity_dict_roundtrip(self):
        fact = entity_fact("entity:a", "predicate:p", "entity:b")
        assert Fact.from_dict(fact.to_dict()) == fact
