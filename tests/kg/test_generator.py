"""Tests for the synthetic KG generator."""

from repro.common import ids
from repro.kg.generator import (
    SyntheticKGConfig,
    generate_kg,
    hold_out_facts,
)


class TestDeterminism:
    def test_same_seed_same_world(self, kg):
        other = generate_kg(SyntheticKGConfig(seed=7, scale=0.5))
        assert {f.key for f in other.store.scan()} == {f.key for f in kg.store.scan()}
        assert other.store.entity_ids() == kg.store.entity_ids()

    def test_different_seed_differs(self, kg):
        other = generate_kg(SyntheticKGConfig(seed=8, scale=0.5))
        assert {f.key for f in other.store.scan()} != {f.key for f in kg.store.scan()}


class TestStructure:
    def test_scale_knob(self):
        small = generate_kg(SyntheticKGConfig(seed=1, scale=0.2))
        large = generate_kg(SyntheticKGConfig(seed=1, scale=0.6))
        assert len(large.store) > len(small.store)

    def test_every_fact_conforms_to_ontology(self, kg):
        for fact in kg.store.scan():
            assert kg.ontology.has_predicate(fact.predicate)
            schema = kg.ontology.schema(fact.predicate)
            assert schema.is_literal == fact.is_literal

    def test_people_have_expected_facts(self, kg):
        people = [r for r in kg.store.entities() if ids.type_id("person") in r.types]
        assert people
        for record in people[:20]:
            assert kg.store.objects(record.entity, ids.predicate_id("occupation"))
            assert kg.store.objects(record.entity, ids.predicate_id("date_of_birth"))

    def test_popularity_skewed(self, kg):
        pops = sorted((r.popularity for r in kg.store.entities()), reverse=True)
        assert pops[0] > 10 * pops[-1]

    def test_ambiguous_names_share_surface(self, kg):
        assert kg.truth.ambiguous_names
        for name, members in kg.truth.ambiguous_names.items():
            assert len(members) >= 2
            for entity in members:
                assert kg.store.entity(entity).name == name

    def test_occupation_order_primary_first(self, kg):
        for person, order in list(kg.truth.occupation_order.items())[:20]:
            stored = set(kg.store.objects(person, ids.predicate_id("occupation")))
            assert set(order) <= stored
            assert order[0] in stored

    def test_noise_facts_are_low_confidence(self, kg):
        assert kg.truth.noise_facts
        for fact in kg.truth.noise_facts:
            stored = kg.store.get(*fact.key)
            assert stored is not None
            assert stored.confidence <= 0.5

    def test_related_truth_symmetric(self, kg):
        for entity, related in kg.truth.related.items():
            for other in related:
                assert entity in kg.truth.related[other]

    def test_stale_facts_recorded(self, kg):
        assert kg.truth.stale_facts
        for entity, predicate in kg.truth.stale_facts[:10]:
            facts = list(kg.store.scan(subject=entity, predicate=predicate))
            assert facts
            assert facts[0].updated_at < kg.now - 2 * 365 * 24 * 3600


class TestHoldOut:
    def test_holdout_removes_from_deployed(self, kg):
        deployed, held_out = hold_out_facts(kg, fraction=0.3, seed=5)
        assert held_out
        for fact in held_out:
            assert fact.key not in deployed
            assert kg.store.get(*fact.key) is not None

    def test_holdout_preserves_other_facts(self, kg):
        deployed, held_out = hold_out_facts(kg, fraction=0.3, seed=5)
        held_keys = {fact.key for fact in held_out}
        for fact in kg.store.scan():
            if fact.key not in held_keys:
                assert fact.key in deployed

    def test_holdout_deterministic(self, kg):
        _, a = hold_out_facts(kg, fraction=0.2, seed=9)
        _, b = hold_out_facts(kg, fraction=0.2, seed=9)
        assert [f.key for f in a] == [f.key for f in b]

    def test_holdout_entities_kept(self, kg):
        deployed, _ = hold_out_facts(kg, fraction=0.2, seed=9)
        assert set(deployed.entity_ids()) == set(kg.store.entity_ids())

    def test_zero_fraction(self, kg):
        deployed, held_out = hold_out_facts(kg, fraction=0.0, seed=1)
        assert held_out == []
        assert len(deployed) == len(kg.store)
