"""Tenant overlays: splice parity, determinism, append-only id pinning."""

import numpy as np
import pytest

from repro.common import ids
from repro.common.errors import StoreError
from repro.kg import SyntheticKGConfig, generate_kg
from repro.kg.adjacency import build_csr
from repro.kg.deltas import GenerationPublisher
from repro.kg.overlay import TenantOverlay, collapse_overlay, overlay_payload
from repro.kg.persistence import load_snapshot
from repro.kg.store import EntityRecord, TripleStore
from repro.kg.triple import LiteralType, entity_fact, literal_fact

INTERESTED = ids.predicate_id("interested_in")
KNOWS = ids.predicate_id("knows")
NOTE = ids.predicate_id("note")


@pytest.fixture(scope="module")
def shared():
    """A small shared open-domain KG plus its base CSR (read-only)."""
    kg = generate_kg(SyntheticKGConfig(seed=13, scale=0.05))
    return kg.store, build_csr(kg.store)


def _personal_store(shared_store, *, people=2, links=2) -> TripleStore:
    """A personal store linking synthetic persons into the shared graph."""
    store = TripleStore(name="personal")
    shared_entities = sorted(shared_store.entity_ids())
    for p in range(people):
        person = ids.entity_id(f"person/anna-{p}")
        store.upsert_entity(EntityRecord(entity=person, name=f"Anna {p}"))
        for l in range(links):
            target = shared_entities[(p * 7 + l * 3) % len(shared_entities)]
            store.add(entity_fact(person, INTERESTED, target, sources=("dev",)))
        if p:
            store.add(
                entity_fact(
                    person, KNOWS, ids.entity_id("person/anna-0"), sources=("dev",)
                )
            )
        store.add(
            literal_fact(person, NOTE, f"note {p}", LiteralType.STRING)
        )
    return store


def _neighbor_sets(csr) -> dict[str, set[str]]:
    strings = csr.dictionary
    return {
        strings.string_of(node): {
            strings.string_of(int(i)) for i in csr.neighbors_of(node)
        }
        for node in range(csr.num_nodes)
    }


class TestOverlayParity:
    def test_matches_from_scratch_union_build(self, shared):
        """The collapsed overlay equals a full build of shared+personal."""
        shared_store, base = shared
        personal = _personal_store(shared_store)

        union = TripleStore(name="union")
        union.copy_entities_from(shared_store)
        union.copy_entities_from(personal)
        for fact in shared_store.scan():
            union.add(fact)
        for fact in personal.scan():
            union.add(fact)
        full = build_csr(union)

        merged = collapse_overlay(base, personal)
        assert merged.num_edges == full.num_edges
        full_rows = _neighbor_sets(full)
        merged_rows = _neighbor_sets(merged)
        assert set(full_rows) == set(merged_rows)
        for node, row in full_rows.items():
            assert merged_rows[node] == row, node
            assert merged.degree(node) == full.degree(node), node
        assert merged.predicate_counts == full.predicate_counts

    def test_two_builds_are_byte_identical(self, shared):
        shared_store, base = shared
        personal = _personal_store(shared_store)
        first = collapse_overlay(base, personal)
        second = collapse_overlay(base, personal)
        np.testing.assert_array_equal(first.indptr, second.indptr)
        np.testing.assert_array_equal(first.indices, second.indices)
        np.testing.assert_array_equal(
            first.entity_edge_degrees, second.entity_edge_degrees
        )
        assert list(first.dictionary.strings()) == list(second.dictionary.strings())

    def test_base_is_shared_not_copied(self, shared):
        """Collapsing must never mutate the (multiplexed) base CSR."""
        shared_store, base = shared
        before_nodes = base.num_nodes
        before_indices = base.indices.copy()
        personal = _personal_store(shared_store)
        merged = collapse_overlay(base, personal)
        assert base.num_nodes == before_nodes
        np.testing.assert_array_equal(base.indices, before_indices)
        assert merged is not base

    def test_personal_nodes_take_ids_past_base(self, shared):
        shared_store, base = shared
        personal = _personal_store(shared_store)
        payload = overlay_payload(base, personal)
        assert payload.store_version == personal.version
        assert payload.parent_version == base.built_version
        # Every string the base lacks appends past base.num_nodes, in
        # sorted order — the deterministic id assignment the splice and
        # the append-only pin both rely on.
        assert payload.new_strings == sorted(payload.new_strings)
        merged = collapse_overlay(base, personal)
        for offset, string in enumerate(payload.new_strings):
            assert merged.dictionary.get(string) == base.num_nodes + offset
        for p in range(2):
            person = ids.entity_id(f"person/anna-{p}")
            assert merged.dictionary.get(person) >= base.num_nodes
            assert base.dictionary.get(person) is None


class TestTenantOverlay:
    def test_engine_serves_merged_view(self, shared):
        shared_store, base = shared
        personal = _personal_store(shared_store)
        overlay = TenantOverlay(base, personal)
        assert overlay.base_version == base.built_version
        assert overlay.num_personal_nodes > 0
        engine = overlay.engine()
        person = ids.entity_id("person/anna-0")
        hood = engine.neighborhood(person, hops=1)
        linked = set(personal.objects(person, INTERESTED))
        assert linked and linked <= set(hood)
        # One hop further reaches pure shared-graph structure: neighbors
        # of the linked shared entity that no personal fact mentions.
        two = set(engine.neighborhood(person, hops=2))
        shared_only = set()
        for target in linked:
            node = base.dictionary.get(target)
            shared_only |= {
                base.dictionary.string_of(int(i)) for i in base.neighbors_of(node)
            }
        assert shared_only & two

    def test_engine_is_cached(self, shared):
        shared_store, base = shared
        overlay = TenantOverlay(base, _personal_store(shared_store))
        assert overlay.engine() is overlay.engine()

    def test_mutated_personal_store_is_refused(self, shared):
        shared_store, base = shared
        personal = _personal_store(shared_store)
        overlay = TenantOverlay(base, personal)
        personal.add(
            literal_fact(
                ids.entity_id("person/anna-0"), NOTE, "late", LiteralType.STRING
            )
        )
        with pytest.raises(StoreError, match="moved"):
            overlay.engine()


class TestAppendOnlyAcrossGenerations:
    def test_shared_swap_keeps_ids_and_overlay_valid(self, tmp_path):
        """The ISSUE pin: a shared-bundle generation swap only ever
        *appends* to the dictionary, so rebuilding a tenant overlay
        against the new base lands personal facts on the same strings
        and keeps every pre-swap id meaningful."""
        kg = generate_kg(SyntheticKGConfig(seed=17, scale=0.05))
        publisher = GenerationPublisher(
            kg.store, tmp_path / "bundle", embeddings=False
        )
        base_v1 = load_snapshot(tmp_path / "bundle").adjacency
        personal = _personal_store(kg.store)
        overlay_v1 = TenantOverlay(base_v1, personal)
        person = ids.entity_id("person/anna-0")
        hood_v1 = overlay_v1.engine().neighborhood(person, hops=1)

        # Grow the shared graph: a brand-new entity plus new edges.
        anchor = sorted(kg.store.entity_ids())[0]
        newcomer = ids.entity_id("grown/newcomer")
        kg.store.upsert_entity(EntityRecord(entity=newcomer, name="Newcomer"))
        fact = entity_fact(newcomer, KNOWS, anchor, sources=("growth",))
        kg.store.add(fact)
        publisher.record(keys=[fact.key], entities=[newcomer])
        assert publisher.publish() is not None
        base_v2 = load_snapshot(tmp_path / "bundle").adjacency
        assert base_v2.built_version > base_v1.built_version

        # Append-only: every v1 string keeps its exact id in v2.
        v1_strings = list(base_v1.dictionary.strings())
        for node_id, string in enumerate(v1_strings):
            assert base_v2.dictionary.get(string) == node_id
        assert base_v2.num_nodes > base_v1.num_nodes

        overlay_v2 = TenantOverlay(base_v2, personal)
        engine_v2 = overlay_v2.engine()
        # Personal facts land on the same strings: the old merged view
        # is a subset of the new one (the swap only added shared edges).
        hood_v2 = engine_v2.neighborhood(person, hops=1)
        assert set(hood_v1) <= set(hood_v2)
        # And the newly-grown shared structure is reachable through the
        # same overlay without any tenant-side work.
        assert engine_v2.snapshot().dictionary.get(newcomer) is not None
        anchor_hood = engine_v2.neighborhood(anchor, hops=1)
        assert newcomer in anchor_hood

    def test_personal_ids_shift_but_strings_resolve(self, tmp_path):
        """Personal node *ids* may shift across a swap (they re-append
        past the larger base); resolution is by string, so reads agree."""
        kg = generate_kg(SyntheticKGConfig(seed=19, scale=0.05))
        publisher = GenerationPublisher(
            kg.store, tmp_path / "bundle", embeddings=False
        )
        base_v1 = load_snapshot(tmp_path / "bundle").adjacency
        personal = _personal_store(kg.store, people=1, links=1)
        person = ids.entity_id("person/anna-0")
        id_v1 = collapse_overlay(base_v1, personal).dictionary.get(person)

        newcomer = ids.entity_id("grown/other")
        kg.store.upsert_entity(EntityRecord(entity=newcomer, name="Other"))
        fact = entity_fact(
            newcomer, KNOWS, sorted(kg.store.entity_ids())[1], sources=("growth",)
        )
        kg.store.add(fact)
        publisher.record(keys=[fact.key], entities=[newcomer])
        publisher.publish()
        base_v2 = load_snapshot(tmp_path / "bundle").adjacency

        merged_v2 = collapse_overlay(base_v2, personal)
        id_v2 = merged_v2.dictionary.get(person)
        assert id_v2 >= base_v2.num_nodes > id_v1
        linked = personal.objects(person, INTERESTED)[0]
        row = {
            merged_v2.dictionary.string_of(int(i))
            for i in merged_v2.neighbors_of(id_v2)
        }
        assert linked in row
