"""Tests for the ontology (types + predicate schemas)."""

import pytest

from repro.common.errors import OntologyError
from repro.kg.generator import build_ontology
from repro.kg.ontology import Ontology, PredicateSchema
from repro.kg.triple import LiteralType


@pytest.fixture()
def onto() -> Ontology:
    o = Ontology()
    o.add_type("type:thing")
    o.add_type("type:person", "type:thing")
    o.add_type("type:athlete", "type:person")
    o.add_predicate(
        PredicateSchema(
            "predicate:dob", "type:person",
            literal_type=LiteralType.DATE, functional=True, expected=True,
        )
    )
    o.add_predicate(
        PredicateSchema("predicate:knows", "type:person", range_type="type:person")
    )
    return o


class TestTypes:
    def test_hierarchy(self, onto):
        assert onto.parent("type:athlete") == "type:person"
        assert onto.ancestors("type:athlete") == ["type:person", "type:thing"]

    def test_is_subtype(self, onto):
        assert onto.is_subtype("type:athlete", "type:thing")
        assert onto.is_subtype("type:person", "type:person")
        assert not onto.is_subtype("type:thing", "type:person")

    def test_descendants(self, onto):
        assert set(onto.descendants("type:person")) == {"type:athlete"}

    def test_duplicate_type_rejected(self, onto):
        with pytest.raises(OntologyError):
            onto.add_type("type:person")

    def test_unknown_parent_rejected(self, onto):
        with pytest.raises(OntologyError):
            onto.add_type("type:x", "type:nonexistent")

    def test_bad_type_id_rejected(self, onto):
        with pytest.raises(OntologyError):
            onto.add_type("entity:notatype")


class TestPredicates:
    def test_schema_lookup(self, onto):
        schema = onto.schema("predicate:dob")
        assert schema.functional
        assert schema.is_literal

    def test_unknown_predicate_raises(self, onto):
        with pytest.raises(OntologyError):
            onto.schema("predicate:nope")

    def test_schema_needs_exactly_one_range(self):
        with pytest.raises(OntologyError):
            PredicateSchema("predicate:x", "type:thing")
        with pytest.raises(OntologyError):
            PredicateSchema(
                "predicate:x", "type:thing",
                range_type="type:thing", literal_type=LiteralType.STRING,
            )

    def test_expected_predicates_inherit(self, onto):
        # dob is expected on person; athlete inherits the expectation.
        assert "predicate:dob" in onto.expected_predicates("type:athlete")

    def test_predicates_for_domain(self, onto):
        assert onto.predicates_for_domain("type:athlete") == {
            "predicate:dob", "predicate:knows",
        }

    def test_duplicate_predicate_rejected(self, onto):
        with pytest.raises(OntologyError):
            onto.add_predicate(
                PredicateSchema("predicate:dob", "type:person",
                                literal_type=LiteralType.DATE)
            )


class TestGeneratorOntology:
    def test_numeric_predicates_identified(self):
        onto = build_ontology()
        numeric = onto.numeric_predicates()
        assert "predicate:height_cm" in numeric
        assert "predicate:social_media_followers" in numeric
        assert "predicate:occupation" not in numeric

    def test_volatile_predicates(self):
        onto = build_ontology()
        assert "predicate:social_media_followers" in onto.volatile_predicates()
        assert "predicate:date_of_birth" not in onto.volatile_predicates()

    def test_identifier_predicates(self):
        onto = build_ontology()
        assert "predicate:library_id" in onto.identifier_predicates()
