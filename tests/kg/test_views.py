"""Tests for materialized views."""

import pytest

from repro.common.errors import ViewError
from repro.kg.store import EntityRecord, TripleStore
from repro.kg.triple import LiteralType, entity_fact, literal_fact
from repro.kg.views import (
    ViewDefinition,
    ViewRegistry,
    embedding_training_view,
    materialize,
    static_knowledge_asset_view,
)


@pytest.fixture()
def base() -> TripleStore:
    store = TripleStore()
    for local, popularity, types in [
        ("a", 0.9, ("type:person",)),
        ("b", 0.5, ("type:person",)),
        ("c", 0.1, ("type:city",)),
    ]:
        store.upsert_entity(
            EntityRecord(entity=f"entity:{local}", name=local.upper(),
                         popularity=popularity, types=types)
        )
    store.add(entity_fact("entity:a", "predicate:knows", "entity:b"))
    store.add(entity_fact("entity:a", "predicate:knows", "entity:c"))
    store.add(entity_fact("entity:b", "predicate:rare", "entity:c", confidence=0.2))
    store.add(literal_fact("entity:a", "predicate:height", 180, LiteralType.NUMBER))
    store.add(literal_fact("entity:a", "predicate:lib", "L1", LiteralType.IDENTIFIER))
    store.add(literal_fact("entity:a", "predicate:bio", "text", LiteralType.STRING))
    return store


class TestClauses:
    def test_drop_numeric(self, base):
        view = materialize(ViewDefinition(name="v", drop_numeric=True), base)
        assert all(not fact.is_numeric for fact in view.store.scan())
        assert view.facts_kept == view.facts_in - 1

    def test_drop_identifiers(self, base):
        view = materialize(ViewDefinition(name="v", drop_identifiers=True), base)
        predicates = {fact.predicate for fact in view.store.scan()}
        assert "predicate:lib" not in predicates

    def test_drop_all_literals(self, base):
        view = materialize(ViewDefinition(name="v", drop_literals=True), base)
        assert all(not fact.is_literal for fact in view.store.scan())

    def test_allowlist(self, base):
        view = materialize(
            ViewDefinition(name="v", predicate_allowlist=frozenset({"predicate:knows"})),
            base,
        )
        assert {fact.predicate for fact in view.store.scan()} == {"predicate:knows"}

    def test_denylist(self, base):
        view = materialize(
            ViewDefinition(name="v", predicate_denylist=frozenset({"predicate:knows"})),
            base,
        )
        assert "predicate:knows" not in {fact.predicate for fact in view.store.scan()}

    def test_min_predicate_frequency(self, base):
        view = materialize(ViewDefinition(name="v", min_predicate_frequency=2), base)
        assert "predicate:rare" not in {fact.predicate for fact in view.store.scan()}
        assert "predicate:knows" in {fact.predicate for fact in view.store.scan()}

    def test_min_confidence(self, base):
        view = materialize(ViewDefinition(name="v", min_confidence=0.5), base)
        assert all(fact.confidence >= 0.5 for fact in view.store.scan())

    def test_entity_types_filter(self, base):
        view = materialize(
            ViewDefinition(name="v", entity_types=frozenset({"type:person"})), base
        )
        # a-knows-c dropped: c is a city.
        assert ("entity:a", "predicate:knows", "entity:c") not in view.store

    def test_top_k_popularity(self, base):
        view = materialize(
            ViewDefinition(name="v", top_k_entities_by_popularity=2), base
        )
        kept_entities = set(view.store.entity_ids())
        assert "entity:c" not in kept_entities

    def test_entity_descriptors_copied(self, base):
        view = materialize(ViewDefinition(name="v", drop_literals=True), base)
        assert view.store.entity("entity:a").popularity == 0.9

    def test_selectivity(self, base):
        view = materialize(ViewDefinition(name="v"), base)
        assert view.selectivity == 1.0


class TestRegistry:
    def test_get_materializes(self, base):
        registry = ViewRegistry(base)
        registry.define(ViewDefinition(name="v", drop_literals=True))
        view = registry.get("v")
        assert view.facts_kept == 3

    def test_stale_after_base_write(self, base):
        registry = ViewRegistry(base)
        registry.define(ViewDefinition(name="v"))
        registry.get("v")
        assert not registry.is_stale("v")
        base.add(entity_fact("entity:b", "predicate:knows", "entity:a"))
        assert registry.is_stale("v")
        refreshed = registry.get("v")
        assert ("entity:b", "predicate:knows", "entity:a") in refreshed.store
        assert registry.refresh_count == 2

    def test_duplicate_definition_rejected(self, base):
        registry = ViewRegistry(base)
        registry.define(ViewDefinition(name="v"))
        with pytest.raises(ViewError):
            registry.define(ViewDefinition(name="v"))

    def test_unknown_view_rejected(self, base):
        with pytest.raises(ViewError):
            ViewRegistry(base).get("nope")


class TestStandardViews:
    def test_embedding_training_view(self, base):
        definition = embedding_training_view(min_predicate_frequency=1)
        view = materialize(definition, base)
        predicates = {fact.predicate for fact in view.store.scan()}
        assert "predicate:height" not in predicates  # numeric dropped
        assert "predicate:lib" not in predicates  # identifier dropped
        assert "predicate:bio" in predicates  # plain strings kept

    def test_static_asset_view(self, base):
        view = materialize(static_knowledge_asset_view(top_k=1), base)
        assert set(view.store.entity_ids()) <= {"entity:a", "entity:b"}

    def test_describe(self):
        definition = embedding_training_view()
        description = definition.describe()
        assert description["drop_numeric"] is True
