"""Tests for KG profiling (coverage + freshness)."""

import pytest

from repro.kg.generator import SYNTHETIC_NOW, build_ontology
from repro.kg.profiling import KGProfiler
from repro.kg.store import EntityRecord, TripleStore
from repro.kg.triple import LiteralType, entity_fact, literal_fact

YEAR = 365.25 * 24 * 3600


@pytest.fixture()
def world():
    """Two people: one fully covered, one with gaps and a stale fact."""
    store = TripleStore()
    onto = build_ontology()
    store.upsert_entity(
        EntityRecord(entity="entity:full", name="Full", types=("type:person",), popularity=0.9)
    )
    store.upsert_entity(
        EntityRecord(entity="entity:gappy", name="Gappy", types=("type:person",), popularity=0.5)
    )
    # 'full' has every expected person predicate.
    store.add(entity_fact("entity:full", "predicate:occupation", "entity:occ"))
    store.add(literal_fact("entity:full", "predicate:date_of_birth", "1980-01-01",
                           LiteralType.DATE, updated_at=SYNTHETIC_NOW - YEAR))
    store.add(entity_fact("entity:full", "predicate:place_of_birth", "entity:city"))
    store.add(entity_fact("entity:full", "predicate:citizen_of", "entity:country"))
    # 'gappy' misses DOB and citizenship, and has a stale volatile fact.
    store.add(entity_fact("entity:gappy", "predicate:occupation", "entity:occ"))
    store.add(entity_fact("entity:gappy", "predicate:place_of_birth", "entity:city"))
    store.add(literal_fact("entity:gappy", "predicate:social_media_followers", 100,
                           LiteralType.NUMBER, updated_at=SYNTHETIC_NOW - 3 * YEAR))
    return store, onto


class TestCoverage:
    def test_gaps_found(self, world):
        store, onto = world
        report = KGProfiler(store, onto, now=SYNTHETIC_NOW).profile()
        gap_keys = {gap.key for gap in report.gaps}
        assert ("entity:gappy", "predicate:date_of_birth") in gap_keys
        assert ("entity:gappy", "predicate:citizen_of") in gap_keys
        assert ("entity:full", "predicate:date_of_birth") not in gap_keys

    def test_gaps_ranked_by_importance(self, world):
        store, onto = world
        store.upsert_entity(
            EntityRecord(entity="entity:star", name="Star", types=("type:person",), popularity=1.0)
        )
        report = KGProfiler(store, onto, now=SYNTHETIC_NOW).profile()
        assert report.gaps[0].entity == "entity:star"

    def test_coverage_fractions(self, world):
        store, onto = world
        report = KGProfiler(store, onto, now=SYNTHETIC_NOW).profile()
        assert report.coverage_of("type:person", "predicate:occupation") == 1.0
        assert report.coverage_of("type:person", "predicate:date_of_birth") == 0.5

    def test_top_gaps_limit(self, world):
        store, onto = world
        profiler = KGProfiler(store, onto, now=SYNTHETIC_NOW)
        assert len(profiler.top_gaps(1)) == 1


class TestFreshness:
    def test_stale_volatile_fact_flagged(self, world):
        store, onto = world
        report = KGProfiler(store, onto, now=SYNTHETIC_NOW).profile()
        stale_keys = {(item.entity, item.predicate) for item in report.stale}
        assert ("entity:gappy", "predicate:social_media_followers") in stale_keys

    def test_fresh_fact_not_flagged(self, world):
        store, onto = world
        store.add(
            literal_fact("entity:full", "predicate:social_media_followers", 5,
                         LiteralType.NUMBER, updated_at=SYNTHETIC_NOW - 0.1 * YEAR)
        )
        report = KGProfiler(store, onto, now=SYNTHETIC_NOW).profile()
        stale_keys = {(item.entity, item.predicate) for item in report.stale}
        assert ("entity:full", "predicate:social_media_followers") not in stale_keys

    def test_horizon_configurable(self, world):
        store, onto = world
        profiler = KGProfiler(
            store, onto, now=SYNTHETIC_NOW, staleness_horizon_seconds=10 * YEAR
        )
        assert profiler.profile().stale == []
