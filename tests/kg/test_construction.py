"""Tests for batch and streaming construction."""

import pytest

from repro.common.errors import StoreError
from repro.kg.construction import (
    BatchIngestor,
    Delta,
    DeltaOp,
    KnowledgeSource,
    StreamIngestor,
)
from repro.kg.generator import build_ontology
from repro.kg.store import TripleStore
from repro.kg.triple import LiteralType, entity_fact, literal_fact

DOB = "predicate:date_of_birth"


def _dob(subject, value, confidence=1.0):
    return literal_fact(subject, DOB, value, LiteralType.DATE, confidence=confidence)


class TestBatch:
    def test_basic_ingest(self):
        store = TripleStore()
        source = KnowledgeSource(
            name="feed",
            trust=1.0,
            facts=[entity_fact("entity:a", "predicate:occupation", "entity:o")],
        )
        report = BatchIngestor(store, build_ontology()).ingest([source])
        assert report.facts_applied == 1
        assert len(store) == 1

    def test_source_provenance_stamped(self):
        store = TripleStore()
        source = KnowledgeSource(
            name="wiki", trust=1.0,
            facts=[entity_fact("entity:a", "predicate:occupation", "entity:o")],
        )
        BatchIngestor(store, build_ontology()).ingest([source])
        fact = store.get("entity:a", "predicate:occupation", "entity:o")
        assert "source:wiki" in fact.sources

    def test_functional_conflict_higher_trust_wins(self):
        store = TripleStore()
        low = KnowledgeSource(name="blog", trust=0.3, facts=[_dob("entity:a", "1990-01-01")])
        high = KnowledgeSource(name="registry", trust=0.95, facts=[_dob("entity:a", "1991-02-02")])
        report = BatchIngestor(store, build_ontology()).ingest([low, high])
        values = store.objects("entity:a", DOB)
        assert values == ["1991-02-02"]
        assert report.conflicts_resolved == 1

    def test_functional_conflict_lower_trust_dropped(self):
        store = TripleStore()
        high = KnowledgeSource(name="registry", trust=0.95, facts=[_dob("entity:a", "1991-02-02")])
        low = KnowledgeSource(name="blog", trust=0.3, facts=[_dob("entity:a", "1990-01-01")])
        # Sorted by trust internally, so the high-trust fact lands last anyway;
        # ingest them in one call and check the winner.
        BatchIngestor(store, build_ontology()).ingest([high, low])
        assert store.objects("entity:a", DOB) == ["1991-02-02"]

    def test_multivalued_predicates_accumulate(self):
        store = TripleStore()
        source = KnowledgeSource(
            name="feed", trust=1.0,
            facts=[
                entity_fact("entity:a", "predicate:occupation", "entity:o1"),
                entity_fact("entity:a", "predicate:occupation", "entity:o2"),
            ],
        )
        BatchIngestor(store, build_ontology()).ingest([source])
        assert len(store.objects("entity:a", "predicate:occupation")) == 2

    def test_schema_rejection(self):
        store = TripleStore()
        source = KnowledgeSource(
            name="feed", trust=1.0,
            facts=[entity_fact("entity:a", "predicate:not_in_schema", "entity:b")],
        )
        report = BatchIngestor(store, build_ontology()).ingest([source])
        assert report.schema_rejections == 1
        assert len(store) == 0

    def test_kind_mismatch_rejected(self):
        store = TripleStore()
        # date_of_birth must be a literal; an entity-valued version is rejected.
        source = KnowledgeSource(
            name="feed", trust=1.0,
            facts=[entity_fact("entity:a", DOB, "entity:b")],
        )
        report = BatchIngestor(store, build_ontology()).ingest([source])
        assert report.schema_rejections == 1

    def test_no_ontology_accepts_everything(self):
        store = TripleStore()
        source = KnowledgeSource(
            name="feed", trust=1.0,
            facts=[entity_fact("entity:a", "predicate:whatever", "entity:b")],
        )
        report = BatchIngestor(store, None).ingest([source])
        assert report.facts_applied == 1

    def test_bad_trust_rejected(self):
        with pytest.raises(StoreError):
            KnowledgeSource(name="x", trust=1.5)


class TestStreaming:
    def test_upsert_and_retract(self):
        store = TripleStore()
        ingestor = StreamIngestor(store, build_ontology())
        fact = entity_fact("entity:a", "predicate:occupation", "entity:o")
        ingestor.apply(Delta(sequence=1, op=DeltaOp.UPSERT, fact=fact))
        assert len(store) == 1
        report = ingestor.apply(Delta(sequence=2, op=DeltaOp.RETRACT, fact=fact))
        assert report.retractions == 1
        assert len(store) == 0

    def test_out_of_order_rejected(self):
        store = TripleStore()
        ingestor = StreamIngestor(store)
        fact = entity_fact("entity:a", "predicate:p", "entity:b")
        ingestor.apply(Delta(sequence=5, op=DeltaOp.UPSERT, fact=fact))
        with pytest.raises(StoreError):
            ingestor.apply(Delta(sequence=5, op=DeltaOp.UPSERT, fact=fact))

    def test_apply_all_accumulates(self):
        store = TripleStore()
        ingestor = StreamIngestor(store, build_ontology())
        deltas = [
            Delta(1, DeltaOp.UPSERT, entity_fact("entity:a", "predicate:occupation", "entity:o1")),
            Delta(2, DeltaOp.UPSERT, entity_fact("entity:a", "predicate:occupation", "entity:o2")),
            Delta(3, DeltaOp.RETRACT, entity_fact("entity:a", "predicate:occupation", "entity:o1")),
        ]
        report = ingestor.apply_all(deltas)
        assert report.facts_applied == 2
        assert report.retractions == 1
        assert store.objects("entity:a", "predicate:occupation") == ["entity:o2"]
        assert ingestor.last_sequence == 3

    def test_batch_and_stream_converge(self):
        """The paper's invariant: both paths produce the same store state."""
        facts = [
            entity_fact("entity:a", "predicate:occupation", "entity:o1"),
            _dob("entity:a", "1990-01-01", confidence=0.9),
        ]
        batch_store = TripleStore()
        BatchIngestor(batch_store, build_ontology()).ingest(
            [KnowledgeSource(name="s", trust=1.0, facts=facts)]
        )
        stream_store = TripleStore()
        ingestor = StreamIngestor(stream_store, build_ontology())
        for i, fact in enumerate(facts):
            stamped = fact.with_metadata(sources=("source:s",))
            ingestor.apply(Delta(sequence=i, op=DeltaOp.UPSERT, fact=stamped))
        assert {f.key for f in batch_store.scan()} == {f.key for f in stream_store.scan()}
