"""Tests for the dictionary-encoding and CSR adjacency layer."""

import pytest

from repro.common import fastrand
from repro.common.errors import StoreError
from repro.common.rng import substream
from repro.kg.adjacency import AdjacencyIndex, build_csr
from repro.kg.encoding import Dictionary
from repro.kg.graph_engine import GraphEngine
from repro.kg.store import EntityRecord, TripleStore
from repro.kg.triple import LiteralType, entity_fact, literal_fact


def random_store(seed: int, num_entities: int = 40, num_facts: int = 150) -> TripleStore:
    """A random store with entity edges, literal facts and isolated entities."""
    rng = substream(seed, "adjacency-test")
    store = TripleStore()
    entities = [f"entity:n{i}" for i in range(num_entities)]
    for entity in entities:
        store.upsert_entity(EntityRecord(entity=entity, name=entity.split(":")[1]))
    predicates = [f"predicate:p{j}" for j in range(5)]
    for _ in range(num_facts):
        subject = entities[int(rng.integers(num_entities))]
        predicate = predicates[int(rng.integers(len(predicates)))]
        if rng.random() < 0.8:
            obj = entities[int(rng.integers(num_entities))]
            store.add(entity_fact(subject, predicate, obj))
        else:
            store.add(
                literal_fact(subject, predicate, int(rng.integers(100)), LiteralType.NUMBER)
            )
    return store


def reference_random_walks(store, entities, walk_length, walks_per_entity, seed):
    """The seed implementation the CSR walks must replay byte-for-byte."""
    rng = substream(seed, "random-walks")
    walks = []
    for entity in entities:
        for _ in range(walks_per_entity):
            walk = [entity]
            current = entity
            for _ in range(walk_length - 1):
                neighbors = sorted(store.neighbors(current))
                if not neighbors:
                    break
                current = neighbors[int(rng.integers(len(neighbors)))]
                walk.append(current)
            walks.append(walk)
    return walks


class TestDictionary:
    def test_round_trip(self):
        dictionary = Dictionary()
        ids = [dictionary.intern(s) for s in ("a", "b", "c")]
        assert ids == [0, 1, 2]
        assert [dictionary.string_of(i) for i in ids] == ["a", "b", "c"]
        assert dictionary.decode_many(dictionary.encode_many(["c", "a"])) == ["c", "a"]

    def test_intern_is_idempotent(self):
        dictionary = Dictionary(["x", "y"])
        assert dictionary.intern("x") == 0
        assert dictionary.intern("y") == 1
        assert len(dictionary) == 2

    def test_membership_and_get(self):
        dictionary = Dictionary(["x"])
        assert "x" in dictionary and "z" not in dictionary
        assert dictionary.get("z") is None
        assert dictionary.id_of("x") == 0

    def test_unknowns_raise(self):
        dictionary = Dictionary(["x"])
        with pytest.raises(StoreError):
            dictionary.id_of("zzz")
        with pytest.raises(StoreError):
            dictionary.string_of(5)
        with pytest.raises(StoreError):
            dictionary.encode_many(["x", "zzz"])


class TestCSRSnapshot:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_brute_force_neighbors(self, seed):
        store = random_store(seed)
        snapshot = build_csr(store)
        # Every node string the store knows about, including literal values.
        nodes = set(store.entity_ids())
        for fact in store.scan():
            nodes.add(fact.subject)
            nodes.add(fact.obj)
        for node in nodes:
            assert snapshot.neighbors(node) == store.neighbors(node), node

    def test_rows_sorted_by_string(self):
        store = random_store(4)
        snapshot = build_csr(store)
        strings = snapshot.dictionary.strings()
        for node_id in range(snapshot.num_nodes):
            row = [strings[i] for i in snapshot.neighbors_of(node_id)]
            assert row == sorted(row)

    def test_unknown_node_is_isolated(self):
        snapshot = build_csr(random_store(5))
        assert snapshot.neighbors("entity:never-seen") == set()
        assert snapshot.degree("entity:never-seen") == 0

    def test_neighbor_row_caches_agree(self):
        store = random_store(6)
        snapshot = build_csr(store)
        id_rows = snapshot.neighbor_id_rows()
        string_rows = snapshot.neighbor_string_rows()
        strings = snapshot.dictionary.strings()
        for node_id in range(snapshot.num_nodes):
            assert snapshot.neighbors_of(node_id).tolist() == id_rows[node_id]
            assert [strings[i] for i in id_rows[node_id]] == string_rows[node_id]


class TestInvalidation:
    def test_snapshot_rebuilds_on_store_mutation(self):
        store = random_store(7)
        index = AdjacencyIndex(store)
        first = index.current()
        assert index.current() is first  # cached while version holds
        store.add(entity_fact("entity:n0", "predicate:new", "entity:n1"))
        assert index.is_stale
        second = index.current()
        assert second is not first
        assert "entity:n1" in second.neighbors("entity:n0")
        assert index.rebuild_count == 2

    def test_remove_invalidates_too(self):
        store = TripleStore()
        store.add(entity_fact("entity:a", "predicate:p", "entity:b"))
        engine = GraphEngine(store)
        assert engine.neighborhood("entity:a") == {"entity:b"}
        store.remove("entity:a", "predicate:p", "entity:b")
        assert engine.neighborhood("entity:a") == set()


class TestTraversalEquivalence:
    @pytest.mark.parametrize("seed", [11, 12])
    def test_walks_byte_identical_to_reference(self, seed):
        store = random_store(seed)
        engine = GraphEngine(store)
        entities = sorted(store.entity_ids())
        for walk_seed in (0, 5):
            expected = reference_random_walks(store, entities, 8, 3, walk_seed)
            actual = engine.random_walks(entities, walk_length=8, walks_per_entity=3, seed=walk_seed)
            assert actual == expected

    def test_walk_determinism_same_seed(self):
        engine = GraphEngine(random_store(13))
        entities = sorted(engine.store.entity_ids())[:10]
        first = engine.random_walks(entities, walk_length=6, walks_per_entity=2, seed=9)
        second = engine.random_walks(entities, walk_length=6, walks_per_entity=2, seed=9)
        assert first == second

    def test_walks_from_unknown_entity(self):
        engine = GraphEngine(random_store(14))
        walks = engine.random_walks(["entity:ghost"], walk_length=4, walks_per_entity=2)
        assert walks == [["entity:ghost"], ["entity:ghost"]]

    def test_co_neighbor_counts_match_brute_force(self):
        store = random_store(15)
        engine = GraphEngine(store)
        for entity in sorted(store.entity_ids()):
            expected: dict[str, int] = {}
            for neighbor in store.neighbors(entity):
                for second in store.neighbors(neighbor):
                    if second != entity:
                        expected[second] = expected.get(second, 0) + 1
            assert dict(engine.co_neighbor_counts(entity)) == expected

    def test_neighborhood_matches_brute_force(self):
        store = random_store(16)
        engine = GraphEngine(store)
        for entity in sorted(store.entity_ids())[:15]:
            for hops in (0, 1, 2, 3):
                frontier = {entity}
                visited = {entity}
                for _ in range(hops):
                    frontier = {
                        n for node in frontier for n in store.neighbors(node)
                    } - visited
                    visited |= frontier
                assert engine.neighborhood(entity, hops) == visited - {entity}

    def test_degree_distribution_counts_fact_multiplicity(self):
        store = TripleStore()
        store.add(entity_fact("entity:a", "predicate:p", "entity:b"))
        store.add(entity_fact("entity:a", "predicate:q", "entity:b"))
        store.add(literal_fact("entity:a", "predicate:h", 1, LiteralType.NUMBER))
        degrees = GraphEngine(store).degree_distribution()
        assert degrees == {"entity:a": 2, "entity:b": 2}


class TestFastrand:
    def test_lemire_replays_generator_integers(self):
        if not fastrand.lemire_matches_numpy():
            pytest.skip("this numpy does not use the replicated Lemire scheme")
        rng = substream(3, "random-walks")
        sampler = fastrand.Lemire32(substream(3, "random-walks"))
        bounds = [int(b) for b in substream(0, "bounds").integers(1, 40, size=500)]
        bounds += [1, 2, 4, 8, 16, 1, 3, 65536]
        assert [sampler.randbelow(b) for b in bounds] == [int(rng.integers(b)) for b in bounds]

    def test_walks_correct_even_without_lemire(self, monkeypatch):
        """The fallback sampler must produce the same byte-identical walks."""
        store = random_store(17)
        engine = GraphEngine(store)
        entities = sorted(store.entity_ids())[:10]
        expected = engine.random_walks(entities, walk_length=6, walks_per_entity=2, seed=4)
        monkeypatch.setattr(fastrand, "lemire_matches_numpy", lambda: False)
        actual = engine.random_walks(entities, walk_length=6, walks_per_entity=2, seed=4)
        assert actual == expected
