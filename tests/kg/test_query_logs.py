"""Tests for query-log synthesis and analysis."""

from repro.common import ids
from repro.kg.generator import SYNTHETIC_NOW
from repro.kg.query_logs import QueryLogAnalyzer, QueryLogEntry, synthesize_query_log
from repro.kg.store import EntityRecord, TripleStore
from repro.kg.triple import LiteralType, literal_fact

DOB = ids.predicate_id("date_of_birth")
WEEK = 7 * 24 * 3600.0


def _store_with_gap():
    store = TripleStore()
    store.upsert_entity(
        EntityRecord(entity="entity:covered", name="C", popularity=0.9)
    )
    store.upsert_entity(
        EntityRecord(entity="entity:missing", name="M", popularity=0.9)
    )
    store.add(
        literal_fact("entity:covered", DOB, "1980-01-01", LiteralType.DATE)
    )
    return store


class TestSynthesis:
    def test_answered_reflects_store(self):
        store = _store_with_gap()
        log = synthesize_query_log(store, [DOB], 500, now=SYNTHETIC_NOW, seed=1)
        for entry in log:
            expected = bool(store.objects(entry.entity, DOB))
            assert entry.answered == expected

    def test_deterministic(self):
        store = _store_with_gap()
        a = synthesize_query_log(store, [DOB], 100, now=SYNTHETIC_NOW, seed=2)
        b = synthesize_query_log(store, [DOB], 100, now=SYNTHETIC_NOW, seed=2)
        assert a == b

    def test_empty_inputs(self):
        assert synthesize_query_log(TripleStore(), [DOB], 10, now=0.0) == []
        assert synthesize_query_log(_store_with_gap(), [], 10, now=0.0) == []

    def test_timestamps_in_window(self):
        store = _store_with_gap()
        log = synthesize_query_log(
            store, [DOB], 50, now=SYNTHETIC_NOW, window_seconds=WEEK, seed=3
        )
        assert all(SYNTHETIC_NOW - WEEK <= e.timestamp <= SYNTHETIC_NOW for e in log)

    def test_trending_burst_included(self):
        store = _store_with_gap()
        log = synthesize_query_log(
            store, [DOB], 100, now=SYNTHETIC_NOW, seed=4,
            trending_entities=["entity:missing"],
        )
        burst = [e for e in log if e.entity == "entity:missing"]
        assert len(burst) >= 3


class TestAnalyzer:
    def test_unanswered_demand_ranked(self):
        store = _store_with_gap()
        log = synthesize_query_log(store, [DOB], 400, now=SYNTHETIC_NOW, seed=5)
        demand = QueryLogAnalyzer(log).unanswered_demand()
        assert demand, "expected unanswered demand for the gap entity"
        assert demand[0].entity == "entity:missing"
        assert demand[0].query_count >= demand[-1].query_count

    def test_answer_rate(self):
        entries = [
            QueryLogEntry("entity:a", DOB, 0.0, True),
            QueryLogEntry("entity:a", DOB, 1.0, False),
        ]
        assert QueryLogAnalyzer(entries).answer_rate() == 0.5
        assert QueryLogAnalyzer([]).answer_rate() == 1.0

    def test_min_count_filter(self):
        entries = [QueryLogEntry("entity:a", DOB, 0.0, False)]
        assert QueryLogAnalyzer(entries).unanswered_demand(min_count=2) == []

    def test_trending_detection(self):
        now = 1000.0 * WEEK
        entries = []
        # steady entity: equal traffic in both windows.
        for i in range(4):
            entries.append(QueryLogEntry("entity:steady", DOB, now - 1.5 * WEEK, True))
            entries.append(QueryLogEntry("entity:steady", DOB, now - 0.5 * WEEK, True))
        # spiking entity: traffic only in the recent window.
        for i in range(6):
            entries.append(QueryLogEntry("entity:spike", DOB, now - 0.2 * WEEK, True))
        trending = QueryLogAnalyzer(entries).trending_entities(now, WEEK)
        assert "entity:spike" in trending
        assert "entity:steady" not in trending
