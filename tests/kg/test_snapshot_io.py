"""Tests for zero-copy snapshot persistence (save_snapshot/load_snapshot).

Covers the adopt-or-rebuild contract (stale store versions fall back to a
rebuild), corruption detection (truncated/flipped bytes and checksum
mismatches raise ``StoreError``, never garbage results), growth after
load (dictionary interning, context-index appends over a read-only mmap
base) and byte-identical parity of loaded vs rebuilt serving outputs.
"""

import json

import numpy as np
import pytest

from repro.annotation.alias_table import AliasTable, load_alias_state, save_alias_table
from repro.annotation.context_encoder import (
    EntityContextIndex,
    load_context_arrays,
    save_context_index,
)
from repro.annotation.pipeline import make_pipeline
from repro.common.errors import StoreError
from repro.common.snapshot_io import (
    SnapshotStaleError,
    load_arrays,
    pack_strings,
    unpack_strings,
    write_arrays,
)
from repro.kg.adjacency import AdjacencyIndex, build_csr, load_adjacency, save_adjacency
from repro.kg.encoding import Dictionary
from repro.kg.graph_engine import GraphEngine
from repro.kg.persistence import (
    SnapshotStore,
    load_snapshot,
    load_store,
    save_snapshot,
)
from repro.kg.store import EntityRecord, TripleStore
from repro.kg.triple import LiteralType, entity_fact, literal_fact


def small_store(num_entities: int = 12) -> TripleStore:
    store = TripleStore()
    for i in range(num_entities):
        store.upsert_entity(
            EntityRecord(
                entity=f"entity:n{i}",
                name=f"Node {i}",
                aliases=(f"N-{i}",),
                description=f"node number {i} of the test graph",
                popularity=float(i + 1),
            )
        )
    for i in range(num_entities):
        store.add(
            entity_fact(
                f"entity:n{i}", "predicate:linked_to", f"entity:n{(i + 3) % num_entities}"
            )
        )
        store.add(
            literal_fact(f"entity:n{i}", "predicate:size", i * 10, LiteralType.NUMBER)
        )
    return store


# -- snapshot_io primitives ---------------------------------------------------


def test_pack_strings_round_trip_unicode():
    strings = ["", "plain", "ünïcode — ✓", "a b c", "entity:q1"]
    blob, offsets = pack_strings(strings)
    assert unpack_strings(blob, offsets) == strings


def test_write_load_arrays_round_trip(tmp_path):
    arrays = {
        "a": np.arange(10, dtype=np.int64),
        "b": np.linspace(0, 1, 7, dtype=np.float64),
    }
    write_arrays(tmp_path, arrays, kind="test", store_version=5)
    manifest, loaded = load_arrays(tmp_path, kind="test", expected_store_version=5)
    assert manifest["store_version"] == 5
    for name in arrays:
        np.testing.assert_array_equal(np.asarray(loaded[name]), arrays[name])
    # mmap mode returns read-only maps
    assert not loaded["a"].flags.writeable


def test_load_arrays_stale_version_raises_stale(tmp_path):
    write_arrays(tmp_path, {"a": np.arange(3)}, kind="test", store_version=1)
    with pytest.raises(SnapshotStaleError):
        load_arrays(tmp_path, kind="test", expected_store_version=2)


def test_load_arrays_kind_mismatch(tmp_path):
    write_arrays(tmp_path, {"a": np.arange(3)}, kind="test", store_version=1)
    with pytest.raises(StoreError):
        load_arrays(tmp_path, kind="other")


def test_corrupted_array_raises_store_error(tmp_path):
    write_arrays(tmp_path, {"a": np.arange(64, dtype=np.int64)}, kind="test", store_version=1)
    path = tmp_path / "a.npy"
    raw = bytearray(path.read_bytes())
    raw[-5] ^= 0xFF  # flip a data byte: checksum must catch it
    path.write_bytes(bytes(raw))
    with pytest.raises(StoreError, match="checksum"):
        load_arrays(tmp_path, kind="test")


def test_truncated_array_raises_store_error(tmp_path):
    write_arrays(tmp_path, {"a": np.arange(64, dtype=np.int64)}, kind="test", store_version=1)
    path = tmp_path / "a.npy"
    path.write_bytes(path.read_bytes()[:40])
    with pytest.raises(StoreError):
        load_arrays(tmp_path, kind="test")
    # even with checksums off, the shape/dtype guard refuses to serve it
    with pytest.raises(StoreError):
        load_arrays(tmp_path, kind="test", verify=False)


def test_missing_array_raises_store_error(tmp_path):
    write_arrays(tmp_path, {"a": np.arange(3)}, kind="test", store_version=1)
    (tmp_path / "a.npy").unlink()
    with pytest.raises(StoreError, match="missing"):
        load_arrays(tmp_path, kind="test")


# -- dictionary ----------------------------------------------------------------


def test_dictionary_round_trip_and_growth():
    dictionary = Dictionary(["alpha", "beta", "gamma — δ"])
    blob, offsets = dictionary.to_arrays()
    restored = Dictionary.from_arrays(blob, offsets)
    assert restored.strings() == dictionary.strings()
    assert restored.id_of("beta") == 1
    # growth after load: next dense id, lookup in both directions
    new_id = restored.intern("delta")
    assert new_id == 3
    assert restored.intern("delta") == 3  # idempotent
    assert restored.string_of(3) == "delta"
    assert restored.id_of("alpha") == 0
    assert len(restored) == 4


# -- adjacency -----------------------------------------------------------------


def test_adjacency_round_trip_identical(tmp_path):
    store = small_store()
    snapshot = build_csr(store)
    save_adjacency(snapshot, tmp_path)
    loaded = load_adjacency(tmp_path, expected_store_version=store.version)
    np.testing.assert_array_equal(np.asarray(loaded.indptr), snapshot.indptr)
    np.testing.assert_array_equal(np.asarray(loaded.indices), snapshot.indices)
    np.testing.assert_array_equal(
        np.asarray(loaded.entity_edge_degrees), snapshot.entity_edge_degrees
    )
    assert loaded.dictionary.strings() == snapshot.dictionary.strings()
    assert loaded.predicate_counts == snapshot.predicate_counts
    assert loaded.built_version == snapshot.built_version
    assert loaded.neighbors("entity:n0") == store.neighbors("entity:n0")


def test_adjacency_adopt_requires_current_version(tmp_path):
    store = small_store()
    snapshot = build_csr(store)
    save_adjacency(snapshot, tmp_path)
    loaded = load_adjacency(tmp_path)

    index = AdjacencyIndex(store)
    assert index.adopt(loaded)
    assert index.current() is loaded
    assert index.rebuild_count == 0

    # stale snapshot (store moved): adoption refused, rebuild happens
    store.add(entity_fact("entity:n0", "predicate:linked_to", "entity:n5"))
    assert not index.adopt(loaded)
    rebuilt = index.current()
    assert rebuilt is not loaded
    assert rebuilt.built_version == store.version


def test_engine_adopts_loaded_snapshot(tmp_path):
    store = small_store()
    reference = GraphEngine(store)
    seeds = sorted(store.entity_ids())
    expected = reference.random_walks(seeds, walk_length=6, walks_per_entity=2, seed=11)

    save_adjacency(reference.snapshot(), tmp_path)
    loaded = load_adjacency(tmp_path)
    engine = GraphEngine(store, snapshot=loaded)
    assert engine.peek_snapshot() is loaded
    walks = engine.random_walks(seeds, walk_length=6, walks_per_entity=2, seed=11)
    assert walks == expected


# -- context index -------------------------------------------------------------


def test_context_round_trip_bitwise_and_growth(tmp_path):
    store = small_store()
    index = EntityContextIndex(store)
    index.build()
    save_context_index(index, tmp_path)

    matrix, entities, version, extra = load_context_arrays(
        tmp_path, expected_store_version=store.version
    )
    adopted = EntityContextIndex(store)
    assert adopted.adopt(matrix, entities, version)
    assert extra["dim"] == index.encoder.dim
    for entity in store.entity_ids():
        np.testing.assert_array_equal(adopted.vector(entity), index.vector(entity))

    # growth over the read-only mmap base: new entity appends must copy,
    # not write through the map
    store.upsert_entity(
        EntityRecord(entity="entity:new", name="Newcomer", description="fresh")
    )
    vec = adopted.vector("entity:new")
    assert vec.shape == (index.encoder.dim,)
    np.testing.assert_array_equal(
        np.asarray(matrix), index._matrix.view()
    )  # base untouched


def test_context_adopt_requires_current_version(tmp_path):
    store = small_store()
    index = EntityContextIndex(store)
    index.build()
    save_context_index(index, tmp_path)
    matrix, entities, version, _ = load_context_arrays(tmp_path)

    store.add(entity_fact("entity:n1", "predicate:linked_to", "entity:n7"))
    fresh = EntityContextIndex(store)
    assert not fresh.adopt(matrix, entities, version)
    assert fresh.is_stale  # consumer will rebuild


def test_save_stale_context_index_refused(tmp_path):
    store = small_store()
    index = EntityContextIndex(store)
    index.build()
    store.add(entity_fact("entity:n2", "predicate:linked_to", "entity:n9"))
    with pytest.raises(StoreError):
        save_context_index(index, tmp_path)


# -- alias table ---------------------------------------------------------------


def test_alias_state_round_trip(tmp_path):
    store = small_store()
    table = AliasTable(store)
    save_alias_table(table, tmp_path)
    state, version, extra = load_alias_state(
        tmp_path, expected_store_version=store.version
    )
    adopted = AliasTable(store, refresh=False)
    assert adopted.adopt_state(state, version)
    assert not adopted.is_stale
    assert len(adopted) == len(table)
    assert adopted.lookup("Node 3") == table.lookup("Node 3")
    assert adopted.lookup_fuzzy("Nod 3") == table.lookup_fuzzy("Nod 3")
    assert adopted.trie == table.trie
    assert adopted.max_key_tokens() == table.max_key_tokens()
    assert extra["keys"] == len(table)


def test_alias_adopt_requires_current_version(tmp_path):
    store = small_store()
    table = AliasTable(store)
    save_alias_table(table, tmp_path)
    state, version, _ = load_alias_state(tmp_path)
    store.upsert_entity(EntityRecord(entity="entity:new", name="Newcomer"))
    adopted = AliasTable(store, refresh=False)
    assert not adopted.adopt_state(state, version)
    assert adopted.is_stale


def test_alias_corrupt_sidecar_raises(tmp_path):
    store = small_store()
    save_alias_table(AliasTable(store), tmp_path)
    path = tmp_path / "state.marshal"
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    path.write_bytes(bytes(raw))
    with pytest.raises(StoreError, match="checksum"):
        load_alias_state(tmp_path)


# -- full bundle ---------------------------------------------------------------


def test_bundle_round_trip_parity(tmp_path):
    store = small_store(num_entities=20)
    save_snapshot(store, tmp_path)

    rebuilt_store = load_store(tmp_path)  # a bundle is a superset of a saved store
    rebuilt_engine = GraphEngine(rebuilt_store)
    seeds = sorted(rebuilt_store.entity_ids())
    expected_walks = rebuilt_engine.random_walks(
        seeds, walk_length=6, walks_per_entity=2, seed=5
    )
    rebuilt_pipe = make_pipeline(rebuilt_store, tier="full")

    snap = load_snapshot(tmp_path)
    assert snap.adjacency is not None
    assert snap.context is not None
    assert snap.alias is not None
    engine = snap.engine()
    walks = engine.random_walks(seeds, walk_length=6, walks_per_entity=2, seed=5)
    assert walks == expected_walks

    pipe = snap.annotation_pipeline(tier="full")
    text = "Node 3 talked to Node 7 about Node 11 and N-4."
    expected_links = rebuilt_pipe.annotate(text)
    links = pipe.annotate(text)
    assert [
        (link.mention.start, link.mention.end, link.entity, link.score)
        for link in links
    ] == [
        (link.mention.start, link.mention.end, link.entity, link.score)
        for link in expected_links
    ]


def test_bundle_lazy_facts_replay(tmp_path):
    store = small_store()
    save_snapshot(store, tmp_path)
    snap = load_snapshot(tmp_path)
    lazy = snap.store
    assert isinstance(lazy, SnapshotStore)
    assert not lazy._facts_loaded
    # entity surface never triggers the fact replay
    assert lazy.has_entity("entity:n0")
    assert lazy.entity("entity:n3").name == "Node 3"
    assert not lazy._facts_loaded
    # version is pinned to the bundle's saved store version
    assert lazy.version == store.version
    # first fact access replays transparently, without moving the version
    assert len(lazy) == len(store)
    assert lazy._facts_loaded
    assert lazy.version == store.version
    assert lazy.neighbors("entity:n0") == store.neighbors("entity:n0")


def test_bundle_mutation_after_load_invalidates_layers(tmp_path):
    store = small_store()
    save_snapshot(store, tmp_path)
    snap = load_snapshot(tmp_path)
    engine = snap.engine()
    assert engine.peek_snapshot() is snap.adjacency

    snap.store.add(entity_fact("entity:n1", "predicate:linked_to", "entity:n8"))
    assert engine.peek_snapshot() is None  # adopted snapshot went stale
    rebuilt = engine.snapshot()
    assert rebuilt.built_version == snap.store.version
    assert "entity:n8" in rebuilt.neighbors("entity:n1")


def test_bundle_stale_layer_falls_back_to_rebuild(tmp_path):
    store = small_store()
    save_snapshot(store, tmp_path)
    # Re-save the logical store after a mutation WITHOUT re-saving the
    # physical layers: their manifests now carry a stale store_version.
    store.add(entity_fact("entity:n0", "predicate:linked_to", "entity:n6"))
    from repro.kg.persistence import SNAPSHOT_MANIFEST, save_store

    save_store(store, tmp_path)
    manifest = json.loads((tmp_path / SNAPSHOT_MANIFEST).read_text())
    manifest["store_version"] = store.version
    (tmp_path / SNAPSHOT_MANIFEST).write_text(json.dumps(manifest))

    snap = load_snapshot(tmp_path)
    assert snap.adjacency is None
    assert snap.context is None
    assert snap.alias is None
    # consumers transparently rebuild from the live store
    engine = snap.engine()
    assert "entity:n6" in engine.snapshot().neighbors("entity:n0")
    pipe = snap.annotation_pipeline(tier="full")
    assert pipe.annotate("Node 2 met Node 5.")


def test_bundle_corruption_raises_not_garbage(tmp_path):
    store = small_store()
    save_snapshot(store, tmp_path)
    path = tmp_path / "adjacency" / "indices.npy"
    raw = bytearray(path.read_bytes())
    raw[-3] ^= 0x42
    path.write_bytes(bytes(raw))
    with pytest.raises(StoreError, match="checksum"):
        load_snapshot(tmp_path)


def test_bundle_missing_manifest(tmp_path):
    with pytest.raises(StoreError, match="snapshot"):
        load_snapshot(tmp_path)


def test_truncated_fact_log_keeps_raising_not_partial(tmp_path):
    store = small_store()
    save_snapshot(store, tmp_path)
    facts_path = tmp_path / "facts.jsonl"
    raw = facts_path.read_text().splitlines(keepends=True)
    facts_path.write_text("".join(raw[: len(raw) // 2]) + '{"broken')  # truncate mid-record

    snap = load_snapshot(tmp_path)
    with pytest.raises(Exception):
        len(snap.store)
    # a second access must raise again, never serve the partial prefix
    with pytest.raises(Exception):
        list(snap.store.scan())


def test_growable_append_after_empty_adopt():
    from repro.common.growable import GrowableMatrix

    matrix = GrowableMatrix(dtype=np.float64)
    matrix.adopt(np.zeros((0, 4), dtype=np.float64))
    matrix.append(np.ones(4, dtype=np.float64))
    assert len(matrix) == 1
    np.testing.assert_array_equal(matrix.view()[0], np.ones(4))


def test_make_pipeline_refreshes_stale_alias_table():
    store = small_store()
    table = AliasTable(store, refresh=False)
    assert table.is_stale
    pipe = make_pipeline(store, tier="lite", alias_table=table)
    assert not table.is_stale
    assert pipe.annotate("Node 4 visited Node 9.")


def test_alias_fuzzy_threshold_restored(tmp_path):
    store = small_store()
    save_snapshot(store, tmp_path, alias_table=AliasTable(store, fuzzy_threshold=0.9))
    snap = load_snapshot(tmp_path)
    assert snap.alias_table().fuzzy_threshold == 0.9
    assert snap.alias_table(fuzzy_threshold=0.5).fuzzy_threshold == 0.5


def test_context_neighbor_limit_restored(tmp_path):
    store = small_store()
    index = EntityContextIndex(store, neighbor_limit=3)
    index.build()
    save_snapshot(store, tmp_path, context_index=index)
    snap = load_snapshot(tmp_path)
    assert snap.context_index().neighbor_limit == 3


def test_missing_marshal_sidecar_spec_is_corrupt(tmp_path):
    store = small_store()
    save_alias_table(AliasTable(store), tmp_path)
    manifest_path = tmp_path / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    del manifest["sidecar"]
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(StoreError, match="sidecar spec"):
        load_alias_state(tmp_path)


def test_dictionary_grown_after_bundle_load(tmp_path):
    store = small_store()
    save_snapshot(store, tmp_path)
    snap = load_snapshot(tmp_path)
    dictionary = snap.adjacency.dictionary
    size = len(dictionary)
    new_id = dictionary.intern("entity:brand_new")
    assert new_id == size
    assert dictionary.string_of(new_id) == "entity:brand_new"
    assert dictionary.id_of("entity:brand_new") == new_id
