"""Delta-chain bundles: publish/merge parity, edge cases, crash safety."""

import json

import numpy as np
import pytest

from repro.annotation.alias_table import AliasTable
from repro.annotation.context_encoder import EntityContextIndex
from repro.common import ids
from repro.common.errors import StoreError
from repro.kg import SyntheticKGConfig, generate_kg
from repro.kg.adjacency import build_csr
from repro.kg.deltas import (
    CHAIN_NAME,
    SITE_PUBLISH_CHAIN,
    SITE_PUBLISH_DELTA,
    GenerationPublisher,
    published_version,
    read_chain,
)
from repro.kg.persistence import load_snapshot, save_snapshot
from repro.kg.store import EntityRecord
from repro.kg.triple import LiteralType, entity_fact, literal_fact
from repro.serving.faults import FaultPlan, FaultSpec, InjectedCrash, armed

RELATED = ids.predicate_id("related_to")
NOTE = ids.predicate_id("note")


@pytest.fixture()
def world(tmp_path):
    """A small fresh KG (mutable per test) plus its publisher bundle."""
    kg = generate_kg(SyntheticKGConfig(seed=11, scale=0.05))
    publisher = GenerationPublisher(kg.store, tmp_path / "bundle", embeddings=False)
    return kg.store, publisher, tmp_path / "bundle"


def _mutate(store, round_no: int) -> list[tuple[str, str, str]]:
    """Apply one round of mixed mutations; returns the touched keys."""
    entity_ids = store.entity_ids()
    a, b, c = (
        entity_ids[round_no % len(entity_ids)],
        entity_ids[(round_no * 3 + 1) % len(entity_ids)],
        entity_ids[(round_no * 7 + 2) % len(entity_ids)],
    )
    facts = [
        entity_fact(a, RELATED, b, confidence=0.9, sources=("live",), updated_at=1.0 + round_no),
        literal_fact(c, NOTE, f"note {round_no}", LiteralType.STRING, confidence=0.8, sources=("live",), updated_at=1.0 + round_no),
    ]
    for fact in facts:
        store.add(fact)
    return [fact.key for fact in facts]


def _rows(csr, node):
    node_id = csr.dictionary.get(node)
    if node_id is None:
        return set()
    return {csr.dictionary.string_of(int(i)) for i in csr.neighbors_of(node_id)}


def _assert_full_parity(store, bundle):
    """Chain-loaded snapshot == from-scratch rebuild, layer by layer."""
    snapshot = load_snapshot(bundle)
    assert snapshot.manifest["store_version"] == store.version

    # Logical store: identical facts with identical metadata.
    chain_facts = {fact.key: fact for fact in snapshot.store.scan()}
    live_facts = {fact.key: fact for fact in store.scan()}
    assert chain_facts == live_facts
    assert set(snapshot.store.entity_ids()) == set(store.entity_ids())

    # Adjacency: every row and degree matches a full rebuild.
    full = build_csr(store)
    merged = snapshot.adjacency
    assert merged is not None and merged.built_version == store.version
    assert merged.num_edges == full.num_edges
    for node in full.dictionary.strings():
        assert _rows(full, node) == _rows(merged, node), node
        assert full.degree(node) == merged.degree(node), node
    assert merged.predicate_counts == full.predicate_counts

    # Context: numerically identical vectors per entity.
    index = EntityContextIndex(store)
    index.build()
    matrix, entities, version, _extra = snapshot.context
    assert version == store.version
    assert sorted(entities) == sorted(store.entity_ids())
    row_of = {entity: i for i, entity in enumerate(entities)}
    for entity in store.entity_ids():
        np.testing.assert_array_equal(matrix[row_of[entity]], index.vector(entity))

    # Alias: bitwise-equal state versus a full refresh.
    fresh = AliasTable(store).state()
    state, alias_version, _extra = snapshot.alias
    assert alias_version == store.version
    assert set(state["exact"]) == set(fresh["exact"])
    for key, entries in fresh["exact"].items():
        assert [tuple(e) for e in state["exact"][key]] == [tuple(e) for e in entries], key
    assert state["trie"] == fresh["trie"]
    assert set(state["key_grams"]) == set(fresh["key_grams"])
    for key, grams in fresh["key_grams"].items():
        assert dict(state["key_grams"][key]) == dict(grams), key
    return snapshot


class TestPublishParity:
    def test_streamed_generations_match_full_rebuild(self, world):
        store, publisher, bundle = world
        for round_no in range(3):
            publisher.record(keys=_mutate(store, round_no))
            info = publisher.publish()
            assert info is not None
            assert info.store_version == store.version
        assert publisher.chain_length == 3
        _assert_full_parity(store, bundle)

    def test_new_entity_and_record_update(self, world):
        store, publisher, bundle = world
        new = EntityRecord(
            entity=ids.entity_id("fresh_e1"),
            name="Freshly Added",
            aliases=("The Fresh One",),
            types=("type:person",),
            description="a brand new entity",
            popularity=0.7,
        )
        store.upsert_entity(new)
        anchor = store.entity_ids()[0]
        fact = entity_fact(new.entity, RELATED, anchor, confidence=1.0, sources=("live",), updated_at=9.0)
        store.add(fact)
        publisher.record(keys=[fact.key], entities=[new.entity])
        assert publisher.publish() is not None
        snapshot = _assert_full_parity(store, bundle)
        state, _v, _e = snapshot.alias
        assert any("freshly" in key for key in state["exact"])

        # Second generation: rename an existing entity (alias keys move).
        record = store.entity(anchor)
        renamed = EntityRecord(
            entity=record.entity,
            name=record.name + " Jr",
            aliases=record.aliases,
            types=record.types,
            description=record.description,
            popularity=record.popularity,
        )
        store.upsert_entity(renamed)
        publisher.record(entities=[anchor])
        assert publisher.publish() is not None
        _assert_full_parity(store, bundle)

    def test_publish_without_changes_returns_none(self, world):
        store, publisher, _bundle = world
        assert publisher.publish() is None
        # Recorded keys but no actual store mutation: still a no-op.
        publisher.record(keys=[(store.entity_ids()[0], RELATED, store.entity_ids()[1])])
        assert publisher.publish() is None
        assert publisher.pending == 0

    def test_published_version_tracks_tip(self, world):
        store, publisher, bundle = world
        assert published_version(bundle) == publisher.tip_version == store.version
        publisher.record(keys=_mutate(store, 0))
        publisher.publish()
        assert published_version(bundle) == store.version

    def test_adopts_pre_chain_bundle(self, tmp_path):
        kg = generate_kg(SyntheticKGConfig(seed=3, scale=0.05))
        bundle = tmp_path / "plain"
        save_snapshot(kg.store, bundle, embeddings=False)
        assert not (bundle / CHAIN_NAME).exists()
        publisher = GenerationPublisher(kg.store, bundle, embeddings=False)
        assert (bundle / CHAIN_NAME).exists()
        publisher.record(keys=_mutate(kg.store, 1))
        assert publisher.publish() is not None
        _assert_full_parity(kg.store, bundle)


class TestDeltaEdgeCases:
    def test_delete_then_readd_row(self, world):
        store, publisher, bundle = world
        victim = next(iter(store.scan()))
        store.remove(*victim.key)
        publisher.record(keys=[victim.key])
        publisher.publish()
        snapshot = load_snapshot(bundle)
        assert snapshot.store.get(*victim.key) is None

        # Re-add the same key with brand new metadata: the chain must
        # serve the re-added fact, not a merge with the deleted one.
        readded = victim.with_metadata(confidence=0.42, sources=("readd",), updated_at=99.0)
        store.add(readded)
        publisher.record(keys=[readded.key])
        publisher.publish()
        snapshot = _assert_full_parity(store, bundle)
        served = snapshot.store.get(*readded.key)
        assert served.confidence == 0.42
        assert served.sources == ("readd",)

        # Delete-then-readd inside one generation collapses to the end state.
        store.remove(*readded.key)
        final = readded.with_metadata(confidence=0.9, sources=("final",), updated_at=100.0)
        store.add(final)
        publisher.record(keys=[final.key])
        publisher.publish()
        snapshot = load_snapshot(bundle)
        assert snapshot.store.get(*final.key).sources == ("final",)
        _assert_full_parity(store, bundle)

    def test_chain_longer_than_compaction_threshold(self, tmp_path):
        kg = generate_kg(SyntheticKGConfig(seed=11, scale=0.05))
        publisher = GenerationPublisher(
            kg.store, tmp_path / "bundle", compact_every=3, embeddings=False
        )
        infos = []
        for round_no in range(4):
            publisher.record(keys=_mutate(kg.store, round_no))
            infos.append(publisher.publish())
            # Compaction runs off the publish path; drain it so each
            # round observes a settled chain.
            assert publisher.join_compaction(timeout=30.0)
        # The third publish crossed the threshold and scheduled the fold.
        assert infos[2].compacted
        assert not infos[3].compacted
        assert publisher.chain_length == 1
        chain = read_chain(tmp_path / "bundle")
        assert chain["compactions"] == 1
        assert chain["base"].startswith("bases/")
        _assert_full_parity(kg.store, tmp_path / "bundle")

    def test_stale_delta_manifest_silently_rebuilds(self, world):
        store, publisher, bundle = world
        publisher.record(keys=_mutate(store, 0))
        info = publisher.publish()
        manifest_path = info.directory / "manifest.json"
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["store_version"] = manifest["store_version"] - 1
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")

        snapshot = load_snapshot(bundle)
        # Physical overlays dropped, logical replay intact: consumers
        # rebuild from the store, the adopt-or-rebuild contract.
        assert snapshot.adjacency is None
        assert snapshot.context is None
        assert snapshot.alias is None
        assert {f.key for f in snapshot.store.scan()} == {f.key for f in store.scan()}
        engine = snapshot.engine()
        rebuilt = engine.snapshot()
        assert rebuilt.built_version == store.version

    def test_corrupt_delta_array_raises(self, world):
        store, publisher, bundle = world
        publisher.record(keys=_mutate(store, 0))
        info = publisher.publish()
        target = info.directory / "changed_nodes.npy"
        target.write_bytes(target.read_bytes()[:-4] + b"\xff\xff\xff\xff")
        with pytest.raises(StoreError):
            load_snapshot(bundle)

    def test_broken_chain_linkage_raises(self, world):
        store, publisher, bundle = world
        publisher.record(keys=_mutate(store, 0))
        publisher.publish()
        chain_path = bundle / CHAIN_NAME
        chain = json.loads(chain_path.read_text(encoding="utf-8"))
        chain["deltas"][0]["parent_version"] += 5
        chain_path.write_text(json.dumps(chain), encoding="utf-8")
        with pytest.raises(StoreError, match="linkage"):
            load_snapshot(bundle)

    def test_chain_referencing_missing_delta_raises(self, world):
        store, publisher, bundle = world
        publisher.record(keys=_mutate(store, 0))
        info = publisher.publish()
        import shutil

        shutil.rmtree(info.directory)
        with pytest.raises(StoreError, match="missing delta"):
            load_snapshot(bundle)

    def test_corrupt_chain_json_raises(self, world):
        _store, publisher, bundle = world
        (bundle / CHAIN_NAME).write_text("{not json", encoding="utf-8")
        with pytest.raises(StoreError, match="chain"):
            load_snapshot(bundle)


class TestCrashSafety:
    @pytest.mark.parametrize("site", [SITE_PUBLISH_DELTA, SITE_PUBLISH_CHAIN])
    def test_crash_mid_publish_never_serves_half_generation(self, world, site):
        store, publisher, bundle = world
        tip_before = publisher.tip_version
        publisher.record(keys=_mutate(store, 0))
        plan = FaultPlan(
            specs=[FaultSpec(site=site, kind="crash", at_calls=(1,))], seed=5
        )
        with armed(plan):
            with pytest.raises(InjectedCrash):
                publisher.publish()

        # Readers still load the previous generation, fully intact.
        assert published_version(bundle) == tip_before
        snapshot = load_snapshot(bundle)
        assert snapshot.manifest["store_version"] == tip_before
        assert snapshot.adjacency is not None

        # The pending set survived: a clean retry publishes everything.
        assert publisher.pending > 0
        info = publisher.publish()
        assert info is not None and info.store_version == store.version
        _assert_full_parity(store, bundle)
