"""Tests for store save/load."""

import pytest

from repro.common.errors import StoreError
from repro.kg.persistence import load_store, save_store
from repro.kg.store import TripleStore


class TestRoundtrip:
    def test_full_roundtrip(self, kg, tmp_path):
        counts = save_store(kg.store, tmp_path / "world")
        assert counts["facts"] == len(kg.store)
        loaded = load_store(tmp_path / "world")
        assert loaded.name == kg.store.name
        assert {f.key for f in loaded.scan()} == {f.key for f in kg.store.scan()}
        assert set(loaded.entity_ids()) == set(kg.store.entity_ids())

    def test_metadata_preserved(self, kg, tmp_path):
        save_store(kg.store, tmp_path / "world")
        loaded = load_store(tmp_path / "world")
        original = next(iter(kg.store.scan()))
        clone = loaded.get(*original.key)
        assert clone is not None
        assert clone.confidence == original.confidence
        assert clone.sources == original.sources
        assert clone.updated_at == original.updated_at

    def test_entity_descriptors_preserved(self, kg, tmp_path):
        save_store(kg.store, tmp_path / "world")
        loaded = load_store(tmp_path / "world")
        entity = kg.store.entity_ids()[0]
        assert loaded.entity(entity) == kg.store.entity(entity)

    def test_loaded_store_is_queryable(self, kg, tmp_path):
        save_store(kg.store, tmp_path / "world")
        loaded = load_store(tmp_path / "world")
        person = next(
            r.entity for r in kg.store.entities() if "type:person" in r.types
        )
        assert loaded.objects(person, "predicate:occupation") == kg.store.objects(
            person, "predicate:occupation"
        )


class TestErrors:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(StoreError):
            load_store(tmp_path / "nothing")

    def test_bad_format_version(self, tmp_path):
        save_store(TripleStore(), tmp_path / "s")
        meta = tmp_path / "s" / "meta.json"
        meta.write_text('{"format_version": 99}', encoding="utf-8")
        with pytest.raises(StoreError):
            load_store(tmp_path / "s")

    def test_empty_store_roundtrip(self, tmp_path):
        save_store(TripleStore(name="empty"), tmp_path / "e")
        loaded = load_store(tmp_path / "e")
        assert len(loaded) == 0
