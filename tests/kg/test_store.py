"""Tests for the triple store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import StoreError
from repro.kg.store import EntityRecord, TripleStore
from repro.kg.triple import LiteralType, entity_fact, literal_fact


@pytest.fixture()
def store() -> TripleStore:
    s = TripleStore()
    s.upsert_entity(EntityRecord(entity="entity:a", name="A", popularity=0.9))
    s.upsert_entity(EntityRecord(entity="entity:b", name="B", popularity=0.1))
    s.add(entity_fact("entity:a", "predicate:knows", "entity:b"))
    s.add(entity_fact("entity:b", "predicate:knows", "entity:a"))
    s.add(literal_fact("entity:a", "predicate:height", 180, LiteralType.NUMBER))
    return s


class TestEntities:
    def test_upsert_and_get(self, store):
        assert store.entity("entity:a").name == "A"

    def test_unknown_entity_raises(self, store):
        with pytest.raises(StoreError):
            store.entity("entity:zzz")

    def test_bad_entity_id_rejected(self, store):
        with pytest.raises(StoreError):
            store.upsert_entity(EntityRecord(entity="doc:x", name="X"))

    def test_entity_ids(self, store):
        assert set(store.entity_ids()) == {"entity:a", "entity:b"}


class TestFacts:
    def test_add_and_get(self, store):
        assert store.get("entity:a", "predicate:knows", "entity:b") is not None

    def test_len(self, store):
        assert len(store) == 3

    def test_contains(self, store):
        assert ("entity:a", "predicate:knows", "entity:b") in store

    def test_remove(self, store):
        assert store.remove("entity:a", "predicate:knows", "entity:b")
        assert not store.remove("entity:a", "predicate:knows", "entity:b")
        assert len(store) == 2

    def test_upsert_merges_metadata(self, store):
        first = entity_fact(
            "entity:a", "predicate:knows", "entity:b",
            confidence=0.4, sources=("source:x",), updated_at=1.0,
        )
        second = entity_fact(
            "entity:a", "predicate:knows", "entity:b",
            confidence=0.8, sources=("source:y",), updated_at=2.0,
        )
        store.add(first)
        merged = store.add(second)
        assert merged.confidence == 1.0  # fixture fact had confidence 1.0
        assert "source:x" in merged.sources and "source:y" in merged.sources
        assert merged.updated_at == 2.0
        assert len(store) == 3  # no duplicate edge

    def test_version_advances(self, store):
        before = store.version
        store.add(entity_fact("entity:b", "predicate:likes", "entity:a"))
        assert store.version > before


class TestScans:
    def test_scan_full_wildcard(self, store):
        assert len(list(store.scan())) == 3

    def test_scan_by_subject(self, store):
        facts = list(store.scan(subject="entity:a"))
        assert len(facts) == 2

    def test_scan_by_predicate(self, store):
        facts = list(store.scan(predicate="predicate:knows"))
        assert len(facts) == 2

    def test_scan_by_object(self, store):
        facts = list(store.scan(obj="entity:b"))
        assert {fact.subject for fact in facts} == {"entity:a"}

    def test_scan_exact(self, store):
        facts = list(store.scan("entity:a", "predicate:knows", "entity:b"))
        assert len(facts) == 1

    def test_scan_subject_predicate(self, store):
        facts = list(store.scan(subject="entity:a", predicate="predicate:height"))
        assert facts[0].obj == "180"

    def test_objects_and_subjects(self, store):
        assert store.objects("entity:a", "predicate:knows") == ["entity:b"]
        assert store.subjects("predicate:knows", "entity:a") == ["entity:b"]

    def test_predicate_counts(self, store):
        counts = store.predicate_counts()
        assert counts["predicate:knows"] == 2
        assert counts["predicate:height"] == 1

    def test_degrees(self, store):
        assert store.out_degree("entity:a") == 2
        assert store.in_degree("entity:a") == 1  # only entity-valued in-edges

    def test_neighbors_undirected(self, store):
        assert store.neighbors("entity:a") == {"entity:b"}
        assert store.neighbors("entity:b") == {"entity:a"}

    def test_stats(self, store):
        stats = store.stats()
        assert stats.num_entities == 2
        assert stats.num_facts == 3
        assert stats.num_literal_facts == 1


class TestIndexHygiene:
    def test_remove_prunes_empty_index_entries(self):
        store = TripleStore()
        store.add(entity_fact("entity:a", "predicate:p", "entity:b"))
        store.remove("entity:a", "predicate:p", "entity:b")
        assert "entity:a" not in store._spo
        assert "predicate:p" not in store._pos
        assert "entity:b" not in store._osp
        assert store.predicates() == []

    def test_remove_keeps_sibling_entries(self):
        store = TripleStore()
        store.add(entity_fact("entity:a", "predicate:p", "entity:b"))
        store.add(entity_fact("entity:a", "predicate:p", "entity:c"))
        store.remove("entity:a", "predicate:p", "entity:b")
        assert store.objects("entity:a", "predicate:p") == ["entity:c"]
        assert store.predicate_counts() == {"predicate:p": 1}

    def test_churn_does_not_accumulate_empties(self):
        store = TripleStore()
        for i in range(50):
            store.add(entity_fact("entity:a", f"predicate:p{i}", "entity:b"))
            store.remove("entity:a", f"predicate:p{i}", "entity:b")
        assert len(store._spo) == 0 and len(store._pos) == 0 and len(store._osp) == 0

    def test_predicates_of(self):
        store = TripleStore()
        store.add(entity_fact("entity:a", "predicate:p", "entity:b"))
        store.add(literal_fact("entity:a", "predicate:h", 1, LiteralType.NUMBER))
        assert store.predicates_of("entity:a") == {"predicate:p", "predicate:h"}
        assert store.predicates_of("entity:zzz") == set()


class TestAddAllBatching:
    def test_add_all_bumps_version_once(self):
        store = TripleStore()
        before = store.version
        added = store.add_all(
            entity_fact("entity:a", "predicate:p", f"entity:b{i}") for i in range(10)
        )
        assert added == 10
        assert store.version == before + 1

    def test_empty_add_all_keeps_version(self):
        store = TripleStore()
        before = store.version
        assert store.add_all([]) == 0
        assert store.version == before

    def test_partial_batch_still_bumps_version(self):
        """Facts upserted before a mid-batch error must invalidate caches."""
        store = TripleStore()
        before = store.version

        def exploding():
            yield entity_fact("entity:a", "predicate:p", "entity:b")
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            store.add_all(exploding())
        assert ("entity:a", "predicate:p", "entity:b") in store
        assert store.version > before


class TestRemoveConsistency:
    @settings(max_examples=25, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["add", "remove"]),
                st.sampled_from(["entity:x", "entity:y", "entity:z"]),
                st.sampled_from(["entity:x", "entity:y", "entity:z"]),
            ),
            max_size=30,
        )
    )
    def test_property_indexes_stay_consistent(self, ops):
        """After arbitrary add/remove, all three indexes agree with a model set."""
        store = TripleStore()
        model: set[tuple[str, str, str]] = set()
        for op, subj, obj in ops:
            if op == "add":
                store.add(entity_fact(subj, "predicate:p", obj))
                model.add((subj, "predicate:p", obj))
            else:
                store.remove(subj, "predicate:p", obj)
                model.discard((subj, "predicate:p", obj))
        assert {fact.key for fact in store.scan()} == model
        for subj, pred, obj in model:
            assert obj in store.objects(subj, pred)
            assert subj in store.subjects(pred, obj)
        assert len(store) == len(model)
