"""Shared fixtures: one small synthetic world reused across the suite.

Expensive artifacts (KG, corpus, trained embeddings) are session-scoped;
tests must treat them as read-only.  Tests that need to mutate a store
build their own small one.
"""

from __future__ import annotations

import pytest

from repro.annotation.pipeline import make_pipeline
from repro.embeddings.pipeline import (
    EmbeddingPipelineConfig,
    run_embedding_pipeline,
)
from repro.embeddings.trainer import TrainConfig
from repro.kg.generator import SyntheticKG, SyntheticKGConfig, generate_kg
from repro.kg.views import embedding_training_view
from repro.web.corpus import WebCorpus, WebCorpusConfig, generate_corpus
from repro.web.search import BM25SearchEngine


@pytest.fixture(scope="session")
def kg() -> SyntheticKG:
    """A small-but-complete synthetic world (read-only)."""
    return generate_kg(SyntheticKGConfig(seed=7, scale=0.5))


@pytest.fixture(scope="session")
def corpus(kg: SyntheticKG) -> WebCorpus:
    """A small web corpus over the shared KG (read-only)."""
    return generate_corpus(
        kg,
        WebCorpusConfig(
            seed=11,
            num_profile_pages=80,
            num_news_pages=120,
            num_blog_pages=60,
            num_list_pages=12,
            num_distractor_pages=16,
        ),
    )


@pytest.fixture(scope="session")
def search_engine(corpus: WebCorpus) -> BM25SearchEngine:
    """BM25 over the shared corpus (read-only)."""
    return BM25SearchEngine(corpus)


@pytest.fixture(scope="session")
def trained(kg: SyntheticKG):
    """Quick trained embeddings over the shared KG (read-only)."""
    config = EmbeddingPipelineConfig(
        train=TrainConfig(model="distmult", dim=16, epochs=8, seed=3),
        view=embedding_training_view(min_predicate_frequency=3),
        eval_max_queries=50,
    )
    return run_embedding_pipeline(kg.store, config)


@pytest.fixture(scope="session")
def full_annotation_pipeline(kg: SyntheticKG):
    """A full-tier annotation pipeline over the shared KG (read-only)."""
    return make_pipeline(kg.store, tier="full")
