"""Tracer unit tests: arming, span trees, assembly, bounding, adoption."""

import os
import pickle
import threading

import pytest

from repro.common import tracing
from repro.common.tracing import Span, TraceContext, Tracer


@pytest.fixture(autouse=True)
def _disarmed():
    """Every test starts and ends with tracing disarmed and no current span."""
    tracing.disarm()
    tracing._CURRENT.set(None)
    yield
    tracing.disarm()
    tracing._CURRENT.set(None)


class TestArming:
    def test_disarmed_span_is_shared_noop(self):
        first = tracing.span("anything", key="value")
        second = tracing.span("else")
        assert first is second
        assert not first.recording
        assert first.context() is None
        # All hooks are safe no-ops while disarmed.
        with first as sp:
            sp.set_attribute("ignored", 1)
            sp.add_event("ignored")
        tracing.event("ignored")
        assert tracing.current_span() is None
        assert tracing.current_context() is None

    def test_arm_disarm_roundtrip(self):
        tracer = tracing.arm(Tracer())
        assert tracing.active() is tracer
        real = tracing.span("real")
        assert real.recording
        real.finish()
        tracing.disarm()
        assert tracing.active() is None
        assert not tracing.span("gone").recording

    def test_armed_context_manager_restores_previous(self):
        outer = tracing.arm(Tracer())
        with tracing.armed() as inner:
            assert tracing.active() is inner
            assert inner is not outer
        assert tracing.active() is outer

    def test_disarmed_events_do_not_allocate(self):
        with tracing.armed() as tracer:
            with tracing.span("root"):
                pass
        assert tracer.spans_started == 1


class TestSpanTree:
    def test_root_then_children_assemble_one_trace(self):
        with tracing.armed() as tracer:
            with tracing.span("root") as root:
                with tracing.span("child") as child:
                    with tracing.span("grandchild") as grand:
                        pass
            assert child.trace_id == root.trace_id
            assert child.parent_id == root.span_id
            assert grand.parent_id == child.span_id
            [trace] = tracer.recent()
        assert trace["root"] == "root"
        assert trace["span_count"] == 3
        # Spans are sorted by start; root started first.
        assert trace["spans"][0]["name"] == "root"
        assert trace["spans"][0]["parent_id"] is None

    def test_current_span_follows_nesting(self):
        with tracing.armed():
            assert tracing.current_span() is None
            with tracing.span("a") as a:
                assert tracing.current_span() is a
                with tracing.span("b") as b:
                    assert tracing.current_span() is b
                assert tracing.current_span() is a
            assert tracing.current_span() is None

    def test_exception_sets_error_attribute_and_finishes(self):
        with tracing.armed() as tracer:
            with pytest.raises(RuntimeError):
                with tracing.span("boom"):
                    raise RuntimeError("no")
            [trace] = tracer.recent()
        assert trace["spans"][0]["attributes"]["error"] == "RuntimeError"

    def test_events_attach_to_current_span(self):
        with tracing.armed() as tracer:
            with tracing.span("root"):
                tracing.event("retry", attempt=2)
            [trace] = tracer.recent()
        [event] = trace["spans"][0]["events"]
        assert event["name"] == "retry"
        assert event["attempt"] == 2
        assert event["at_ms"] >= 0.0

    def test_finish_is_idempotent(self):
        with tracing.armed() as tracer:
            sp = tracing.span("once")
            sp.finish()
            sp.finish()
            assert tracer.spans_finished == 1

    def test_exclusive_ms_is_wall_minus_direct_children(self):
        with tracing.armed() as tracer:
            with tracing.span("root"):
                with tracing.span("child"):
                    pass
            [trace] = tracer.recent()
        by_name = {record["name"]: record for record in trace["spans"]}
        root, child = by_name["root"], by_name["child"]
        assert root["exclusive_ms"] == pytest.approx(
            max(0.0, root["wall_ms"] - child["wall_ms"])
        )
        assert child["exclusive_ms"] == pytest.approx(child["wall_ms"])

    def test_using_activates_without_nesting(self):
        with tracing.armed() as tracer:
            with tracing.span("root") as root:
                shard_a = tracer.start_span("shard", activate=False)
                shard_b = tracer.start_span("shard", activate=False)
                # Both parent under root, not under each other.
                assert shard_a.parent_id == root.span_id
                assert shard_b.parent_id == root.span_id
                with tracing.using(shard_a):
                    assert tracing.current_span() is shard_a
                    with tracing.span("inner") as inner:
                        assert inner.parent_id == shard_a.span_id
                assert tracing.current_span() is root
                shard_a.finish()
                shard_b.finish()
            [trace] = tracer.recent()
        assert trace["span_count"] == 4


class TestContextPropagation:
    def test_context_is_frozen_and_picklable(self):
        ctx = TraceContext("t-1", "s-1")
        assert pickle.loads(pickle.dumps(ctx)) == ctx
        with pytest.raises(AttributeError):
            ctx.trace_id = "other"

    def test_wire_roundtrip(self):
        ctx = TraceContext("t-1", "s-1")
        assert TraceContext.from_wire(ctx.to_wire()) == ctx

    @pytest.mark.parametrize(
        "raw",
        [None, "nope", 7, [], {}, {"trace_id": "t"}, {"trace_id": "", "span_id": "s"},
         {"trace_id": 3, "span_id": "s"}],
    )
    def test_malformed_wire_context_is_none(self, raw):
        assert TraceContext.from_wire(raw) is None

    def test_seeded_context_parents_new_spans(self):
        with tracing.armed():
            ctx = TraceContext("trace-x", "span-x")
            with tracing.seeded(ctx):
                assert tracing.current_context() == ctx
                with tracing.span("child") as child:
                    assert child.trace_id == "trace-x"
                    assert child.parent_id == "span-x"
                    assert not child.root
            assert tracing.current_context() is None

    def test_seeded_none_is_a_noop(self):
        with tracing.armed():
            with tracing.seeded(None):
                assert tracing.current_context() is None

    def test_current_context_from_live_span(self):
        with tracing.armed():
            with tracing.span("root") as root:
                ctx = tracing.current_context()
        assert ctx == TraceContext(root.trace_id, root.span_id)

    def test_span_ids_are_pid_prefixed(self):
        with tracing.armed():
            with tracing.span("root") as root:
                assert root.span_id.startswith(f"{os.getpid():x}-")
                assert root.pid == os.getpid()


class TestBounding:
    def test_recent_ring_is_bounded_newest_first(self):
        with tracing.armed(Tracer(ring_capacity=3)) as tracer:
            for i in range(5):
                with tracing.span("root", i=i):
                    pass
            recent = tracer.recent()
        assert len(recent) == 3
        assert [t["spans"][0]["attributes"]["i"] for t in recent] == [4, 3, 2]

    def test_slowest_keeps_the_slow_ones(self):
        tracer = Tracer(slow_capacity=2)
        with tracing.armed(tracer):
            for wall in (5.0, 1.0, 9.0, 3.0):
                sp = tracer.start_span("root", activate=False)
                sp._finished = True  # freeze wall_ms deterministically
                sp.wall_ms = wall
                tracer._record(sp)
        slowest = tracer.slowest()
        assert [t["duration_ms"] for t in slowest] == [9.0, 5.0]

    def test_live_traces_bounded_with_drop_counter(self):
        tracer = Tracer(max_live=2)
        with tracing.armed(tracer):
            for _ in range(4):
                # Children without a finishing root stay live.
                sp = tracer.start_span("orphan", parent=TraceContext(f"t{_}", "s"))
                sp.finish()
        assert tracer.counters()["traces_live"] == 2
        assert tracer.counters()["traces_dropped"] == 2

    def test_spans_per_trace_bounded(self):
        tracer = Tracer(max_spans=3)
        with tracing.armed(tracer):
            ctx = TraceContext("big", "root")
            for _ in range(5):
                tracer.start_span("leaf", parent=ctx, activate=False).finish()
        assert tracer.counters()["spans_dropped"] == 2

    def test_find_by_trace_id(self):
        with tracing.armed() as tracer:
            with tracing.span("root") as root:
                pass
            assert tracer.find(root.trace_id)["trace_id"] == root.trace_id
            assert tracer.find("missing") is None


class TestSampling:
    def test_default_traces_every_request(self):
        with tracing.armed(Tracer()) as tracer:
            for _ in range(5):
                with tracing.span("serve.request"):
                    pass
        assert tracer.counters()["traces_completed"] == 5
        assert tracer.counters()["traces_sampled_out"] == 0

    def test_one_in_n_roots_recorded_deterministically(self):
        with tracing.armed(Tracer(sample_every=4)) as tracer:
            sampled = []
            for index in range(8):
                with tracing.span("serve.request") as root:
                    with tracing.span("serve.compute") as child:
                        pass
                    if root.recording:
                        sampled.append(index)
                        assert child.recording
                    else:
                        # The whole subtree of an unsampled root is the
                        # shared no-op span.
                        assert child is tracing._NOOP
        # Counter-based head sampling: the first root and every 4th after.
        assert sampled == [0, 4]
        counters = tracer.counters()
        assert counters["traces_completed"] == 2
        assert counters["traces_sampled_out"] == 6
        # Only sampled requests open real spans (2 roots + 2 children).
        assert counters["spans_started"] == 4
        assert counters["traces_live"] == 0

    def test_suppressed_root_restores_context(self):
        with tracing.armed(Tracer(sample_every=2)):
            with tracing.span("sampled"):
                pass
            with tracing.span("unsampled") as root:
                assert not root.recording
                assert tracing.current_span() is None
                assert tracing.current_context() is None
                tracing.event("ignored")  # must not raise or allocate
            assert tracing._CURRENT.get() is None

    def test_remote_parent_bypasses_sampling(self):
        # An upstream tracer already decided to sample this trace; the
        # local tracer must record its part regardless of its own rate.
        with tracing.armed(Tracer(sample_every=1000)) as tracer:
            context = TraceContext(trace_id="t-remote", span_id="s-parent")
            with tracing.seeded(context):
                with tracing.span("worker.execute") as sp:
                    assert sp.recording
                    assert sp.trace_id == "t-remote"
        assert tracer.counters()["spans_started"] == 1
        assert tracer.counters()["traces_sampled_out"] == 0

    def test_sampled_out_response_carries_no_trace_id(self):
        with tracing.armed(Tracer(sample_every=2)):
            first = tracing.span("serve.request")
            first.finish()
            second = tracing.span("serve.request")
            assert first.recording and first.trace_id
            assert not second.recording and second.trace_id == ""
            second.finish()


class TestCollectorAndAdoption:
    def test_collector_drains_records(self):
        collector = Tracer(ring_capacity=0)
        with tracing.armed(collector):
            with tracing.seeded(TraceContext("t-1", "s-1")):
                with tracing.span("worker.execute"):
                    pass
        records = collector.drain()
        assert len(records) == 1
        assert records[0]["trace_id"] == "t-1"
        assert records[0]["parent_id"] == "s-1"
        assert collector.drain() == []  # drained once, cleared

    def test_adopt_folds_records_into_live_trace(self):
        with tracing.armed() as tracer:
            with tracing.span("root") as root:
                tracer.adopt(
                    [
                        {
                            "trace_id": root.trace_id,
                            "span_id": "child-1",
                            "parent_id": root.span_id,
                            "name": "worker.execute",
                            "pid": 99999,
                            "start_unix_s": root.start_unix_s,
                            "wall_ms": 0.5,
                            "attributes": {},
                            "events": [],
                        }
                    ]
                )
            [trace] = tracer.recent()
        assert trace["span_count"] == 2
        names = {record["name"] for record in trace["spans"]}
        assert names == {"root", "worker.execute"}
        assert tracer.counters()["spans_adopted"] == 1

    def test_straggler_records_for_completed_trace_dropped(self):
        with tracing.armed() as tracer:
            with tracing.span("root") as root:
                pass
            tracer.adopt(
                [{"trace_id": root.trace_id, "span_id": "late", "parent_id": root.span_id}]
            )
        assert tracer.counters()["spans_adopted"] == 0
        assert tracer.counters()["spans_dropped"] == 1
        [trace] = tracer.recent()
        assert trace["span_count"] == 1  # assembled trace is immutable

    def test_threaded_span_recording_is_consistent(self):
        tracer = Tracer(ring_capacity=256)
        with tracing.armed(tracer):
            def worker():
                for _ in range(50):
                    with tracing.span("root"):
                        with tracing.span("child"):
                            pass

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        counters = tracer.counters()
        assert counters["traces_completed"] == 200
        assert counters["spans_finished"] == 400
        assert counters["traces_live"] == 0
