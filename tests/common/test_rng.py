"""Tests for deterministic RNG utilities."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.rng import rng_from_seed, stable_hash, substream, zipf_weights


class TestSubstream:
    def test_same_labels_same_stream(self):
        a = substream(7, "x").integers(0, 1000, 10)
        b = substream(7, "x").integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_different_labels_differ(self):
        a = substream(7, "x").integers(0, 1000, 10)
        b = substream(7, "y").integers(0, 1000, 10)
        assert not np.array_equal(a, b)

    def test_adjacent_seeds_are_independent(self):
        a = substream(1, "x").integers(0, 1000, 10)
        b = substream(2, "x").integers(0, 1000, 10)
        assert not np.array_equal(a, b)

    def test_mixed_label_types(self):
        generator = substream(3, "trainer", 5)
        assert generator.integers(0, 10) in range(10)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("hello", 100) == stable_hash("hello", 100)

    def test_in_range(self):
        for text in ("a", "b", "some longer text"):
            assert 0 <= stable_hash(text, 7) < 7

    def test_rejects_bad_modulus(self):
        with pytest.raises(ValueError):
            stable_hash("x", 0)

    @given(st.text(max_size=30), st.integers(min_value=1, max_value=10_000))
    def test_property_always_in_range(self, text, modulus):
        assert 0 <= stable_hash(text, modulus) < modulus


class TestZipf:
    def test_normalised(self):
        weights = zipf_weights(100, 1.0)
        assert weights.sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        weights = zipf_weights(50, 1.2)
        assert all(weights[i] >= weights[i + 1] for i in range(49))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            zipf_weights(0)

    def test_default_seed(self):
        a = rng_from_seed().random()
        b = rng_from_seed().random()
        assert a == b
