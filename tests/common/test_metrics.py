"""Tests for the metrics registry."""

import math
import threading

import pytest

from repro.common.metrics import (
    LatencyHistogram,
    MetricsRegistry,
    _quantile,
    render_prometheus,
)


class TestCounters:
    def test_incr(self):
        metrics = MetricsRegistry()
        metrics.incr("x")
        metrics.incr("x", 4)
        assert metrics.counters["x"] == 5

    def test_gauge_last_write_wins(self):
        metrics = MetricsRegistry()
        metrics.gauge("g", 1.0)
        metrics.gauge("g", 2.0)
        assert metrics.gauges["g"] == 2.0


class TestTimers:
    def test_observe_and_stats(self):
        metrics = MetricsRegistry()
        for value in (0.1, 0.2, 0.3):
            metrics.observe("t", value)
        stats = metrics.timer_stats("t")
        assert stats.count == 3
        assert stats.mean_s == pytest.approx(0.2)
        assert stats.max_s == pytest.approx(0.3)
        assert stats.p50_s == pytest.approx(0.2)

    def test_timed_context(self):
        metrics = MetricsRegistry()
        with metrics.timed("work"):
            pass
        assert metrics.timer_stats("work").count == 1

    def test_empty_timer_is_zeroes(self):
        stats = MetricsRegistry().timer_stats("never")
        assert stats.count == 0
        assert stats.mean_s == 0.0


class TestMergeAndSnapshot:
    def test_merge(self):
        parent = MetricsRegistry("parent")
        child = MetricsRegistry("child")
        child.incr("docs", 3)
        child.observe("t", 0.5)
        child.gauge("g", 7.0)
        parent.incr("docs", 2)
        parent.merge(child)
        assert parent.counters["docs"] == 5
        assert parent.gauges["g"] == 7.0
        assert parent.timer_stats("t").count == 1

    def test_snapshot_flattens(self):
        metrics = MetricsRegistry()
        metrics.incr("c")
        metrics.gauge("g", 1.5)
        metrics.observe("t", 0.1)
        snap = metrics.snapshot()
        assert snap["counter.c"] == 1.0
        assert snap["gauge.g"] == 1.5
        assert snap["timer.t.count"] == 1.0


class TestQuantile:
    def test_interpolates(self):
        assert _quantile([0.0, 1.0], 0.5) == pytest.approx(0.5)

    def test_single_sample(self):
        assert _quantile([3.0], 0.95) == 3.0

    def test_empty(self):
        assert _quantile([], 0.5) == 0.0


class TestLatencyHistogram:
    def test_observe_and_summary(self):
        hist = LatencyHistogram()
        for value in (0.001, 0.002, 0.004, 0.2):
            hist.observe(value)
        assert hist.count == 4
        assert hist.mean == pytest.approx(0.05175)
        assert hist.min == pytest.approx(0.001)
        assert hist.max == pytest.approx(0.2)

    def test_quantile_is_bucket_upper_bound(self):
        hist = LatencyHistogram(bounds=(0.01, 0.1, 1.0))
        for _ in range(99):
            hist.observe(0.005)
        hist.observe(0.5)
        assert hist.quantile(0.50) == 0.01
        assert hist.quantile(1.0) == 1.0

    def test_overflow_reports_observed_max(self):
        hist = LatencyHistogram(bounds=(0.01,))
        hist.observe(5.0)
        assert hist.overflow == 1
        assert hist.quantile(0.99) == 5.0

    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.quantile(0.95) == 0.0
        assert hist.mean == 0.0
        assert hist.to_dict()["count"] == 0.0

    def test_merge(self):
        a = LatencyHistogram()
        b = LatencyHistogram()
        a.observe(0.001)
        b.observe(0.1)
        a.merge(b)
        assert a.count == 2
        assert a.max == pytest.approx(0.1)
        with pytest.raises(ValueError):
            a.merge(LatencyHistogram(bounds=(1.0,)))

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            LatencyHistogram(bounds=())
        with pytest.raises(ValueError):
            LatencyHistogram(bounds=(1.0, 0.5))

    def test_registry_hist_and_snapshot(self):
        metrics = MetricsRegistry()
        metrics.hist("latency", 0.002)
        with metrics.hist_timed("latency"):
            pass
        snap = metrics.snapshot()
        assert snap["hist.latency.count"] == 2.0
        assert snap["hist.latency.p95_s"] > 0.0

    def test_registry_merge_folds_histograms(self):
        parent = MetricsRegistry("parent")
        child = MetricsRegistry("child")
        child.hist("latency", 0.01)
        parent.hist("latency", 0.02)
        parent.merge(child)
        assert parent.histograms["latency"].count == 2

    def test_merge_empty_into_populated_is_identity(self):
        a = LatencyHistogram()
        a.observe(0.01)
        before = (list(a.counts), a.overflow, a.count, a.total, a.max)
        a.merge(LatencyHistogram())
        assert (list(a.counts), a.overflow, a.count, a.total, a.max) == before
        assert a.min == pytest.approx(0.01)  # empty-side inf min can't win

    def test_merge_overflow_counts(self):
        a = LatencyHistogram(bounds=(0.01,))
        b = LatencyHistogram(bounds=(0.01,))
        a.observe(5.0)
        b.observe(9.0)
        b.observe(0.001)
        a.merge(b)
        assert a.overflow == 2
        assert a.count == 3
        assert a.quantile(0.99) == 9.0

    def test_quantile_single_sample(self):
        hist = LatencyHistogram(bounds=(0.01, 0.1))
        hist.observe(0.05)
        assert hist.quantile(0.5) == 0.1
        assert hist.quantile(1.0) == 0.1

    def test_merged_from_workers_quantile_matches_single(self):
        """N worker histograms merged == one histogram fed everything."""
        workers = [LatencyHistogram() for _ in range(4)]
        single = LatencyHistogram()
        samples = [0.0002 * (i + 1) for i in range(40)]
        for i, value in enumerate(samples):
            workers[i % 4].observe(value)
            single.observe(value)
        fleet = LatencyHistogram()
        for worker in workers:
            fleet.merge(worker)
        assert fleet.count == single.count
        assert fleet.counts == single.counts
        assert fleet.total == pytest.approx(single.total)
        for q in (0.5, 0.9, 0.95, 0.99):
            assert fleet.quantile(q) == single.quantile(q)

    def test_concurrent_increments_do_not_drop(self):
        metrics = MetricsRegistry()

        def hammer() -> None:
            for _ in range(1000):
                metrics.incr("requests")
                metrics.hist("latency", 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.counters["requests"] == 8000
        assert metrics.histograms["latency"].count == 8000


class TestPrometheusBuckets:
    """Satellite pin: cumulative-count semantics of to_prometheus_buckets."""

    def test_cumulative_counts_and_inf_terminal(self):
        hist = LatencyHistogram(bounds=(0.01, 0.1, 1.0))
        for value in (0.005, 0.005, 0.05, 0.5, 7.0):
            hist.observe(value)
        buckets = hist.to_prometheus_buckets()
        # Each entry counts EVERY sample <= bound, not the bucket's own.
        assert buckets == [(0.01, 2), (0.1, 3), (1.0, 4), (math.inf, 5)]

    def test_empty_histogram(self):
        buckets = LatencyHistogram(bounds=(0.01,)).to_prometheus_buckets()
        assert buckets == [(0.01, 0), (math.inf, 0)]

    def test_single_sample(self):
        hist = LatencyHistogram(bounds=(0.01, 0.1))
        hist.observe(0.05)
        assert hist.to_prometheus_buckets() == [(0.01, 0), (0.1, 1), (math.inf, 1)]

    def test_overflow_only_lands_in_inf(self):
        hist = LatencyHistogram(bounds=(0.01,))
        hist.observe(99.0)
        assert hist.to_prometheus_buckets() == [(0.01, 0), (math.inf, 1)]

    def test_counts_are_monotone_nondecreasing(self):
        hist = LatencyHistogram()
        for i in range(100):
            hist.observe(0.00005 * (i + 1) ** 2)
        buckets = hist.to_prometheus_buckets()
        counts = [count for _, count in buckets]
        assert counts == sorted(counts)
        assert buckets[-1] == (math.inf, hist.count)


class TestRenderPrometheus:
    def test_counters_gauges_timers_histograms(self):
        metrics = MetricsRegistry()
        metrics.incr("serve.sheds", 3)
        metrics.gauge("serve.store_version", 12.0)
        metrics.observe("publisher.publish_s", 0.5)
        metrics.observe("publisher.publish_s", 1.5)
        metrics.hist("serve.latency", 0.005)
        text = render_prometheus(metrics)
        lines = text.splitlines()
        assert "# TYPE kg_serve_sheds_total counter" in lines
        assert "kg_serve_sheds_total 3" in lines
        assert "kg_serve_store_version 12" in lines
        assert "kg_publisher_publish_s_seconds_count 2" in lines
        assert "kg_publisher_publish_s_seconds_sum 2" in lines
        assert 'kg_serve_latency_seconds_bucket{le="+Inf"} 1' in lines
        assert "kg_serve_latency_seconds_count 1" in lines
        assert text.endswith("\n")

    def test_families_fold_dynamic_suffixes_into_labels(self):
        metrics = MetricsRegistry()
        metrics.incr("serve.requests.WalkRequest", 2)
        metrics.incr("serve.requests.KnnRequest")
        metrics.incr("serve.cache_hits", 5)
        text = render_prometheus(
            metrics,
            families={"serve.requests.": ("serve_requests_by_type", "type")},
        )
        lines = text.splitlines()
        assert 'kg_serve_requests_by_type_total{type="WalkRequest"} 2' in lines
        assert 'kg_serve_requests_by_type_total{type="KnnRequest"} 1' in lines
        # The family TYPE line appears exactly once.
        assert lines.count("# TYPE kg_serve_requests_by_type_total counter") == 1
        # Non-family counters are untouched.
        assert "kg_serve_cache_hits_total 5" in lines

    def test_extra_gauges_and_name_mangling(self):
        metrics = MetricsRegistry()
        metrics.incr("shard:0.errors")
        text = render_prometheus(metrics, extra_gauges={"store.version": 3.0})
        lines = text.splitlines()
        assert "kg_store_version 3" in lines
        assert "kg_shard_0_errors_total 1" in lines
        # Every sample line uses only the Prometheus-legal charset.
        for line in lines:
            if line.startswith("#"):
                continue
            name = line.split("{")[0].split(" ")[0]
            assert all(ch.isalnum() or ch == "_" for ch in name), line

    def test_histogram_bucket_counts_are_cumulative_in_text(self):
        metrics = MetricsRegistry()
        for value in (0.00005, 0.0002, 0.002, 20.0):
            metrics.hist("lat", value)
        text = render_prometheus(metrics)
        bucket_lines = [
            line for line in text.splitlines() if "kg_lat_seconds_bucket" in line
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)
        assert bucket_lines[-1] == 'kg_lat_seconds_bucket{le="+Inf"} 4'
