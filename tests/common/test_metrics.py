"""Tests for the metrics registry."""

import threading

import pytest

from repro.common.metrics import LatencyHistogram, MetricsRegistry, _quantile


class TestCounters:
    def test_incr(self):
        metrics = MetricsRegistry()
        metrics.incr("x")
        metrics.incr("x", 4)
        assert metrics.counters["x"] == 5

    def test_gauge_last_write_wins(self):
        metrics = MetricsRegistry()
        metrics.gauge("g", 1.0)
        metrics.gauge("g", 2.0)
        assert metrics.gauges["g"] == 2.0


class TestTimers:
    def test_observe_and_stats(self):
        metrics = MetricsRegistry()
        for value in (0.1, 0.2, 0.3):
            metrics.observe("t", value)
        stats = metrics.timer_stats("t")
        assert stats.count == 3
        assert stats.mean_s == pytest.approx(0.2)
        assert stats.max_s == pytest.approx(0.3)
        assert stats.p50_s == pytest.approx(0.2)

    def test_timed_context(self):
        metrics = MetricsRegistry()
        with metrics.timed("work"):
            pass
        assert metrics.timer_stats("work").count == 1

    def test_empty_timer_is_zeroes(self):
        stats = MetricsRegistry().timer_stats("never")
        assert stats.count == 0
        assert stats.mean_s == 0.0


class TestMergeAndSnapshot:
    def test_merge(self):
        parent = MetricsRegistry("parent")
        child = MetricsRegistry("child")
        child.incr("docs", 3)
        child.observe("t", 0.5)
        child.gauge("g", 7.0)
        parent.incr("docs", 2)
        parent.merge(child)
        assert parent.counters["docs"] == 5
        assert parent.gauges["g"] == 7.0
        assert parent.timer_stats("t").count == 1

    def test_snapshot_flattens(self):
        metrics = MetricsRegistry()
        metrics.incr("c")
        metrics.gauge("g", 1.5)
        metrics.observe("t", 0.1)
        snap = metrics.snapshot()
        assert snap["counter.c"] == 1.0
        assert snap["gauge.g"] == 1.5
        assert snap["timer.t.count"] == 1.0


class TestQuantile:
    def test_interpolates(self):
        assert _quantile([0.0, 1.0], 0.5) == pytest.approx(0.5)

    def test_single_sample(self):
        assert _quantile([3.0], 0.95) == 3.0

    def test_empty(self):
        assert _quantile([], 0.5) == 0.0


class TestLatencyHistogram:
    def test_observe_and_summary(self):
        hist = LatencyHistogram()
        for value in (0.001, 0.002, 0.004, 0.2):
            hist.observe(value)
        assert hist.count == 4
        assert hist.mean == pytest.approx(0.05175)
        assert hist.min == pytest.approx(0.001)
        assert hist.max == pytest.approx(0.2)

    def test_quantile_is_bucket_upper_bound(self):
        hist = LatencyHistogram(bounds=(0.01, 0.1, 1.0))
        for _ in range(99):
            hist.observe(0.005)
        hist.observe(0.5)
        assert hist.quantile(0.50) == 0.01
        assert hist.quantile(1.0) == 1.0

    def test_overflow_reports_observed_max(self):
        hist = LatencyHistogram(bounds=(0.01,))
        hist.observe(5.0)
        assert hist.overflow == 1
        assert hist.quantile(0.99) == 5.0

    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.quantile(0.95) == 0.0
        assert hist.mean == 0.0
        assert hist.to_dict()["count"] == 0.0

    def test_merge(self):
        a = LatencyHistogram()
        b = LatencyHistogram()
        a.observe(0.001)
        b.observe(0.1)
        a.merge(b)
        assert a.count == 2
        assert a.max == pytest.approx(0.1)
        with pytest.raises(ValueError):
            a.merge(LatencyHistogram(bounds=(1.0,)))

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            LatencyHistogram(bounds=())
        with pytest.raises(ValueError):
            LatencyHistogram(bounds=(1.0, 0.5))

    def test_registry_hist_and_snapshot(self):
        metrics = MetricsRegistry()
        metrics.hist("latency", 0.002)
        with metrics.hist_timed("latency"):
            pass
        snap = metrics.snapshot()
        assert snap["hist.latency.count"] == 2.0
        assert snap["hist.latency.p95_s"] > 0.0

    def test_registry_merge_folds_histograms(self):
        parent = MetricsRegistry("parent")
        child = MetricsRegistry("child")
        child.hist("latency", 0.01)
        parent.hist("latency", 0.02)
        parent.merge(child)
        assert parent.histograms["latency"].count == 2

    def test_concurrent_increments_do_not_drop(self):
        metrics = MetricsRegistry()

        def hammer() -> None:
            for _ in range(1000):
                metrics.incr("requests")
                metrics.hist("latency", 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.counters["requests"] == 8000
        assert metrics.histograms["latency"].count == 8000
