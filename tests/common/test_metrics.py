"""Tests for the metrics registry."""

import pytest

from repro.common.metrics import MetricsRegistry, _quantile


class TestCounters:
    def test_incr(self):
        metrics = MetricsRegistry()
        metrics.incr("x")
        metrics.incr("x", 4)
        assert metrics.counters["x"] == 5

    def test_gauge_last_write_wins(self):
        metrics = MetricsRegistry()
        metrics.gauge("g", 1.0)
        metrics.gauge("g", 2.0)
        assert metrics.gauges["g"] == 2.0


class TestTimers:
    def test_observe_and_stats(self):
        metrics = MetricsRegistry()
        for value in (0.1, 0.2, 0.3):
            metrics.observe("t", value)
        stats = metrics.timer_stats("t")
        assert stats.count == 3
        assert stats.mean_s == pytest.approx(0.2)
        assert stats.max_s == pytest.approx(0.3)
        assert stats.p50_s == pytest.approx(0.2)

    def test_timed_context(self):
        metrics = MetricsRegistry()
        with metrics.timed("work"):
            pass
        assert metrics.timer_stats("work").count == 1

    def test_empty_timer_is_zeroes(self):
        stats = MetricsRegistry().timer_stats("never")
        assert stats.count == 0
        assert stats.mean_s == 0.0


class TestMergeAndSnapshot:
    def test_merge(self):
        parent = MetricsRegistry("parent")
        child = MetricsRegistry("child")
        child.incr("docs", 3)
        child.observe("t", 0.5)
        child.gauge("g", 7.0)
        parent.incr("docs", 2)
        parent.merge(child)
        assert parent.counters["docs"] == 5
        assert parent.gauges["g"] == 7.0
        assert parent.timer_stats("t").count == 1

    def test_snapshot_flattens(self):
        metrics = MetricsRegistry()
        metrics.incr("c")
        metrics.gauge("g", 1.5)
        metrics.observe("t", 0.1)
        snap = metrics.snapshot()
        assert snap["counter.c"] == 1.0
        assert snap["gauge.g"] == 1.5
        assert snap["timer.t.count"] == 1.0


class TestQuantile:
    def test_interpolates(self):
        assert _quantile([0.0, 1.0], 0.5) == pytest.approx(0.5)

    def test_single_sample(self):
        assert _quantile([3.0], 0.95) == 3.0

    def test_empty(self):
        assert _quantile([], 0.5) == 0.0
