"""Tests for text utilities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.text import (
    char_ngrams,
    content_tokens,
    dice_similarity,
    jaccard,
    name_similarity,
    normalize_name,
    sentences,
    tokenize,
    tokenize_with_offsets,
    truncate,
    window,
)


class TestTokenize:
    def test_basic(self):
        assert tokenize("Joe Root hits a hundred!") == ["joe", "root", "hits", "a", "hundred"]

    def test_offsets_align(self):
        text = "Hello, World"
        for token, start, end in tokenize_with_offsets(text):
            assert text[start:end] == token

    def test_apostrophes_kept(self):
        assert "i've" in tokenize("I've added comments")

    def test_content_tokens_drop_stopwords(self):
        assert content_tokens("the cat and the hat") == ["cat", "hat"]


class TestNormalizeName:
    def test_whitespace_collapsed(self):
        assert normalize_name("  Benicio  del Toro ") == "benicio del toro"

    def test_accents_stripped(self):
        assert normalize_name("José Martí") == "jose marti"

    def test_punctuation_removed(self):
        assert normalize_name("O'Brien, J.") == "o brien j"

    def test_idempotent(self):
        once = normalize_name("Some  Náme!")
        assert normalize_name(once) == once

    @given(st.text(max_size=40))
    def test_property_idempotent(self, text):
        once = normalize_name(text)
        assert normalize_name(once) == once


class TestSimilarity:
    def test_identical_names(self):
        assert name_similarity("Tim Smith", "tim smith") == 1.0

    def test_disjoint_names_low(self):
        assert name_similarity("Aaa Bbb", "Zzz Qqq") < 0.3

    def test_typo_tolerant(self):
        assert name_similarity("Smith", "Smiht") > 0.4

    def test_dice_empty(self):
        assert dice_similarity(char_ngrams(""), char_ngrams("abc")) == 0.0

    def test_jaccard_bounds(self):
        assert jaccard(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)
        assert jaccard([], []) == 0.0

    @given(st.text(min_size=1, max_size=20), st.text(min_size=1, max_size=20))
    def test_property_similarity_in_unit_interval(self, a, b):
        assert 0.0 <= name_similarity(a, b) <= 1.0

    @given(st.text(min_size=1, max_size=20))
    def test_property_self_similarity_is_one(self, a):
        if normalize_name(a):
            assert name_similarity(a, a) == pytest.approx(1.0)


class TestMisc:
    def test_window_excludes_center(self):
        tokens = ["a", "b", "c", "d", "e"]
        assert window(tokens, 2, 1) == ["b", "d"]

    def test_window_clips_at_edges(self):
        tokens = ["a", "b"]
        assert window(tokens, 0, 3) == ["b"]

    def test_sentences_split(self):
        assert sentences("One. Two! Three?") == ["One.", "Two!", "Three?"]

    def test_truncate(self):
        assert truncate("abcdef", 4) == "abc…"
        assert truncate("ab", 4) == "ab"
