"""Tests for JSONL serialization helpers."""

from dataclasses import dataclass

from repro.common.serialization import append_jsonl, read_jsonl, write_jsonl


@dataclass
class _Record:
    name: str
    value: int

    def to_dict(self):
        return {"name": self.name, "value": self.value}

    @classmethod
    def from_dict(cls, payload):
        return cls(name=payload["name"], value=payload["value"])


class TestJsonl:
    def test_write_read_dicts(self, tmp_path):
        path = tmp_path / "out.jsonl"
        count = write_jsonl(path, [{"a": 1}, {"a": 2}])
        assert count == 2
        assert list(read_jsonl(path)) == [{"a": 1}, {"a": 2}]

    def test_write_read_dataclasses(self, tmp_path):
        path = tmp_path / "records.jsonl"
        write_jsonl(path, [_Record("x", 1)])
        loaded = list(read_jsonl(path, factory=_Record.from_dict))
        assert loaded == [_Record("x", 1)]

    def test_append(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_jsonl(path, {"n": 1})
        append_jsonl(path, {"n": 2})
        assert [r["n"] for r in read_jsonl(path)] == [1, 2]

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "f.jsonl"
        write_jsonl(path, [{"k": "v"}])
        assert path.exists()

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"a": 1}\n\n{"a": 2}\n', encoding="utf-8")
        assert len(list(read_jsonl(path))) == 2

    def test_unicode_roundtrip(self, tmp_path):
        path = tmp_path / "u.jsonl"
        write_jsonl(path, [{"name": "José Martí ✓"}])
        assert list(read_jsonl(path))[0]["name"] == "José Martí ✓"
