"""Structured-log tests: JSON schema, level gate, trace correlation."""

import io
import json

import pytest

from repro.common import logging as kglog
from repro.common import tracing


@pytest.fixture()
def captured():
    """Redirect log output into a StringIO for the test's duration."""
    stream = io.StringIO()
    kglog.configure(stream=stream, level="info")
    yield stream
    kglog.configure(stream=None, level="info")


def lines(stream: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestSchema:
    def test_one_json_object_per_line(self, captured):
        log = kglog.get_logger("test.schema")
        log.info("first", a=1)
        log.warning("second", b="two")
        first, second = lines(captured)
        assert first["level"] == "info"
        assert first["logger"] == "test.schema"
        assert first["event"] == "first"
        assert first["a"] == 1
        assert second["level"] == "warning"
        assert second["b"] == "two"

    def test_timestamp_is_utc_isoformat(self, captured):
        kglog.get_logger("test.ts").info("tick")
        [record] = lines(captured)
        assert record["ts"].endswith("+00:00")

    def test_non_json_values_stringified(self, captured):
        kglog.get_logger("test.coerce").info("path", path=object())
        [record] = lines(captured)
        assert isinstance(record["path"], str)

    def test_get_logger_is_cached(self):
        assert kglog.get_logger("same") is kglog.get_logger("same")


class TestLevelGate:
    def test_below_level_is_suppressed(self, captured):
        log = kglog.get_logger("test.level")
        log.debug("hidden")
        log.info("shown")
        assert [record["event"] for record in lines(captured)] == ["shown"]

    def test_set_level_opens_debug(self, captured):
        kglog.set_level("debug")
        try:
            kglog.get_logger("test.level").debug("now visible")
        finally:
            kglog.set_level("info")
        assert [record["event"] for record in lines(captured)] == ["now visible"]

    def test_error_always_passes_configured_levels(self, captured):
        kglog.set_level("error")
        try:
            log = kglog.get_logger("test.level")
            log.warning("hidden")
            log.error("kept")
        finally:
            kglog.set_level("info")
        assert [record["event"] for record in lines(captured)] == ["kept"]

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            kglog.set_level("verbose")


class TestTraceCorrelation:
    def test_correlation_ids_attached_under_span(self, captured):
        with tracing.armed():
            with tracing.span("root") as root:
                kglog.get_logger("test.trace").info("inside")
        [record] = lines(captured)
        assert record["trace_id"] == root.trace_id
        assert record["span_id"] == root.span_id

    def test_no_ids_without_a_trace(self, captured):
        kglog.get_logger("test.trace").info("outside")
        [record] = lines(captured)
        assert "trace_id" not in record
        assert "span_id" not in record

    def test_closed_stream_never_raises(self):
        stream = io.StringIO()
        kglog.configure(stream=stream)
        try:
            stream.close()
            kglog.get_logger("test.closed").info("dropped")
        finally:
            kglog.configure(stream=None)
