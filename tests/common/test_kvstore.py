"""Tests for the key-value stores (memory + disk)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.kvstore import DiskKVStore, MemoryKVStore


class TestMemoryKVStore:
    def test_put_get(self):
        store = MemoryKVStore()
        store.put("a", 1)
        assert store.get("a") == 1

    def test_get_default(self):
        assert MemoryKVStore().get("missing", 42) == 42

    def test_delete(self):
        store = MemoryKVStore()
        store.put("a", 1)
        assert store.delete("a")
        assert not store.delete("a")
        assert "a" not in store

    def test_lru_eviction(self):
        store = MemoryKVStore(capacity=2)
        store.put("a", 1)
        store.put("b", 2)
        store.get("a")  # a is now most recent
        store.put("c", 3)  # evicts b
        assert "a" in store and "c" in store and "b" not in store
        assert store.evictions == 1

    def test_hit_rate(self):
        store = MemoryKVStore()
        store.put("a", 1)
        store.get("a")
        store.get("missing")
        assert store.hit_rate == pytest.approx(0.5)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            MemoryKVStore(capacity=0)

    def test_len_and_keys(self):
        store = MemoryKVStore()
        store.put("x", 1)
        store.put("y", 2)
        assert len(store) == 2
        assert set(store.keys()) == {"x", "y"}

    def test_clear(self):
        store = MemoryKVStore()
        store.put("x", 1)
        store.get("x")
        store.clear()
        assert len(store) == 0
        assert store.get("x") is None
        assert store.hits == 1  # statistics survive a clear


class TestDiskKVStore:
    def test_roundtrip(self, tmp_path):
        store = DiskKVStore(tmp_path)
        store.put("k", {"nested": [1, 2]})
        assert store.get("k") == {"nested": [1, 2]}

    def test_ndarray_roundtrip(self, tmp_path):
        store = DiskKVStore(tmp_path)
        vector = np.arange(5, dtype=np.float64)
        store.put("v", vector)
        assert np.array_equal(store.get("v"), vector)

    def test_overwrite_wins(self, tmp_path):
        store = DiskKVStore(tmp_path)
        store.put("k", 1)
        store.put("k", 2)
        assert store.get("k") == 2
        assert len(store) == 1

    def test_delete_tombstone(self, tmp_path):
        store = DiskKVStore(tmp_path)
        store.put("k", 1)
        assert store.delete("k")
        assert store.get("k") is None
        assert "k" not in store

    def test_persistence_across_instances(self, tmp_path):
        first = DiskKVStore(tmp_path)
        first.put("k", "value")
        first.delete("gone") if "gone" in first else None
        second = DiskKVStore(tmp_path)
        assert second.get("k") == "value"

    def test_tombstone_survives_restart(self, tmp_path):
        first = DiskKVStore(tmp_path)
        first.put("k", 1)
        first.delete("k")
        second = DiskKVStore(tmp_path)
        assert "k" not in second

    def test_compact_preserves_live_data(self, tmp_path):
        store = DiskKVStore(tmp_path)
        for i in range(10):
            store.put(f"k{i}", i)
        store.delete("k3")
        store.compact()
        assert len(store) == 9
        assert store.get("k4") == 4
        assert "k3" not in store

    def test_clear_and_restart(self, tmp_path):
        store = DiskKVStore(tmp_path)
        store.put("k", 1)
        store.clear()
        assert len(store) == 0 and "k" not in store
        store.put("fresh", 2)
        second = DiskKVStore(tmp_path)
        assert second.get("k") is None
        assert second.get("fresh") == 2

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["put", "delete"]),
                st.sampled_from(["a", "b", "c"]),
                st.integers(),
            ),
            max_size=25,
        )
    )
    def test_property_matches_dict_model(self, tmp_path_factory, ops):
        """The disk store behaves exactly like a dict."""
        store = DiskKVStore(tmp_path_factory.mktemp("kv"))
        model: dict[str, int] = {}
        for op, key, value in ops:
            if op == "put":
                store.put(key, value)
                model[key] = value
            else:
                store.delete(key)
                model.pop(key, None)
        for key in ("a", "b", "c"):
            assert store.get(key) == model.get(key)
        assert len(store) == len(model)
