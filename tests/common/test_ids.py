"""Tests for namespaced identifiers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import ids
from repro.common.errors import IdentifierError


class TestMakeAndSplit:
    def test_roundtrip(self):
        identifier = ids.make_id("entity", "Q42")
        assert identifier == "entity:Q42"
        assert ids.split_id(identifier) == ("entity", "Q42")

    def test_unknown_namespace_rejected(self):
        with pytest.raises(IdentifierError):
            ids.make_id("planet", "earth")

    def test_malformed_local_rejected(self):
        with pytest.raises(IdentifierError):
            ids.make_id("entity", "has space")

    def test_empty_local_rejected(self):
        with pytest.raises(IdentifierError):
            ids.make_id("entity", "")

    def test_split_requires_namespace(self):
        with pytest.raises(IdentifierError):
            ids.split_id("no-colon-here")

    def test_split_rejects_unknown_namespace(self):
        with pytest.raises(IdentifierError):
            ids.split_id("bogus:thing")

    def test_hierarchical_locals_allowed(self):
        assert ids.doc_id("web/000123") == "doc:web/000123"


class TestPredicates:
    def test_is_entity(self):
        assert ids.is_entity("entity:Q1")
        assert not ids.is_entity("predicate:p")

    def test_is_predicate(self):
        assert ids.is_predicate("predicate:occupation")
        assert not ids.is_predicate("entity:Q1")

    def test_is_type_and_doc(self):
        assert ids.is_type("type:person")
        assert ids.is_doc("doc:web/1")
        assert not ids.is_type("entity:x")

    def test_shorthands(self):
        assert ids.entity_id("x") == "entity:x"
        assert ids.predicate_id("p") == "predicate:p"
        assert ids.type_id("t") == "type:t"
        assert ids.device_id("d") == "device:d"
        assert ids.source_id("s") == "source:s"

    def test_namespace_and_local_accessors(self):
        assert ids.namespace_of("entity:abc") == "entity"
        assert ids.local_of("entity:abc") == "abc"


@given(local=st.from_regex(r"[A-Za-z0-9_][A-Za-z0-9_\-./+]{0,20}", fullmatch=True))
def test_property_roundtrip_any_valid_local(local):
    identifier = ids.make_id("entity", local)
    namespace, back = ids.split_id(identifier)
    assert namespace == "entity"
    assert back == local
