"""Cross-subsystem integration tests: the paper's full loops."""


from repro.annotation.evaluation import evaluate_annotations
from repro.annotation.pipeline import make_pipeline
from repro.common import ids
from repro.core import KnowledgePlatform
from repro.embeddings.trainer import TrainConfig
from repro.kg.generator import hold_out_facts
from repro.kg.query_logs import QueryLogAnalyzer, synthesize_query_log
from repro.odke.gaps import GapDetector
from repro.web.crawl import CrawlSimulator

DOB = ids.predicate_id("date_of_birth")
POB = ids.predicate_id("place_of_birth")


class TestGrowLoop:
    """Figure 1 + Figure 5: annotate the web, find gaps, extract, fuse —
    and verify the KG measurably improves."""

    def test_odke_raises_answer_rate(self, kg, corpus, search_engine):
        deployed, held_out = hold_out_facts(kg, fraction=0.3, seed=31)
        annotation = make_pipeline(deployed, tier="full")

        # Answer rate before enrichment.
        log = synthesize_query_log(deployed, [DOB, POB], 1500, now=kg.now, seed=5)
        rate_before = QueryLogAnalyzer(log).answer_rate()

        platform = KnowledgePlatform(deployed, kg.ontology, now=kg.now)
        detector = GapDetector(deployed, kg.ontology, now=kg.now, query_log=log)
        targets = [
            t for t in detector.all_targets(include_stale=False)
            if t.predicate in (DOB, POB)
        ]
        pipeline = platform.odke(search_engine)
        # platform.odke needs an annotator; give it the deployed-store one.
        platform._annotation["full"] = annotation
        report = pipeline.run(targets, fuse=True)
        assert report.fusion is not None and report.fusion.written > 0

        log_after = synthesize_query_log(deployed, [DOB, POB], 1500, now=kg.now, seed=5)
        rate_after = QueryLogAnalyzer(log_after).answer_rate()
        assert rate_after > rate_before

    def test_fused_facts_are_correct_with_trained_model(self, kg, corpus, search_engine):
        """Blogs plant wrong birth dates (30% of them), so naive majority
        voting writes bad facts for tail entities; the trained evidence
        model (the paper's §4 design) keeps fused facts precise."""
        from repro.odke.corroboration import train_corroboration_model
        from repro.odke.pipeline import build_training_examples

        deployed, held_out = hold_out_facts(kg, fraction=0.25, seed=33)
        annotation = make_pipeline(deployed, tier="full")
        platform = KnowledgePlatform(deployed, kg.ontology, now=kg.now)
        platform._annotation["full"] = annotation
        detector = GapDetector(deployed, kg.ontology, now=kg.now)
        targets = [
            t for t in detector.all_targets(include_stale=False)
            if t.predicate == DOB
        ][:80]
        train_targets, eval_targets = targets[::2], targets[1::2]
        truth_map = {
            (entity, DOB): dob for entity, dob in kg.truth.birth_dates.items()
        }
        base = platform.odke(search_engine)
        examples = build_training_examples(base, train_targets, truth_map)
        model = train_corroboration_model(examples)

        report = platform.odke(search_engine, corroboration_model=model).run(
            eval_targets, fuse=True
        )
        truth = kg.truth.birth_dates
        written_dobs = [
            fact for fact in (report.fusion.facts if report.fusion else [])
            if fact.predicate == DOB
        ]
        assert written_dobs
        correct = sum(1 for f in written_dobs if truth.get(f.subject) == f.obj)
        assert correct / len(written_dobs) > 0.8


class TestFreshAnnotationLoop:
    """§3.2: KG updates surface in annotations; crawl churn is incremental."""

    def test_new_entity_becomes_linkable(self, kg):
        from repro.kg.store import EntityRecord, TripleStore

        store = TripleStore()
        store.copy_entities_from(kg.store)
        for fact in kg.store.scan():
            store.add(fact)
        pipeline = make_pipeline(store, tier="lite")
        assert pipeline.annotate("Novella Quickbloom spoke today.") == []
        store.upsert_entity(
            EntityRecord(
                entity="entity:new-person", name="Novella Quickbloom",
                types=(ids.type_id("person"),), popularity=0.5,
            )
        )
        links = pipeline.annotate("Novella Quickbloom spoke today.")
        assert links and links[0].entity == "entity:new-person"

    def test_churn_quality_stable_across_snapshots(self, kg, corpus):
        from repro.annotation.web_annotator import WebAnnotator

        pipeline = make_pipeline(kg.store, tier="full")
        annotator = WebAnnotator(pipeline)
        annotator.annotate_corpus(corpus)
        simulator = CrawlSimulator(kg, corpus, change_fraction=0.15, new_fraction=0.02, seed=7)
        snapshot, delta = simulator.step()
        report = annotator.annotate_corpus(snapshot)
        assert report.docs_processed == delta.total
        predictions = {
            doc_id: annotated.links
            for doc_id, annotated in annotator.store.documents.items()
        }
        quality = evaluate_annotations(
            predictions, snapshot.documents, kg.truth.ambiguous_names
        )
        assert quality.f1 > 0.85


class TestEmbeddingsToServicesLoop:
    """§2: one trained model powers all four Figure 2 applications."""

    def test_one_model_four_services(self, kg):
        platform = KnowledgePlatform(kg.store, kg.ontology, now=kg.now)
        platform.train_embeddings(
            TrainConfig(model="complex", dim=16, epochs=10, seed=4)
        )
        person = next(
            p for p, order in kg.truth.occupation_order.items() if len(order) >= 2
        )
        assert platform.fact_ranker().rank(person, "predicate:occupation")
        verifier = platform.fact_verifier()
        assert verifier.calibration.auc > 0.6
        related = platform.related_entities("kge").related(person, k=5)
        assert related is not None
        annotator = platform.annotator("full")
        name = kg.store.entity(person).name
        links = annotator.annotate(f"{name} in the news")
        assert links
