"""Property-based invariants that cut across subsystems."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annotation.pipeline import make_pipeline
from repro.common.text import normalize_name
from repro.kg.store import EntityRecord, TripleStore
from repro.odke.extractors.base import normalize_date
from repro.web.search import BM25SearchEngine


class TestAnnotationOffsets:
    @settings(max_examples=20, deadline=None)
    @given(
        prefix=st.text(alphabet="abc XYZ.,", max_size=30),
        suffix=st.text(alphabet="abc XYZ.,", max_size=30),
    )
    def test_property_link_offsets_always_match_surface(self, prefix, suffix):
        """Wherever a known name lands in arbitrary text, the produced link
        span must slice back to exactly the mention surface."""
        store = TripleStore()
        store.upsert_entity(
            EntityRecord(
                entity="entity:x", name="Quorvin Blather််ski".replace("်", ""),
                popularity=0.9, types=("type:person",),
            )
        )
        name = store.entity("entity:x").name
        pipeline = make_pipeline(store, tier="lite")
        text = f"{prefix} {name} {suffix}"
        for link in pipeline.annotate(text):
            assert text[link.mention.start : link.mention.end] == link.mention.surface

    def test_annotation_idempotent(self, kg, full_annotation_pipeline):
        person = next(
            r for r in kg.store.entities() if "type:person" in r.types
        )
        text = f"{person.name} was in the news again today."
        first = full_annotation_pipeline.annotate(text)
        second = full_annotation_pipeline.annotate(text)
        assert [(link.mention, link.entity) for link in first] == [
            (link.mention, link.entity) for link in second
        ]


class TestSearchInvariants:
    def test_search_deterministic(self, corpus):
        engine_a = BM25SearchEngine(corpus)
        engine_b = BM25SearchEngine(corpus)
        for query in ("championship game", "born in", "music album"):
            a = [(r.doc_id, round(r.score, 9)) for r in engine_a.search(query, k=10)]
            b = [(r.doc_id, round(r.score, 9)) for r in engine_b.search(query, k=10)]
            assert a == b

    def test_results_contain_query_terms(self, corpus, search_engine):
        results = search_engine.search("basketball", k=10)
        for result in results:
            assert "basketball" in result.document.full_text.lower()


class TestDateNormalization:
    @given(
        year=st.integers(1900, 2030),
        month=st.integers(1, 12),
        day=st.integers(1, 28),
    )
    def test_property_long_format_roundtrips(self, year, month, day):
        from repro.web.corpus import format_date_long

        iso = f"{year:04d}-{month:02d}-{day:02d}"
        assert normalize_date(format_date_long(iso)) == iso

    @given(st.text(max_size=25))
    def test_property_never_raises(self, raw):
        result = normalize_date(raw)
        assert result is None or len(result) == 10


class TestNameNormalizationAgreement:
    @given(st.sampled_from([
        "Michael Jordan", "MICHAEL JORDAN", "michael jordan",
        " Michael  Jordan ", "Michael Jordan.",
    ]))
    def test_property_all_variants_share_one_key(self, variant):
        assert normalize_name(variant) == "michael jordan"


class TestStoreViewConsistency:
    def test_view_is_subset_of_base(self, kg):
        from repro.kg.views import embedding_training_view, materialize

        view = materialize(embedding_training_view(), kg.store)
        base_keys = {f.key for f in kg.store.scan()}
        for fact in view.store.scan():
            assert fact.key in base_keys

    def test_store_copy_preserves_scan_order_independence(self, kg):
        clone = TripleStore()
        clone.copy_entities_from(kg.store)
        for fact in kg.store.scan():
            clone.add(fact)
        assert {f.key for f in clone.scan()} == {f.key for f in kg.store.scan()}


class TestEmbeddingDeterminism:
    def test_two_pipelines_identical(self, kg):
        from repro.embeddings.pipeline import (
            EmbeddingPipelineConfig,
            run_embedding_pipeline,
        )
        from repro.embeddings.trainer import TrainConfig
        from repro.kg.views import embedding_training_view

        config = EmbeddingPipelineConfig(
            train=TrainConfig(model="distmult", dim=8, epochs=2, seed=11),
            view=embedding_training_view(min_predicate_frequency=3),
            eval_max_queries=10,
        )
        a = run_embedding_pipeline(kg.store, config)
        b = run_embedding_pipeline(kg.store, config)
        assert np.array_equal(a.trained.model.entity_emb, b.trained.model.entity_emb)
        assert a.evaluation.mrr == b.evaluation.mrr
