"""Multi-reader snapshots: concurrent readers match a single cold engine.

The serving tier's correctness rests on one property: a bundle's columnar
layers are immutable, so N concurrent readers — worker threads sharing one
loaded snapshot, or subprocesses each mapping the bundle — must produce
byte-identical walks and annotation spans to a single cold engine.  The
thread cases specifically hammer the lazily-materialised state the PR's
thread-safety fix guards: ``SnapshotStore``'s fact-log replay,
``CSRAdjacency``'s derived row caches, and ``AdjacencyIndex`` rebuilds.
"""

from __future__ import annotations

import multiprocessing
import threading

from repro.kg.persistence import load_snapshot

NUM_THREADS = 8
WALK_SEED = 13


def links_signature(links) -> list[tuple]:
    return [
        (link.mention.start, link.mention.end, link.mention.surface, link.entity)
        for link in links
    ]


def _read_bundle(args) -> tuple:
    """Subprocess entry: cold-load the bundle, answer the standard queries."""
    bundle_dir, seeds, texts = args
    snap = load_snapshot(bundle_dir)
    engine = snap.engine()
    walks = engine.random_walks(seeds, walk_length=6, walks_per_entity=3, seed=WALK_SEED)
    pipeline = snap.annotation_pipeline(tier="full")
    spans = [links_signature(pipeline.annotate(text)) for text in texts]
    return walks, spans


class TestThreadReaders:
    def test_shared_snapshot_threads_match_cold_engine(
        self, bundle_dir, seed_entities, sample_texts
    ):
        # Baseline: one cold engine, nothing shared.
        baseline_walks, baseline_spans = _read_bundle(
            (bundle_dir, seed_entities, sample_texts[:4])
        )

        # One shared snapshot; every thread traverses and annotates
        # concurrently, racing the lazy caches from cold.
        snap = load_snapshot(bundle_dir)
        engine = snap.engine()
        pipeline = snap.annotation_pipeline(tier="full")
        results: list[tuple] = [None] * NUM_THREADS
        errors: list[BaseException] = []
        barrier = threading.Barrier(NUM_THREADS)

        def reader(slot: int) -> None:
            try:
                barrier.wait()
                walks = engine.random_walks(
                    seed_entities, walk_length=6, walks_per_entity=3, seed=WALK_SEED
                )
                spans = [
                    links_signature(pipeline.annotate(text))
                    for text in sample_texts[:4]
                ]
                # Exercise the lazy fact replay and derived caches too.
                counts = engine.co_neighbor_counts(seed_entities[0])
                degree = len(snap.store)
                results[slot] = (walks, spans, counts, degree)
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=reader, args=(slot,)) for slot in range(NUM_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert all(result is not None for result in results)
        for walks, spans, counts, degree in results:
            assert walks == baseline_walks
            assert spans == baseline_spans
            assert counts == results[0][2]
            assert degree == results[0][3]

    def test_concurrent_fact_replay_is_consistent(self, bundle_dir, serving_kg):
        """All threads racing the lazy fact-log replay see the full graph."""
        snap = load_snapshot(bundle_dir)
        store = snap.store
        expected_facts = len(serving_kg.store)
        sizes: list[int] = []
        errors: list[BaseException] = []
        barrier = threading.Barrier(NUM_THREADS)

        def reader() -> None:
            try:
                barrier.wait()
                sizes.append(len(store))
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(NUM_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert sizes == [expected_facts] * NUM_THREADS

    def test_concurrent_derived_cache_builds(self, bundle_dir, seed_entities):
        """CSRAdjacency's lazy row caches survive a cold concurrent rush."""
        snap = load_snapshot(bundle_dir)
        adjacency = snap.adjacency
        assert adjacency is not None
        outputs: list[tuple] = []
        errors: list[BaseException] = []
        barrier = threading.Barrier(NUM_THREADS)

        def reader() -> None:
            try:
                barrier.wait()
                indptr, indices, degrees, strings = adjacency.lists()
                second_hop = adjacency.second_hop_string_rows()
                outputs.append(
                    (
                        len(indptr),
                        len(indices),
                        sum(degrees),
                        len(strings),
                        len(second_hop),
                    )
                )
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(NUM_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(set(outputs)) == 1
        assert outputs[0][1] == adjacency.num_edges


class TestProcessReaders:
    def test_subprocess_readers_match_cold_engine(
        self, bundle_dir, seed_entities, sample_texts
    ):
        baseline = _read_bundle((bundle_dir, seed_entities, sample_texts[:3]))
        with multiprocessing.Pool(2) as pool:
            replies = pool.map(
                _read_bundle,
                [(bundle_dir, seed_entities, sample_texts[:3])] * 2,
            )
        for walks, spans in replies:
            assert walks == baseline[0]
            assert spans == baseline[1]

    def test_embedding_backends_identical_across_modes(self, bundle_dir):
        """The lazily trained embedding suite is a deterministic replica:
        a subprocess worker's rankings/verdicts/similarities must be
        bit-identical to the in-process one's."""
        from repro.serving.requests import (
            FactRankRequest,
            SimilarityRequest,
            VerifyRequest,
        )
        from repro.serving.service import ServingService

        with ServingService(bundle_dir) as inline_svc:
            suite = inline_svc._pool.local_state.embedding_suite()
            dataset = suite.trained.dataset
            triples = [dataset.decode(*map(int, row)) for row in dataset.triples[:3]]
            requests = [
                FactRankRequest(entities=(triples[0][0],), predicate=dataset.relations[0]),
                VerifyRequest(candidates=tuple(triples)),
                SimilarityRequest(pairs=((dataset.entities[0], dataset.entities[1]),)),
            ]
            inline_answers = [inline_svc.serve(r).payload for r in requests]
        with ServingService(bundle_dir, mode="process", num_workers=1) as proc_svc:
            proc_answers = [proc_svc.serve(r).payload for r in requests]
        assert proc_answers == inline_answers
