"""Serving-suite fixtures: one persisted bundle of a small synthetic world."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.kg.generator import SyntheticKG, SyntheticKGConfig, generate_kg
from repro.kg.persistence import save_snapshot


@pytest.fixture(scope="session")
def serving_kg() -> SyntheticKG:
    """A compact world for serving tests (read-only)."""
    return generate_kg(SyntheticKGConfig(seed=7, scale=0.2))


@pytest.fixture(scope="session")
def bundle_dir(serving_kg: SyntheticKG, tmp_path_factory) -> Path:
    """One persisted snapshot bundle every serving test loads (read-only)."""
    directory = tmp_path_factory.mktemp("serving-bundle")
    save_snapshot(serving_kg.store, directory)
    return directory


@pytest.fixture(scope="session")
def seed_entities(serving_kg: SyntheticKG) -> list[str]:
    """A deterministic slice of entity ids to query with."""
    return sorted(serving_kg.store.entity_ids())[:12]


@pytest.fixture(scope="session")
def sample_texts(serving_kg: SyntheticKG) -> list[str]:
    """Documents whose mentions resolve to real KG entities."""
    names = [
        serving_kg.store.entity(entity).name
        for entity in sorted(serving_kg.store.entity_ids())[:40]
    ]
    return [
        f"{names[3 * i]} met {names[3 * i + 1]} and discussed {names[3 * i + 2]}."
        for i in range(12)
    ]
