"""WorkerState + WorkerPool: request execution and executor parity."""

import pytest

from repro.kg.persistence import load_snapshot
from repro.serving.requests import (
    AnnotateRequest,
    NeighborhoodRequest,
    RelatedRequest,
    WalkRequest,
)
from repro.serving.worker import (
    WorkerPool,
    WorkerState,
    entity_walk_seed,
)


@pytest.fixture(scope="module")
def worker(bundle_dir) -> WorkerState:
    return WorkerState(bundle_dir)


class TestWorkerState:
    def test_walks_match_per_entity_engine_calls(self, bundle_dir, worker, seed_entities):
        request = WalkRequest(entities=tuple(seed_entities), seed=11)
        served = worker.execute(request)
        cold = load_snapshot(bundle_dir).engine()
        expected = [
            cold.random_walks(
                [entity],
                walk_length=request.walk_length,
                walks_per_entity=request.walks_per_entity,
                seed=entity_walk_seed(11, entity),
            )
            for entity in seed_entities
        ]
        assert served == expected

    def test_walk_seed_derivation_is_stable_and_distinct(self):
        assert entity_walk_seed(3, "entity:a") == entity_walk_seed(3, "entity:a")
        assert entity_walk_seed(3, "entity:a") != entity_walk_seed(4, "entity:a")
        assert entity_walk_seed(3, "entity:a") != entity_walk_seed(3, "entity:b")

    def test_neighborhoods_are_sorted_engine_results(self, bundle_dir, worker, seed_entities):
        served = worker.execute(NeighborhoodRequest(entities=tuple(seed_entities[:5]), hops=2))
        cold = load_snapshot(bundle_dir).engine()
        assert served == [
            sorted(cold.neighborhood(entity, hops=2)) for entity in seed_entities[:5]
        ]

    def test_related_entities_reuse_worker_engine(self, worker, seed_entities):
        results = worker.execute(RelatedRequest(entities=tuple(seed_entities[:3]), k=5))
        assert len(results) == 3
        for hits in results:
            assert len(hits) <= 5
            for entity, score in hits:
                assert isinstance(entity, str) and isinstance(score, float)
        # The backend adopted the worker's engine (no second CSR build).
        assert worker.related_backend().engine is worker.engine

    def test_annotation_matches_per_document_pipeline(self, worker, sample_texts):
        served = worker.execute(AnnotateRequest(texts=tuple(sample_texts[:4])))
        reference_pipeline = worker.snapshot.annotation_pipeline(tier="full")
        for links, text in zip(served, sample_texts[:4]):
            expected = reference_pipeline.annotate(text)
            assert [
                (link.mention.start, link.mention.end, link.mention.surface, link.entity)
                for link in links
            ] == [
                (link.mention.start, link.mention.end, link.mention.surface, link.entity)
                for link in expected
            ]

    def test_unsupported_request_type(self, worker):
        with pytest.raises(TypeError):
            worker.execute(object())


class TestWorkerPool:
    def test_mode_validation(self, bundle_dir):
        with pytest.raises(ValueError):
            WorkerPool(bundle_dir, mode="quantum")
        with pytest.raises(ValueError):
            WorkerPool(bundle_dir, num_workers=0)

    def test_inline_and_thread_modes_agree(self, bundle_dir, seed_entities):
        request = WalkRequest(entities=tuple(seed_entities), seed=5)
        with WorkerPool(bundle_dir, mode="inline") as inline:
            inline_result = inline.run(request)
        with WorkerPool(bundle_dir, mode="thread", num_workers=4) as threaded:
            thread_result = threaded.run(request)
        assert inline_result == thread_result

    def test_process_mode_agrees(self, bundle_dir, seed_entities, sample_texts):
        walk_request = WalkRequest(entities=tuple(seed_entities), seed=5)
        annotate_request = AnnotateRequest(texts=tuple(sample_texts[:3]))
        with WorkerPool(bundle_dir, mode="inline") as inline:
            expected_walks = inline.run(walk_request)
            expected_links = inline.run(annotate_request)
        with WorkerPool(bundle_dir, mode="process", num_workers=2) as procs:
            assert procs.run(walk_request) == expected_walks
            served_links = procs.run(annotate_request)
        assert [
            [(link.mention.start, link.mention.end, link.entity) for link in links]
            for links in served_links
        ] == [
            [(link.mention.start, link.mention.end, link.entity) for link in links]
            for links in expected_links
        ]

    def test_map_preserves_request_order(self, bundle_dir, seed_entities):
        requests = [
            WalkRequest(entities=(entity,), seed=2) for entity in seed_entities[:6]
        ]
        with WorkerPool(bundle_dir, mode="thread", num_workers=3) as pool:
            mapped = pool.map(requests)
            expected = [pool.run(request) for request in requests]
        assert mapped == expected

    def test_metrics_and_stats(self, bundle_dir, seed_entities):
        with WorkerPool(bundle_dir, mode="inline") as pool:
            pool.run(WalkRequest(entities=tuple(seed_entities[:2])))
            pool.run(NeighborhoodRequest(entities=tuple(seed_entities[:2])))
            stats = pool.stats()
        assert stats["counter.pool.requests"] == 2.0
        assert stats["counter.pool.requests.WalkRequest"] == 1.0
        assert stats["hist.pool.latency.count"] == 2.0
        assert stats["pool.workers"] == 1.0

    def test_closed_pool_rejects_requests(self, bundle_dir):
        pool = WorkerPool(bundle_dir, mode="inline")
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError):
            pool.submit(WalkRequest(entities=("x",)))

    def test_store_version_matches_bundle(self, bundle_dir, serving_kg):
        with WorkerPool(bundle_dir, mode="inline") as pool:
            assert pool.store_version == serving_kg.store.version
