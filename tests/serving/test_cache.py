"""QueryCache: versioned LRU with structural invalidation."""

import threading

import pytest

from repro.serving.cache import QueryCache
from repro.serving.requests import WalkRequest


def walk(seed: int) -> WalkRequest:
    return WalkRequest(entities=("e",), seed=seed)


class TestLRU:
    def test_get_put_round_trip(self):
        cache = QueryCache(capacity=4)
        assert cache.get(1, walk(0)) is None
        cache.put(1, walk(0), ["result"])
        assert cache.get(1, walk(0)) == ["result"]

    def test_capacity_evicts_least_recently_used(self):
        cache = QueryCache(capacity=2)
        cache.put(1, walk(0), "a")
        cache.put(1, walk(1), "b")
        assert cache.get(1, walk(0)) == "a"  # refresh 0
        cache.put(1, walk(2), "c")  # evicts 1
        assert cache.get(1, walk(1)) is None
        assert cache.get(1, walk(0)) == "a"
        assert cache.get(1, walk(2)) == "c"

    def test_version_isolates_entries(self):
        cache = QueryCache(capacity=4)
        cache.put(1, walk(0), "v1")
        assert cache.get(2, walk(0)) is None
        cache.put(2, walk(0), "v2")
        assert cache.get(1, walk(0)) == "v1"
        assert cache.get(2, walk(0)) == "v2"

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            QueryCache(capacity=0)


class TestGenerationInvalidation:
    def test_adopt_version_purges_other_generations(self):
        cache = QueryCache(capacity=8)
        cache.put(1, walk(0), "old")
        cache.put(1, walk(1), "old2")
        cache.put(2, walk(0), "new")
        dropped = cache.adopt_version(2)
        assert dropped == 2
        assert len(cache) == 1
        assert cache.get(2, walk(0)) == "new"
        assert cache.get(1, walk(0)) is None

    def test_adopt_same_version_is_noop(self):
        cache = QueryCache(capacity=8)
        cache.put(3, walk(0), "keep")
        assert cache.adopt_version(3) == 0
        assert cache.get(3, walk(0)) == "keep"


class TestCounters:
    def test_hit_rate(self):
        cache = QueryCache(capacity=4)
        cache.get(1, walk(0))  # miss
        cache.put(1, walk(0), "x")
        cache.get(1, walk(0))  # hit
        cache.get(1, walk(0))  # hit
        assert cache.hit_rate == pytest.approx(2 / 3)
        assert cache.hits == 2
        assert cache.misses == 1

    def test_eviction_counter(self):
        cache = QueryCache(capacity=1)
        cache.put(1, walk(0), "a")
        cache.put(1, walk(1), "b")
        assert cache.evictions == 1


class TestWarming:
    def test_warm_inserts_entries(self):
        cache = QueryCache(capacity=8)
        entries = [(walk(i), f"r{i}") for i in range(3)]
        assert cache.warm(5, entries) == 3
        assert len(cache) == 3
        assert cache.get(5, walk(1)) == "r1"

    def test_warm_applies_admission_policy(self):
        from repro.serving.requests import AnnotateRequest

        cache = QueryCache(capacity=8)
        admitted = cache.warm(
            1,
            [
                (AnnotateRequest(texts=("a", "b")), "batch"),  # non-cacheable
                (AnnotateRequest(texts=("a",)), "single"),
                (walk(0), "walks"),
            ],
        )
        assert admitted == 2
        assert cache.get(1, AnnotateRequest(texts=("a", "b"))) is None
        assert cache.get(1, AnnotateRequest(texts=("a",))) == "single"

    def test_warm_entries_age_out_like_any_other(self):
        cache = QueryCache(capacity=2)
        cache.warm(1, [(walk(0), "a"), (walk(1), "b"), (walk(2), "c")])
        assert len(cache) == 2
        assert cache.get(1, walk(0)) is None  # evicted by the warm overrun


class TestThreadSafety:
    def test_concurrent_mixed_traffic(self):
        cache = QueryCache(capacity=64)
        errors: list[BaseException] = []

        def hammer(worker: int) -> None:
            try:
                for i in range(300):
                    request = walk(i % 40)
                    value = cache.get(1, request)
                    if value is not None:
                        assert value == f"r{i % 40}"
                    cache.put(1, request, f"r{i % 40}")
                    if i % 50 == 0:
                        cache.adopt_version(1)
            except BaseException as exc:  # propagated to the main thread
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64

    def test_family_stats_race_with_new_families(self):
        """A /stats scrape iterating counters must not race the first
        request of a new family inserting its counter key (pre-fix:
        RuntimeError: dictionary changed size during iteration)."""
        cache = QueryCache(capacity=8)
        errors: list[BaseException] = []
        stop = threading.Event()

        def scrape() -> None:
            try:
                while not stop.is_set():
                    cache.family_stats()
            except BaseException as exc:  # propagated to the main thread
                errors.append(exc)

        thread = threading.Thread(target=scrape)
        thread.start()
        try:
            for i in range(2000):
                cache.metrics.incr(f"cache.hits.fam{i}")
        finally:
            stop.set()
            thread.join()
        assert not errors
        assert cache.family_stats()["fam0"] == {"hits": 1}
