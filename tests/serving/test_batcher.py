"""MicroBatcher: coalescing, flush triggers, error propagation."""

import pytest

from repro.serving.batcher import MicroBatcher


class RecordingFlush:
    """A flush_fn that records every batch it receives."""

    def __init__(self, fail: bool = False, short: bool = False) -> None:
        self.batches: list[list[str]] = []
        self.fail = fail
        self.short = short

    def __call__(self, texts: list[str]) -> list[str]:
        self.batches.append(list(texts))
        if self.fail:
            raise RuntimeError("downstream exploded")
        results = [f"linked:{text}" for text in texts]
        return results[:-1] if self.short else results


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestCoalescing:
    def test_size_threshold_flushes(self):
        flush = RecordingFlush()
        batcher = MicroBatcher(flush, max_batch=3, max_delay_s=10.0)
        futures = [batcher.submit(f"t{i}") for i in range(3)]
        # Third submit crossed the size threshold: one downstream call.
        assert flush.batches == [["t0", "t1", "t2"]]
        assert [f.result() for f in futures] == ["linked:t0", "linked:t1", "linked:t2"]
        assert batcher.pending == 0

    def test_partial_batch_waits_for_flush(self):
        flush = RecordingFlush()
        batcher = MicroBatcher(flush, max_batch=10, max_delay_s=10.0)
        future = batcher.submit("only")
        assert flush.batches == []
        assert batcher.pending == 1
        assert batcher.flush() == 1
        assert future.result() == "linked:only"

    def test_annotate_many_chunks_at_batch_size(self):
        flush = RecordingFlush()
        batcher = MicroBatcher(flush, max_batch=4, max_delay_s=10.0)
        results = batcher.annotate_many([f"t{i}" for i in range(10)])
        assert results == [f"linked:t{i}" for i in range(10)]
        assert [len(batch) for batch in flush.batches] == [4, 4, 2]

    def test_flush_on_empty_queue_is_noop(self):
        flush = RecordingFlush()
        batcher = MicroBatcher(flush)
        assert batcher.flush() == 0
        assert flush.batches == []


class TestDeadline:
    def test_stale_backlog_flushes_before_new_submit(self):
        flush = RecordingFlush()
        clock = FakeClock()
        batcher = MicroBatcher(flush, max_batch=100, max_delay_s=0.01, clock=clock)
        first = batcher.submit("old")
        clock.now = 0.02  # beyond the delay threshold
        batcher.submit("new")
        # The stale backlog flushed on its own; the new text starts a batch.
        assert flush.batches == [["old"]]
        assert first.result() == "linked:old"
        assert batcher.pending == 1

    def test_fresh_backlog_keeps_coalescing(self):
        flush = RecordingFlush()
        clock = FakeClock()
        batcher = MicroBatcher(flush, max_batch=100, max_delay_s=0.01, clock=clock)
        batcher.submit("a")
        clock.now = 0.005  # within the window
        batcher.submit("b")
        assert flush.batches == []
        batcher.flush()
        assert flush.batches == [["a", "b"]]


class TestErrors:
    def test_downstream_error_reaches_every_waiter(self):
        batcher = MicroBatcher(RecordingFlush(fail=True), max_batch=2)
        f1 = batcher.submit("a")
        f2 = batcher.submit("b")
        with pytest.raises(RuntimeError, match="downstream exploded"):
            f1.result()
        with pytest.raises(RuntimeError, match="downstream exploded"):
            f2.result()
        # The batcher stays usable after a failed flush.
        assert batcher.pending == 0

    def test_result_count_mismatch_is_an_error(self):
        batcher = MicroBatcher(RecordingFlush(short=True), max_batch=2)
        f1 = batcher.submit("a")
        f2 = batcher.submit("b")
        with pytest.raises(RuntimeError, match="results for"):
            f1.result()
        with pytest.raises(RuntimeError, match="results for"):
            f2.result()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MicroBatcher(RecordingFlush(), max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(RecordingFlush(), max_delay_s=-1.0)


class TestMetrics:
    def test_counters(self):
        flush = RecordingFlush()
        batcher = MicroBatcher(flush, max_batch=2, max_delay_s=10.0)
        batcher.annotate_many(["a", "b", "c"])
        counters = batcher.metrics.counters
        assert counters["batcher.submitted"] == 3
        assert counters["batcher.flushes"] == 2
        assert counters["batcher.size_flushes"] == 1

    def test_flush_latency_histogram(self):
        flush = RecordingFlush()
        batcher = MicroBatcher(flush, max_batch=2, max_delay_s=10.0)
        batcher.annotate_many(["a", "b", "c"])
        histogram = batcher.metrics.histograms["batcher.flush_latency"]
        assert histogram.count == 2  # one full batch + the drained tail
        assert histogram.max >= 0.0
