"""Multi-tenant serving: registry lifecycle, isolation, swaps, caching.

The pins the ISSUE demands: ≥8 tenants answering byte-identically to a
single-tenant run, canary facts that never leak across tenants (including
across a concurrent shared-generation swap), LRU eviction with crash-safe
cold re-attach, and per-(tenant, tenant_version) cache keys.
"""

from __future__ import annotations

import threading

import pytest

from repro.common import ids
from repro.kg import SyntheticKGConfig, generate_kg
from repro.kg.adjacency import build_csr
from repro.kg.deltas import GenerationPublisher
from repro.kg.store import EntityRecord
from repro.kg.triple import entity_fact
from repro.serving.requests import (
    ERROR_BAD_REQUEST,
    ERROR_UNAVAILABLE,
    NeighborhoodRequest,
    PersonalRecord,
    RelatedRequest,
    TenantDeleteRequest,
    TenantSyncRequest,
    TenantUpsertRequest,
    WalkRequest,
)
from repro.serving.service import ServingService
from repro.serving.tenancy import TenantNotFound, TenantRegistry

PERSON = ids.entity_id("personal/person-0000")


def canary_record(tenant_no: int, target: str, *, sequence: int = 1) -> PersonalRecord:
    """One contact record whose name and shared-graph link are unique to
    ``tenant_no`` — the leak detector every isolation sweep greps for."""
    return PersonalRecord(
        record_id=f"c{tenant_no:03d}",
        source="contacts",
        fields=(
            ("first_name", f"Canary{tenant_no:02d}"),
            ("last_name", "Holder"),
            ("linked_entity", target),
            ("phone", f"+1-555-01{tenant_no:02d}"),
        ),
        sequence=sequence,
    )


@pytest.fixture(scope="module")
def shared_world():
    kg = generate_kg(SyntheticKGConfig(seed=23, scale=0.05))
    return kg, build_csr(kg.store), sorted(kg.store.entity_ids())


def make_registry(tmp_path, shared_world, name="tenants", **kwargs):
    _kg, base, _entities = shared_world
    return TenantRegistry(tmp_path / name, base=base, **kwargs)


def populate(registry, entities, tenant_nos) -> dict[str, str]:
    """Create one canary tenant per number; returns tenant -> target."""
    targets = {}
    for n in tenant_nos:
        tenant = f"tenant-{n:02d}"
        target = entities[n % len(entities)]
        registry.upsert(tenant, [canary_record(n, target)])
        targets[tenant] = target
    return targets


class TestRegistryIsolation:
    def test_eight_tenants_never_see_each_other(self, tmp_path, shared_world):
        _kg, _base, entities = shared_world
        registry = make_registry(tmp_path, shared_world)
        targets = populate(registry, entities, range(8))
        assert len(set(targets.values())) == 8
        for tenant, target in targets.items():
            hood = registry.execute_read(
                tenant, NeighborhoodRequest(entities=(PERSON,), hops=1)
            )[0]
            assert target in hood
            leaked = set(hood) & (set(targets.values()) - {target})
            assert not leaked, f"{tenant} leaked {leaked}"

    def test_byte_identical_to_single_tenant_run(self, tmp_path, shared_world):
        """A tenant sharing the registry with 7 others answers exactly as
        it would alone — the multiplexing is invisible to results."""
        _kg, _base, entities = shared_world
        fleet = make_registry(tmp_path, shared_world, name="fleet")
        populate(fleet, entities, range(8))
        solo = make_registry(tmp_path, shared_world, name="solo")
        populate(solo, entities, [3])

        walk = WalkRequest(
            entities=(PERSON,), walk_length=6, walks_per_entity=4, seed=41
        )
        hood = NeighborhoodRequest(entities=(PERSON,), hops=2)
        assert fleet.execute_read("tenant-03", walk) == solo.execute_read(
            "tenant-03", walk
        )
        assert fleet.execute_read("tenant-03", hood) == solo.execute_read(
            "tenant-03", hood
        )

    def test_unknown_tenant_raises(self, tmp_path, shared_world):
        registry = make_registry(tmp_path, shared_world)
        with pytest.raises(TenantNotFound):
            registry.execute_read(
                "nobody", NeighborhoodRequest(entities=(PERSON,), hops=1)
            )

    def test_sync_round_trip_and_dp_count(self, tmp_path, shared_world):
        _kg, _base, entities = shared_world
        registry = make_registry(tmp_path, shared_world)
        payload = registry.sync(
            "sync-tenant", records=[canary_record(1, entities[0])], epsilon=2.0
        )
        assert payload["tenant_version"] >= 1
        assert payload["people"] and payload["people"][0]["name"].startswith(
            "Canary01"
        )
        # The device already holds its own record; nothing comes back.
        assert payload["records"] == []
        # DP, not exact: the noised count is a float, and two versions of
        # the store draw different noise (seeded by tenant+version).
        assert isinstance(payload["dp_record_count"], float)

        # A second, empty-handed device learns the record via sync.
        fresh = registry.sync("sync-tenant")
        assert [r["record_id"] for r in fresh["records"]] == ["c001"]

    def test_delete_tombstone_suppresses_and_lww_resurrects(
        self, tmp_path, shared_world
    ):
        _kg, _base, entities = shared_world
        registry = make_registry(tmp_path, shared_world)
        registry.upsert("t", [canary_record(5, entities[5])])
        assert registry.delete("t", "contacts", "c005")["deleted"]
        # Replaying the same-sequence record after the delete is a no-op
        # (delete wins ties) ...
        result = registry.upsert("t", [canary_record(5, entities[5])])
        assert result["applied"] == 0 and result["skipped"] == 1
        # ... but a strictly newer write resurrects.
        result = registry.upsert("t", [canary_record(5, entities[5], sequence=9)])
        assert result["applied"] == 1
        hood = registry.execute_read(
            "t", NeighborhoodRequest(entities=(PERSON,), hops=1)
        )[0]
        assert entities[5] in hood


class TestRegistryLifecycle:
    def test_lru_eviction_and_cold_reattach(self, tmp_path, shared_world):
        _kg, _base, entities = shared_world
        registry = make_registry(tmp_path, shared_world, max_resident=2)
        targets = populate(registry, entities, range(4))
        assert registry.resident_count() == 2
        assert registry.evictions == 2
        assert registry.list_tenants() == sorted(targets)
        # The evicted tenant cold-attaches from its bundle with state
        # intact — version, records, and answers all survive residency.
        state = registry.get("tenant-00")
        assert state.records[("contacts", "c000")].fields["first_name"] == "Canary00"
        hood = registry.execute_read(
            "tenant-00", NeighborhoodRequest(entities=(PERSON,), hops=1)
        )[0]
        assert targets["tenant-00"] in hood

    def test_crash_safe_reload_preserves_everything(self, tmp_path, shared_world):
        _kg, _base, entities = shared_world
        first = make_registry(tmp_path, shared_world)
        first.upsert("durable", [canary_record(2, entities[2])])
        first.upsert("durable", [canary_record(7, entities[7])])
        first.delete("durable", "contacts", "c007")
        version = first.tenant_version("durable")
        answer = first.execute_read(
            "durable", NeighborhoodRequest(entities=(PERSON,), hops=1)
        )
        first.close()  # simulated crash: only the durable bundles remain

        second = make_registry(tmp_path, shared_world)
        state = second.get("durable")
        assert state.version == version
        assert set(state.records) == {("contacts", "c002")}
        assert state.tombstones[("contacts", "c007")] == 1
        assert (
            second.execute_read(
                "durable", NeighborhoodRequest(entities=(PERSON,), hops=1)
            )
            == answer
        )

    def test_lease_pins_against_eviction(self, tmp_path, shared_world):
        """A leased tenant survives LRU overflow (and explicit evict)
        until released — eviction mid-request could otherwise re-attach
        the same tenant and run two publishers over one chain."""
        _kg, _base, entities = shared_world
        registry = make_registry(tmp_path, shared_world, max_resident=1)
        registry.upsert("pinned", [canary_record(0, entities[0])])
        with registry.lease("pinned") as leased:
            assert not registry.evict("pinned")
            # Attaching others overflows the LRU, but the pinned slot
            # defers its eviction to the release below.
            registry.upsert("other", [canary_record(1, entities[1])])
            with registry.lease("pinned") as again:
                assert again is leased  # still the same resident state
        # Released: the overflow already trimmed back to max_resident
        # (the unpinned "other" went instead), and the explicit evict
        # that was refused above now succeeds.
        assert registry.resident_count() == 1
        assert registry.evict("pinned")
        assert registry.resident_count() == 0
        assert registry.exists("pinned")  # durable on disk either way

    def test_concurrent_writes_under_tiny_lru_lose_nothing(
        self, tmp_path, shared_world
    ):
        """Writers hammer two tenants through a max_resident=1 registry —
        constant eviction pressure — and every durable record survives a
        cold reload (no publisher ever ran concurrently with its twin)."""
        _kg, _base, entities = shared_world
        registry = make_registry(tmp_path, shared_world, max_resident=1)
        per_tenant = 6
        errors: list = []

        def writer(tenant: str, offset: int) -> None:
            try:
                for i in range(per_tenant):
                    n = offset + i
                    registry.upsert(
                        tenant, [canary_record(n, entities[n % len(entities)])]
                    )
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append((tenant, exc))

        threads = [
            threading.Thread(target=writer, args=(tenant, offset))
            for tenant in ("alpha", "beta")
            for offset in (0, per_tenant)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert not errors, errors[:3]
        registry.close()

        reloaded = make_registry(tmp_path, shared_world, max_resident=2)
        for tenant in ("alpha", "beta"):
            state = reloaded.get(tenant)
            assert set(state.records) == {
                ("contacts", f"c{n:03d}") for n in range(2 * per_tenant)
            }, tenant

    def test_invalid_tenant_ids_are_rejected(self, tmp_path, shared_world):
        from repro.serving.tenancy import TenantError

        registry = make_registry(tmp_path, shared_world)
        for bad in ("../escape", "", ".hidden", "a/b", "x" * 65):
            with pytest.raises(TenantError):
                registry.get(bad, create=True)
            assert not registry.exists(bad)

    def test_rebind_base_picks_up_grown_shared_graph(self, tmp_path):
        kg = generate_kg(SyntheticKGConfig(seed=29, scale=0.05))
        entities = sorted(kg.store.entity_ids())
        registry = TenantRegistry(tmp_path / "tenants", base=build_csr(kg.store))
        registry.upsert("grower", [canary_record(0, entities[0])])

        newcomer = ids.entity_id("grown/swap-witness")
        kg.store.upsert_entity(EntityRecord(entity=newcomer, name="Witness"))
        kg.store.add(
            entity_fact(
                newcomer, ids.predicate_id("knows"), entities[0], sources=("g",)
            )
        )
        registry.rebind_base(build_csr(kg.store))
        hood2 = registry.execute_read(
            "grower", NeighborhoodRequest(entities=(PERSON,), hops=2)
        )[0]
        # Two hops from the person: canary link, then the *new* shared
        # edge published after the tenant was created.
        assert newcomer in hood2


@pytest.fixture()
def tenant_service(bundle_dir, tmp_path):
    service = ServingService(
        bundle_dir, mode="inline", tenants_dir=tmp_path / "tenants"
    )
    yield service
    service.close()


class TestServiceDispatch:
    def test_end_to_end_upsert_then_read(self, tenant_service, seed_entities):
        upsert = tenant_service.serve(
            TenantUpsertRequest(records=(canary_record(1, seed_entities[1]),)),
            tenant="alice",
        )
        assert upsert.ok and upsert.payload["applied"] == 1
        read = tenant_service.serve(
            NeighborhoodRequest(entities=(PERSON,), hops=1), tenant="alice"
        )
        assert read.ok and seed_entities[1] in read.payload[0]
        # The shared graph never sees tenant facts: the same request
        # without a tenant answers over a dictionary with no person node.
        shared = tenant_service.serve(NeighborhoodRequest(entities=(PERSON,), hops=1))
        assert shared.ok and shared.payload[0] == []

    @pytest.mark.parametrize("mode", ["inline", "thread", "process"])
    def test_every_fleet_mode_serves_tenants(
        self, bundle_dir, tmp_path, seed_entities, mode
    ):
        """Tenant dispatch happens before pool fan-out, so every worker
        fleet shape serves identical tenant answers."""
        with ServingService(
            bundle_dir, mode=mode, tenants_dir=tmp_path / f"tenants-{mode}"
        ) as service:
            service.serve(
                TenantUpsertRequest(records=(canary_record(4, seed_entities[4]),)),
                tenant="modal",
            )
            walk = service.serve(
                WalkRequest(
                    entities=(PERSON,), walk_length=5, walks_per_entity=3, seed=11
                ),
                tenant="modal",
            )
            assert walk.ok
            flat = {node for walk_ in walk.payload[0] for node in walk_}
            assert PERSON in flat

    def test_tenant_cache_keys_hit_and_invalidate(
        self, tenant_service, seed_entities
    ):
        request = NeighborhoodRequest(entities=(PERSON,), hops=1)
        tenant_service.serve(
            TenantUpsertRequest(records=(canary_record(2, seed_entities[2]),)),
            tenant="bob",
        )
        first = tenant_service.serve(request, tenant="bob")
        second = tenant_service.serve(request, tenant="bob")
        assert not first.cached and second.cached
        assert second.payload == first.payload
        # A tenant write bumps tenant_version: structural invalidation.
        # (Same record_id at a higher sequence — LWW moves the canary's
        # shared-graph link, so the fresh answer must differ.)
        tenant_service.serve(
            TenantUpsertRequest(
                records=(
                    PersonalRecord(
                        record_id="c002",
                        source="contacts",
                        fields=(
                            ("first_name", "Canary02"),
                            ("last_name", "Holder"),
                            ("linked_entity", seed_entities[3]),
                        ),
                        sequence=2,
                    ),
                )
            ),
            tenant="bob",
        )
        third = tenant_service.serve(request, tenant="bob")
        assert not third.cached
        assert seed_entities[3] in third.payload[0]
        assert seed_entities[2] not in third.payload[0]

    def test_cache_never_crosses_tenants(self, tenant_service, seed_entities):
        request = NeighborhoodRequest(entities=(PERSON,), hops=1)
        for name, n in (("carol", 5), ("dave", 6)):
            tenant_service.serve(
                TenantUpsertRequest(records=(canary_record(n, seed_entities[n]),)),
                tenant=name,
            )
            tenant_service.serve(request, tenant=name)  # warm each key
        carol = tenant_service.serve(request, tenant="carol")
        dave = tenant_service.serve(request, tenant="dave")
        assert carol.cached and dave.cached
        assert seed_entities[5] in carol.payload[0]
        assert seed_entities[5] not in dave.payload[0]
        assert seed_entities[6] in dave.payload[0]

    def test_cache_family_stats_expose_tenant_traffic(
        self, tenant_service, seed_entities
    ):
        request = NeighborhoodRequest(entities=(PERSON,), hops=1)
        tenant_service.serve(
            TenantUpsertRequest(records=(canary_record(1, seed_entities[1]),)),
            tenant="erin",
        )
        tenant_service.serve(request, tenant="erin")
        tenant_service.serve(request, tenant="erin")
        families = tenant_service.cache_family_stats()
        assert families["neighborhood"]["misses"] >= 1
        assert families["neighborhood"]["hits"] >= 1
        body = tenant_service.prometheus_metrics()
        assert 'kg_cache_hits_by_type_total{type="neighborhood"}' in body
        assert 'kg_tenant_ops_by_kind_total{kind="upserts"}' in body

    def test_error_codes(self, tenant_service, bundle_dir):
        # Tenant family without an envelope tenant: bad_request.
        response = tenant_service.serve(TenantDeleteRequest(source="s", record_id="r"))
        assert response.status == "error"
        assert response.error.code == ERROR_BAD_REQUEST
        # Unknown tenant on a read: bad_request, not internal.
        response = tenant_service.serve(
            NeighborhoodRequest(entities=(PERSON,), hops=1), tenant="ghost"
        )
        assert response.error.code == ERROR_BAD_REQUEST
        # Non-overlay request types refuse tenant scoping.
        response = tenant_service.serve(
            RelatedRequest(entities=(PERSON,), k=3), tenant="ghost"
        )
        assert response.error.code == ERROR_BAD_REQUEST
        # Tenancy disabled entirely: unavailable.
        with ServingService(bundle_dir, mode="inline") as bare:
            response = bare.serve(TenantSyncRequest(), tenant="anyone")
            assert response.error.code == ERROR_UNAVAILABLE


class TestConcurrentSwapSweep:
    def test_canaries_survive_a_live_shared_swap(self, tmp_path):
        """Readers hammer 8 tenants while the shared bundle swaps
        generations underneath: zero failed requests, zero leaks."""
        kg = generate_kg(SyntheticKGConfig(seed=31, scale=0.05))
        entities = sorted(kg.store.entity_ids())
        bundle = tmp_path / "bundle"
        publisher = GenerationPublisher(kg.store, bundle, embeddings=False)
        service = ServingService(
            bundle, mode="inline", tenants_dir=tmp_path / "tenants"
        )
        try:
            targets = {}
            for n in range(8):
                tenant = f"swap-{n}"
                target = entities[n]
                targets[tenant] = target
                service.serve(
                    TenantUpsertRequest(records=(canary_record(n, target),)),
                    tenant=tenant,
                )
            failures: list = []
            leaks: list = []
            stop = threading.Event()

            def reader(offset: int) -> None:
                round_no = 0
                while not stop.is_set():
                    for tenant, target in targets.items():
                        response = service.serve(
                            NeighborhoodRequest(entities=(PERSON,), hops=1),
                            tenant=tenant,
                        )
                        if not response.ok:
                            failures.append((tenant, response.error))
                            continue
                        hood = set(response.payload[0])
                        if target not in hood:
                            leaks.append((tenant, "missing-canary"))
                        foreign = hood & (set(targets.values()) - {target})
                        if foreign:
                            leaks.append((tenant, foreign))
                    round_no += 1

            threads = [
                threading.Thread(target=reader, args=(i,)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            # Two generation swaps under live tenant traffic.
            for round_no in range(2):
                grown = ids.entity_id(f"grown/mid-swap-{round_no}")
                kg.store.upsert_entity(EntityRecord(entity=grown, name="Grown"))
                fact = entity_fact(
                    grown, ids.predicate_id("knows"), entities[round_no], sources=("g",)
                )
                kg.store.add(fact)
                publisher.record(keys=[fact.key], entities=[grown])
                publisher.publish()
                publisher.join_compaction()
                service.adopt_generation(bundle)
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)
            assert not failures, failures[:3]
            assert not leaks, leaks[:3]
            assert service.store_version == kg.store.version
        finally:
            service.close()
