"""Live growth on the serving side: watcher swaps + the cache swap race."""

import threading

import pytest

from repro.common import ids
from repro.kg import SyntheticKGConfig, generate_kg
from repro.kg.deltas import GenerationPublisher
from repro.serving.cache import QueryCache
from repro.serving.growth import GenerationWatcher
from repro.serving.requests import NeighborhoodRequest
from repro.serving.service import ServingService
from repro.kg.triple import entity_fact

RELATED = ids.predicate_id("related_to")


@pytest.fixture()
def growing_world(tmp_path):
    """A live store, its publisher bundle, and an inline serving service."""
    kg = generate_kg(SyntheticKGConfig(seed=23, scale=0.05))
    bundle = tmp_path / "bundle"
    publisher = GenerationPublisher(kg.store, bundle, embeddings=False)
    service = ServingService(bundle, mode="inline", num_shards=2)
    yield kg.store, publisher, bundle, service
    service.close()


def _grow(store, publisher, round_no: int):
    """Add one new edge to the pivot entity and publish the generation."""
    entity_ids = sorted(store.entity_ids())
    pivot, other = entity_ids[0], entity_ids[1 + round_no]
    fact = entity_fact(
        pivot, RELATED, other, confidence=0.9, sources=("live",), updated_at=float(round_no)
    )
    store.add(fact)
    publisher.record(keys=[fact.key])
    info = publisher.publish()
    assert info is not None
    return pivot, info


class TestGenerationWatcher:
    def test_poll_adopts_new_generations(self, growing_world):
        store, publisher, bundle, service = growing_world
        watcher = GenerationWatcher(service, bundle, interval_s=0.01)
        assert watcher.poll_once() is None  # nothing new yet

        pivot, info = _grow(store, publisher, 0)
        adopted = watcher.poll_once()
        assert adopted == info.store_version == service.store_version
        assert watcher.swaps == 1

        # The served answer reflects the just-published edge.
        response = service.serve(NeighborhoodRequest(entities=(pivot,), hops=1))
        assert response.ok
        assert sorted(response.payload[0]) == sorted(store.neighbors(pivot))

    def test_background_thread_swaps(self, growing_world):
        store, publisher, bundle, service = growing_world
        swapped = threading.Event()
        with GenerationWatcher(
            service, bundle, interval_s=0.02, on_swap=lambda _v: swapped.set()
        ):
            _grow(store, publisher, 0)
            assert swapped.wait(timeout=10.0)
        assert service.store_version == publisher.tip_version

    def test_errors_are_contained(self, growing_world, tmp_path):
        _store, _publisher, _bundle, service = growing_world
        before = service.store_version
        watcher = GenerationWatcher(service, tmp_path / "nonexistent", interval_s=0.01)
        assert watcher.poll_once() is None
        assert watcher.errors == 0  # empty dir: no published version, no error
        (tmp_path / "nonexistent").mkdir()
        (tmp_path / "nonexistent" / "chain.json").write_text("{broken", encoding="utf-8")
        assert watcher.poll_once() is None
        assert watcher.errors == 1
        assert service.store_version == before  # kept serving the old generation


class TestSwapCacheRace:
    def test_no_cross_generation_cache_hit_under_concurrent_swaps(self, growing_world):
        """Satellite bugfix pin: swap generations under concurrent load and
        verify every response's payload matches the generation its envelope
        claims — a cross-generation cache hit would break the match."""
        store, publisher, bundle, service = growing_world
        pivot = sorted(store.entity_ids())[0]
        request = NeighborhoodRequest(entities=(pivot,), hops=1)

        # version -> the correct frozen answer for that generation.
        expected: dict[int, tuple] = {}

        def snapshot_expected():
            expected[store.version] = tuple(sorted(store.neighbors(pivot)))

        snapshot_expected()
        mismatches: list[tuple] = []
        failures: list[str] = []
        stop = threading.Event()

        def client():
            while not stop.is_set():
                response = service.serve(request)
                if not response.ok:
                    failures.append(response.error.code if response.error else "?")
                    continue
                answer = tuple(sorted(response.payload[0]))
                want = expected.get(response.store_version)
                # want can be None only if the envelope carries a version
                # we never published — that too is a mismatch.
                if want is None or answer != want:
                    mismatches.append((response.store_version, answer, want))

        threads = [threading.Thread(target=client) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for round_no in range(6):
                _grow(store, publisher, round_no)
                snapshot_expected()
                service.adopt_generation(bundle)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)

        assert not mismatches, mismatches[:5]
        assert not failures, failures[:5]
        assert service.store_version == publisher.tip_version


class TestQueryCacheSwapGuard:
    def test_straggler_put_after_adopt_self_demotes(self):
        cache = QueryCache(capacity=16)
        cache.adopt_version(2)
        cache.put(1, "req", "old-answer")  # in-flight request that lost the race
        assert len(cache) == 0
        assert cache.get(1, "req") is None
        assert cache.get_stale("req") == (1, "old-answer")

    def test_current_version_put_is_accepted(self):
        cache = QueryCache(capacity=16)
        cache.adopt_version(2)
        cache.put(2, "req", "answer")
        assert cache.get(2, "req") == "answer"

    def test_demotion_keeps_newest_generation(self):
        cache = QueryCache(capacity=16)
        cache.adopt_version(3)
        cache.put(2, "req", "newer-old")
        cache.put(1, "req", "older-old")  # must not clobber the newer demotion
        assert cache.get_stale("req") == (2, "newer-old")

    def test_adopt_purges_existing_generations(self):
        cache = QueryCache(capacity=16)
        cache.put(1, "a", "r1")
        cache.put(1, "b", "r2")
        dropped = cache.adopt_version(2)
        assert dropped == 2
        assert len(cache) == 0
        assert cache.get_stale("a") == (1, "r1")
