"""ShardRouter: stable partitioning and deterministic merges."""

import pytest

from repro.serving.requests import (
    AnnotateRequest,
    NeighborhoodRequest,
    WalkRequest,
    sub_request,
)
from repro.serving.router import ShardRouter


class TestShardAssignment:
    def test_id_space_partition(self):
        ids = {"a": 0, "b": 5, "c": 9}
        router = ShardRouter(4, id_of=ids.get)
        assert router.shard_of("a") == 0
        assert router.shard_of("b") == 1
        assert router.shard_of("c") == 1

    def test_unknown_entity_falls_back_to_string_hash(self):
        router_with_ids = ShardRouter(4, id_of={"known": 2}.get)
        router_without = ShardRouter(4)
        # Unknown strings route identically with or without a dictionary.
        assert router_with_ids.shard_of("missing") == router_without.shard_of("missing")

    def test_stable_across_instances(self):
        entities = [f"entity:person/{i:05d}" for i in range(50)]
        one = [ShardRouter(8).shard_of(e) for e in entities]
        two = [ShardRouter(8).shard_of(e) for e in entities]
        assert one == two

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            ShardRouter(0)


class TestScatterGather:
    def test_round_trip_preserves_order(self):
        router = ShardRouter(3)
        entities = [f"e{i}" for i in range(17)]
        parts = router.scatter(entities)
        # Workers answer per-entity; here the "result" is the entity itself.
        merged = ShardRouter.gather(
            len(entities), [(positions, list(members)) for _, positions, members in parts]
        )
        assert merged == entities

    def test_scatter_covers_every_entity_once(self):
        router = ShardRouter(5)
        entities = [f"e{i}" for i in range(40)]
        parts = router.scatter(entities)
        positions = sorted(p for _, ps, _ in parts for p in ps)
        assert positions == list(range(len(entities)))
        assert sum(len(members) for _, _, members in parts) == len(entities)

    def test_within_shard_order_is_input_order(self):
        router = ShardRouter(2)
        entities = [f"e{i}" for i in range(10)]
        for _, positions, members in router.scatter(entities):
            assert positions == sorted(positions)
            assert list(members) == [entities[p] for p in positions]

    def test_gather_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            ShardRouter.gather(2, [([0, 1], ["only-one"])])

    def test_gather_rejects_missing_positions(self):
        with pytest.raises(ValueError):
            ShardRouter.gather(3, [([0, 1], ["a", "b"])])


class TestSubRequests:
    def test_splittable_requests_narrow(self):
        request = WalkRequest(entities=("a", "b", "c"), walk_length=5, seed=9)
        narrowed = sub_request(request, ("b",))
        assert narrowed.entities == ("b",)
        assert narrowed.walk_length == 5
        assert narrowed.seed == 9

    def test_neighborhood_keeps_hops(self):
        narrowed = sub_request(NeighborhoodRequest(entities=("a", "b"), hops=3), ("a",))
        assert narrowed.hops == 3

    def test_annotate_is_not_splittable(self):
        with pytest.raises(TypeError):
            sub_request(AnnotateRequest(texts=("t",)), ("t",))

    def test_requests_are_hashable_cache_keys(self):
        a = WalkRequest(entities=("x", "y"), seed=1)
        b = WalkRequest(entities=("x", "y"), seed=1)
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_scatter_request_covers_and_narrows(self):
        router = ShardRouter(num_shards=3)
        request = WalkRequest(entities=tuple(f"e{i}" for i in range(8)), seed=4)
        parts = router.scatter_request(request)
        covered: list[int] = []
        for positions, shard_request in parts:
            assert type(shard_request) is WalkRequest
            assert shard_request.seed == 4
            assert shard_request.entities == tuple(
                request.entities[p] for p in positions
            )
            covered.extend(positions)
        assert sorted(covered) == list(range(8))

    def test_scatter_request_rejects_non_splittable(self):
        with pytest.raises(TypeError):
            ShardRouter(num_shards=2).scatter_request(AnnotateRequest(texts=("t",)))
