"""Wire protocol: schema-versioned JSON round-trips and structured errors."""

import dataclasses
import json

import pytest

from repro.annotation.mention import EntityLink, Mention
from repro.serving.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    error_response,
)
from repro.serving.requests import (
    REQUEST_TYPES,
    AnnotateRequest,
    AnnotateResponse,
    ErrorInfo,
    FactRankRequest,
    FactRankResponse,
    KnnRequest,
    KnnResponse,
    NeighborhoodRequest,
    PersonalRecord,
    RelatedRequest,
    Response,
    ServingError,
    SimilarityRequest,
    TenantDeleteRequest,
    TenantDeleteResponse,
    TenantSyncRequest,
    TenantSyncResponse,
    TenantUpsertRequest,
    TenantUpsertResponse,
    VerifyRequest,
    VerifyResponse,
    WalkRequest,
    WalkResponse,
    response_class,
)
from repro.services.fact_ranking import RankedFact
from repro.services.fact_verification import Verdict
from repro.vector.index import SearchHit

EVERY_REQUEST = [
    WalkRequest(entities=("a", "b"), walk_length=5, walks_per_entity=2, seed=9),
    NeighborhoodRequest(entities=("a",), hops=2),
    RelatedRequest(entities=("a", "b", "c"), k=4),
    AnnotateRequest(texts=("one text", "two texts"), tier="lite"),
    FactRankRequest(entities=("lebron",), predicate="predicate:occupation"),
    VerifyRequest(candidates=(("s", "p", "o"), ("s2", "p2", "o2"))),
    SimilarityRequest(pairs=(("a", "b"), ("a", "c"))),
    KnnRequest(entities=("a",), k=7, exclude_self=False),
    TenantUpsertRequest(
        records=(
            PersonalRecord(
                record_id="c001",
                source="contacts",
                fields=(("first_name", "Anna"), ("last_name", "Smith")),
                sequence=2,
            ),
        )
    ),
    TenantSyncRequest(
        records=(
            PersonalRecord(record_id="m001", source="messages", sequence=1),
        ),
        tombstones=(("contacts", "c000", 3),),
        epsilon=2.5,
    ),
    TenantDeleteRequest(source="contacts", record_id="c001", sequence=4),
]


class TestRequestRoundTrip:
    @pytest.mark.parametrize("request_obj", EVERY_REQUEST, ids=lambda r: type(r).__name__)
    def test_bytes_round_trip(self, request_obj):
        data = encode_request(request_obj)
        decoded = decode_request(data)
        assert decoded == request_obj
        assert type(decoded) is type(request_obj)
        # Tuples (hashability — cache keys) survive the JSON array detour.
        assert hash(decoded) == hash(request_obj)

    def test_every_request_type_is_covered(self):
        assert {type(r) for r in EVERY_REQUEST} == set(REQUEST_TYPES)

    def test_defaults_fill_missing_optional_fields(self):
        envelope = {"protocol": 1, "type": "walk", "body": {"entities": ["x"]}}
        decoded = decode_request(json.dumps(envelope))
        assert decoded == WalkRequest(entities=("x",))


class TestRequestRejection:
    def test_malformed_json(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(b"{not json at all")
        assert excinfo.value.code == "bad_request"

    def test_non_utf8_bytes(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(b"\xff\xfe\x00")
        assert excinfo.value.code == "bad_request"

    def test_non_object_envelope(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(b"[1, 2, 3]")
        assert excinfo.value.code == "bad_request"

    def test_unknown_schema_version(self):
        envelope = {"protocol": 99, "type": "walk", "body": {"entities": []}}
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(json.dumps(envelope))
        assert excinfo.value.code == "unsupported_version"

    def test_missing_version(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(json.dumps({"type": "walk", "body": {}}))
        assert excinfo.value.code == "unsupported_version"

    def test_unknown_request_type(self):
        envelope = {"protocol": 1, "type": "teleport", "body": {}}
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(json.dumps(envelope))
        assert excinfo.value.code == "unsupported_type"

    def test_non_string_type_field(self):
        # An unhashable type value must reject cleanly, not TypeError.
        envelope = {"protocol": 1, "type": ["walk"], "body": {}}
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(json.dumps(envelope))
        assert excinfo.value.code == "unsupported_type"

    def test_unknown_field_rejected(self):
        envelope = {
            "protocol": 1,
            "type": "walk",
            "body": {"entities": ["x"], "warp_speed": 9},
        }
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(json.dumps(envelope))
        assert excinfo.value.code == "bad_request"
        assert "warp_speed" in excinfo.value.message

    def test_missing_required_field(self):
        envelope = {"protocol": 1, "type": "walk", "body": {}}
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(json.dumps(envelope))
        assert excinfo.value.code == "bad_request"

    def test_wrong_candidate_arity(self):
        envelope = {
            "protocol": 1,
            "type": "verify",
            "body": {"candidates": [["s", "p"]]},
        }
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(json.dumps(envelope))
        assert excinfo.value.code == "bad_request"

    def test_non_string_entities(self):
        envelope = {"protocol": 1, "type": "walk", "body": {"entities": [1, 2]}}
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(json.dumps(envelope))
        assert excinfo.value.code == "bad_request"

    @pytest.mark.parametrize(
        "wire_type,field,value",
        [
            ("walk", "seed", [1]),  # unhashable — would break cache keying
            ("walk", "walk_length", "8"),
            ("walk", "walks_per_entity", 2.5),
            ("neighborhood", "hops", True),  # bool is not an int here
            ("knn", "k", {"n": 3}),
            ("knn", "exclude_self", "yes"),
            ("annotate", "tier", 3),
            ("fact_rank", "predicate", ["p"]),
        ],
    )
    def test_mistyped_scalar_fields_rejected(self, wire_type, field, value):
        body = {field: value}
        if wire_type in ("walk", "neighborhood", "knn", "fact_rank"):
            body.setdefault("entities", ["x"])
        if wire_type == "annotate":
            body.setdefault("texts", ["t"])
        envelope = {"protocol": 1, "type": wire_type, "body": body}
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(json.dumps(envelope))
        assert excinfo.value.code == "bad_request"
        assert field in excinfo.value.message


def ok_response(wire_type: str, payload) -> Response:
    return response_class(wire_type)(
        request_type=wire_type,
        status="ok",
        store_version=3,
        payload=payload,
        timings={"compute_ms": 1.25, "total_ms": 1.5},
    )


EVERY_RESPONSE = [
    ok_response("walk", [[["a", "b", "c"]], [["b", "a"]]]),
    ok_response("neighborhood", [["a", "b"], []]),
    ok_response("related", [[("x", 0.123456789012345), ("y", -1.5)]]),
    ok_response(
        "annotate",
        [
            [
                EntityLink(
                    mention=Mention(start=0, end=5, surface="Alice"),
                    entity="entity:person/1",
                    score=0.875,
                    entity_type="PERSON",
                )
            ],
            [],
        ],
    ),
    ok_response(
        "fact_rank",
        [
            [
                RankedFact(
                    obj="basketball",
                    score=1.5,
                    model_score=0.5,
                    agreement=0.25,
                    popularity=0.75,
                    confidence=0.9,
                )
            ]
        ],
    ),
    ok_response(
        "verify",
        [
            Verdict(
                subject="s",
                predicate="p",
                obj="o",
                score=0.333333333333333314,
                plausible=True,
                margin=0.1,
            )
        ],
    ),
    ok_response("similarity", [0.5, 0.0, -0.25]),
    ok_response("knn", [[SearchHit(key="a", score=0.75), SearchHit(key="b", score=0.5)]]),
    # Tenant payloads are JSON-native dicts by construction (the registry
    # produces them wire-shaped), so they ride the codec's fallback path.
    ok_response("tenant_upsert", {"applied": 2, "skipped": 1, "tenant_version": 7}),
    ok_response(
        "tenant_sync",
        {
            "records": [
                {
                    "record_id": "c001",
                    "source": "contacts",
                    "fields": [["first_name", "Anna"]],
                    "sequence": 2,
                }
            ],
            "tombstones": [["contacts", "c000", 3]],
            "people": [
                {
                    "entity": "entity:personal/person-0000",
                    "name": "Anna Smith",
                    "record_ids": ["c001"],
                }
            ],
            "tenant_version": 7,
            "dp_record_count": 1.25,
        },
    ),
    ok_response("tenant_delete", {"deleted": True, "tenant_version": 8}),
]

EXPECTED_RESPONSE_CLASSES = {
    "walk": WalkResponse,
    "annotate": AnnotateResponse,
    "fact_rank": FactRankResponse,
    "verify": VerifyResponse,
    "knn": KnnResponse,
    "tenant_upsert": TenantUpsertResponse,
    "tenant_sync": TenantSyncResponse,
    "tenant_delete": TenantDeleteResponse,
}


class TestResponseRoundTrip:
    @pytest.mark.parametrize("response", EVERY_RESPONSE, ids=lambda r: r.request_type)
    def test_bytes_round_trip(self, response):
        decoded = decode_response(encode_response(response))
        assert decoded.status == "ok"
        assert decoded.request_type == response.request_type
        assert decoded.store_version == response.store_version
        assert decoded.timings == response.timings
        if response.request_type == "annotate":
            # Candidate lists are server-side detail and stay off the wire;
            # everything else on a link survives exactly.
            def signature(payload):
                return [
                    [
                        (
                            link.mention.start,
                            link.mention.end,
                            link.mention.surface,
                            link.entity,
                            link.score,
                            link.entity_type,
                        )
                        for link in links
                    ]
                    for links in payload
                ]

            assert signature(decoded.payload) == signature(response.payload)
        else:
            assert decoded.payload == response.payload
        expected_cls = EXPECTED_RESPONSE_CLASSES.get(response.request_type)
        if expected_cls is not None:
            assert type(decoded) is expected_cls

    def test_every_wire_type_is_covered(self):
        assert {r.request_type for r in EVERY_RESPONSE} == {
            cls.wire_type for cls in REQUEST_TYPES
        }

    def test_floats_survive_exactly(self):
        response = ok_response("similarity", [0.1 + 0.2, 1e-17, 123456.789012345678])
        decoded = decode_response(encode_response(response))
        assert decoded.payload == response.payload  # bitwise, not approx

    def test_encoding_is_deterministic(self):
        response = EVERY_RESPONSE[0]
        assert encode_response(response) == encode_response(response)


class TestErrorEnvelopes:
    def test_error_round_trip(self):
        original = error_response(
            "verify", 7, "internal", "EmbeddingError: entity not in vocabulary"
        )
        decoded = decode_response(encode_response(original))
        assert decoded.status == "error"
        assert decoded.error == ErrorInfo(
            "internal", "EmbeddingError: entity not in vocabulary"
        )
        assert decoded.payload is None

    def test_exception_never_crosses_the_wire(self):
        try:
            raise ValueError("secret internal state")
        except ValueError as exc:
            response = error_response("walk", 1, "internal", "boom", exception=exc)
        data = encode_response(response)
        assert b"secret internal state" not in data
        assert b"Traceback" not in data
        decoded = decode_response(data)
        assert decoded.exception is None

    def test_decoded_error_raises_serving_error(self):
        decoded = decode_response(
            encode_response(error_response("walk", 1, "overloaded", "queue full"))
        )
        with pytest.raises(ServingError) as excinfo:
            decoded.result()
        assert excinfo.value.code == "overloaded"

    def test_error_envelope_missing_code_rejected(self):
        envelope = {
            "protocol": PROTOCOL_VERSION,
            "type": "walk",
            "status": "error",
            "store_version": 1,
            "timings": {},
            "error": {"message": "no code"},
        }
        with pytest.raises(ProtocolError):
            decode_response(json.dumps(envelope))

    def test_unknown_status_rejected(self):
        envelope = {
            "protocol": PROTOCOL_VERSION,
            "type": "walk",
            "status": "maybe",
            "store_version": 1,
        }
        with pytest.raises(ProtocolError):
            decode_response(json.dumps(envelope))

    def test_response_version_gate(self):
        envelope = {"protocol": 2, "type": "walk", "status": "ok", "store_version": 1}
        with pytest.raises(ProtocolError) as excinfo:
            decode_response(json.dumps(envelope))
        assert excinfo.value.code == "unsupported_version"


class TestPolicyDeclarations:
    def test_wire_types_are_unique(self):
        tags = [cls.wire_type for cls in REQUEST_TYPES]
        assert len(tags) == len(set(tags))

    def test_annotate_admission_policy(self):
        assert AnnotateRequest(texts=("one",)).cacheable()
        assert not AnnotateRequest(texts=("one", "two")).cacheable()
        assert not AnnotateRequest(texts=()).cacheable()

    def test_all_requests_are_frozen_and_hashable(self):
        for request in EVERY_REQUEST:
            assert dataclasses.fields(request)
            with pytest.raises(dataclasses.FrozenInstanceError):
                request.__class__.__setattr__(request, "seed", 1)
            hash(request)
