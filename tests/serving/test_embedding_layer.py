"""Serving over the persisted embedding bundle layer.

These tests prove the PR-6 serving contract: replicas boot by
*adopting* the persisted embedding layer (mmap, no training), a
process-pool fleet answers embedding requests byte-identically to an
in-process suite, and the fact log is never replayed on the adoption
path — a corrupted ``facts.jsonl`` cannot hurt Verify/Knn/Similarity
serving.
"""

from __future__ import annotations

import shutil

import pytest

from repro.embeddings.suite import ADOPTED
from repro.serving.requests import KnnRequest, SimilarityRequest, VerifyRequest
from repro.serving.service import ServingService


@pytest.fixture(scope="module")
def symbols(bundle_dir):
    """(entities, candidate triples) the persisted suite knows about."""
    with ServingService(bundle_dir) as svc:
        suite = svc._pool.local_state.embedding_suite()
        dataset = suite.trained.dataset
        entities = tuple(dataset.entities[:8])
        triples = tuple(dataset.decode(*map(int, row)) for row in dataset.triples[:6])
    return entities, triples


def _embedding_requests(symbols):
    entities, triples = symbols
    return (
        KnnRequest(entities=entities, k=5),
        VerifyRequest(candidates=triples),
        SimilarityRequest(pairs=((entities[0], entities[1]), (entities[2], entities[3]))),
    )


@pytest.fixture(scope="module")
def reference_payloads(bundle_dir, symbols):
    """Payloads from an inline service over the pristine bundle."""
    with ServingService(bundle_dir) as svc:
        assert svc._pool.local_state.embedding_suite().source == ADOPTED
        return [svc.serve(r).payload for r in _embedding_requests(symbols)]


@pytest.fixture(scope="module")
def corrupt_bundle(bundle_dir, tmp_path_factory):
    """A copy of the bundle whose fact log is garbage.

    Any code path that replays ``facts.jsonl`` — i.e. retraining instead
    of adopting the persisted layer — raises on this bundle.
    """
    directory = tmp_path_factory.mktemp("corrupt-facts") / "bundle"
    shutil.copytree(bundle_dir, directory)
    (directory / "facts.jsonl").write_text("{this is not json\n")
    return directory


class TestWorkerAdoption:
    def test_worker_state_adopts_persisted_layer(self, bundle_dir):
        with ServingService(bundle_dir) as svc:
            assert svc._pool.local_state.embedding_suite().source == ADOPTED

    def test_adoption_never_invokes_trainer(self, bundle_dir, symbols, monkeypatch):
        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("replica retrained instead of adopting the layer")

        monkeypatch.setattr("repro.embeddings.suite.train_embeddings", boom)
        entities, _triples = symbols
        with ServingService(bundle_dir) as svc:
            response = svc.serve(KnnRequest(entities=entities[:3], k=4))
        assert response.ok
        assert len(response.payload) == 3

    def test_adoption_ignores_corrupt_fact_log(
        self, corrupt_bundle, symbols, reference_payloads
    ):
        with ServingService(corrupt_bundle) as svc:
            payloads = [svc.serve(r).payload for r in _embedding_requests(symbols)]
        assert payloads == reference_payloads


class TestProcessReplicas:
    def test_replicas_serve_identical_verdicts_without_retraining(
        self, corrupt_bundle, symbols, reference_payloads
    ):
        """Two process replicas answer from one persisted layer.

        The fact log in this bundle is corrupt, so any replica that
        tried to retrain (rather than mmap-adopt the layer) would crash;
        identical payloads prove both replicas served the persisted
        embeddings.
        """
        with ServingService(corrupt_bundle, mode="process", num_workers=2) as svc:
            payloads = [svc.serve(r).payload for r in _embedding_requests(symbols)]
            # Serve each request once more so both workers see traffic.
            repeats = [svc.serve(r).payload for r in _embedding_requests(symbols)]
        assert payloads == reference_payloads
        assert repeats == reference_payloads

    def test_thread_replicas_share_one_layer(self, corrupt_bundle, symbols, reference_payloads):
        with ServingService(corrupt_bundle, mode="thread", num_workers=2) as svc:
            payloads = [svc.serve(r).payload for r in _embedding_requests(symbols)]
        assert payloads == reference_payloads


class TestKnnServing:
    def test_knn_request_is_shard_invariant(self, bundle_dir, symbols):
        entities, _triples = symbols
        results = []
        for num_shards in (1, 5):
            with ServingService(bundle_dir, num_shards=num_shards) as svc:
                results.append(svc.serve(KnnRequest(entities=entities, k=5)).payload)
        assert results[0] == results[1]

    def test_served_knn_matches_backend_batch(self, bundle_dir, symbols):
        entities, _triples = symbols
        with ServingService(bundle_dir, num_shards=4) as svc:
            served = svc.serve(KnnRequest(entities=entities, k=5)).payload
            suite = svc._pool.local_state.embedding_suite()
            direct = suite.embedding_service.knn_many(list(entities), k=5)
        assert [[(h.key, h.score) for h in hits] for hits in served] == [
            [(h.key, h.score) for h in hits] for hits in direct
        ]
