"""ServingService facade: routing, caching, batching and generation swaps."""

import pytest

from repro.kg.persistence import save_snapshot
from repro.kg.query_logs import QueryLogEntry
from repro.serving.requests import (
    AnnotateRequest,
    FactRankRequest,
    FactRankResponse,
    KnnRequest,
    SimilarityRequest,
    VerifyRequest,
    WalkRequest,
    WalkResponse,
)
from repro.serving.service import (
    ServingService,
    requests_from_query_log,
    save_and_serve,
)
from repro.serving.worker import entity_walk_seed


@pytest.fixture(scope="module")
def service(bundle_dir) -> ServingService:
    svc = ServingService(bundle_dir, mode="inline", num_shards=4)
    yield svc
    svc.close()


class TestTraversalServing:
    def test_walks_are_shard_invariant(self, bundle_dir, seed_entities):
        results = []
        for num_shards in (1, 3, 8):
            with ServingService(bundle_dir, num_shards=num_shards) as svc:
                results.append(svc.random_walks(seed_entities, seed=7))
        assert results[0] == results[1] == results[2]

    def test_walks_match_cold_engine_contract(self, service, bundle_dir, seed_entities):
        from repro.kg.persistence import load_snapshot

        served = service.random_walks(seed_entities[:6], seed=3)
        cold = load_snapshot(bundle_dir).engine()
        for entity, walks in zip(seed_entities[:6], served):
            assert walks == cold.random_walks(
                [entity], walk_length=8, walks_per_entity=4,
                seed=entity_walk_seed(3, entity),
            )

    def test_neighborhood_and_related(self, service, seed_entities):
        neighborhoods = service.neighborhood(seed_entities[:4], hops=2)
        assert len(neighborhoods) == 4
        assert all(row == sorted(row) for row in neighborhoods)
        related = service.related_entities(seed_entities[:3], k=5)
        assert len(related) == 3
        assert all(len(hits) <= 5 for hits in related)

    def test_empty_request(self, service):
        assert service.random_walks([]) == []
        assert service.neighborhood([]) == []


class TestQueryCaching:
    def test_repeat_request_hits_cache(self, bundle_dir, seed_entities):
        with ServingService(bundle_dir) as svc:
            first = svc.random_walks(seed_entities, seed=1)
            hits_before = svc._cache.hits
            second = svc.random_walks(seed_entities, seed=1)
            assert second == first
            assert svc._cache.hits == hits_before + 1

    def test_different_parameters_miss(self, bundle_dir, seed_entities):
        with ServingService(bundle_dir) as svc:
            svc.random_walks(seed_entities, seed=1)
            svc.random_walks(seed_entities, seed=2)
            assert svc._cache.hits == 0

    def test_annotation_caches_per_text(self, bundle_dir, sample_texts):
        with ServingService(bundle_dir) as svc:
            first = svc.annotate(sample_texts[0])
            second = svc.annotate(sample_texts[0])
            assert second == first
            assert svc._cache.hits == 1


class TestAnnotationServing:
    def test_annotate_matches_pipeline(self, service, sample_texts):
        pipeline = service._pool.local_state.snapshot.annotation_pipeline(tier="full")
        for text in sample_texts[:3]:
            served = service.annotate(text)
            expected = pipeline.annotate(text)
            assert [
                (link.mention.start, link.mention.end, link.entity) for link in served
            ] == [
                (link.mention.start, link.mention.end, link.entity) for link in expected
            ]

    def test_annotate_many_matches_singles(self, service, sample_texts):
        batched = service.annotate_many(sample_texts)
        for text, links in zip(sample_texts, batched):
            singles = service.annotate(text)
            assert [
                (link.mention.start, link.mention.end, link.entity) for link in links
            ] == [
                (link.mention.start, link.mention.end, link.entity) for link in singles
            ]

    def test_annotate_many_empty(self, service):
        assert service.annotate_many([]) == []


class TestGenerationAdoption:
    def test_adopt_generation_invalidates_cache(self, tmp_path):
        # A private world: the test mutates the store between generations.
        from repro.kg.generator import SyntheticKGConfig, generate_kg
        from repro.kg.store import EntityRecord

        kg = generate_kg(SyntheticKGConfig(seed=3, scale=0.1))
        store = kg.store
        seeds = sorted(store.entity_ids())[:4]
        bundle_v1 = tmp_path / "v1"
        save_snapshot(store, bundle_v1)
        with ServingService(bundle_v1) as svc:
            svc.random_walks(seeds, seed=5)
            version_1 = svc.store_version
            assert len(svc._cache) > 0

            # Grow the store: new generation, new bundle.
            store.upsert_entity(
                EntityRecord(
                    entity="entity:person/99999",
                    name="Generation Marker",
                    types=("type:person",),
                )
            )
            bundle_v2 = tmp_path / "v2"
            save_snapshot(store, bundle_v2)
            adopted = svc.adopt_generation(bundle_v2)
            assert adopted == store.version != version_1
            assert len(svc._cache) == 0  # old generation purged
            walks = svc.random_walks(seeds, seed=5)
            assert len(walks) == 4
            assert svc.metrics.counters["serve.generations"] == 2


class TestStatsSurface:
    def test_stats_keys(self, bundle_dir, seed_entities, sample_texts):
        with ServingService(bundle_dir, num_shards=4) as svc:
            svc.random_walks(seed_entities[:4])
            svc.annotate(sample_texts[0])
            stats = svc.stats()
        assert stats["counter.serve.requests"] == 2.0
        assert stats["hist.serve.latency.count"] == 2.0
        assert stats["serve.workers"] == 1.0
        assert stats["serve.mode"] == "inline"
        assert stats["serve.shards"] == 4.0
        assert 0.0 <= stats["serve.cache_hit_rate"] <= 1.0
        assert stats["serve.store_version"] == float(svc.store_version)

    def test_shard_fanout_counter(self, bundle_dir, seed_entities):
        with ServingService(bundle_dir, num_shards=4) as svc:
            svc.random_walks(seed_entities)
            assert 1 <= svc.metrics.counters["serve.shard_fanout"] <= 4


@pytest.fixture(scope="module")
def embed_symbols(service):
    """(entities, predicate, candidate triples) the trained suite knows."""
    suite = service._pool.local_state.embedding_suite()
    dataset = suite.trained.dataset
    triples = [dataset.decode(*map(int, row)) for row in dataset.triples[:4]]
    return dataset.entities[:4], dataset.relations[0], triples


class TestServeDispatch:
    def test_serve_returns_typed_envelopes(self, service, seed_entities):
        response = service.serve(WalkRequest(entities=tuple(seed_entities[:3]), seed=2))
        assert isinstance(response, WalkResponse)
        assert response.ok
        assert response.request_type == "walk"
        assert response.store_version == service.store_version
        assert response.timings["total_ms"] >= 0.0
        assert {"scatter_ms", "compute_ms", "gather_ms"} <= set(response.timings)

    def test_cache_hit_marks_envelope(self, service, seed_entities):
        request = WalkRequest(entities=tuple(seed_entities[:2]), seed=41)
        first = service.serve(request)
        second = service.serve(request)
        assert not first.cached
        assert second.cached
        assert second.payload == first.payload

    def test_delegating_wrappers_match_serve(self, service, seed_entities):
        request = WalkRequest(entities=tuple(seed_entities[:3]), seed=8)
        assert service.random_walks(seed_entities[:3], seed=8) == service.serve(request).payload

    def test_fact_ranking_served(self, service, embed_symbols):
        _entities, predicate, triples = embed_symbols
        subjects = [triples[0][0], triples[1][0]]
        response = service.serve(
            FactRankRequest(entities=tuple(subjects), predicate=predicate)
        )
        assert isinstance(response, FactRankResponse)
        assert response.ok
        assert len(response.payload) == 2
        assert service.rank_facts(subjects, predicate) == response.payload

    def test_fact_ranking_matches_direct_backend(self, service, embed_symbols):
        _entities, predicate, triples = embed_symbols
        suite = service._pool.local_state.embedding_suite()
        served = service.rank_facts([triples[0][0]], predicate)
        assert served[0] == suite.ranker.rank(triples[0][0], predicate)

    def test_verification_served(self, service, embed_symbols):
        _entities, _predicate, triples = embed_symbols
        verdicts = service.verify_facts(triples)
        assert len(verdicts) == len(triples)
        suite = service._pool.local_state.embedding_suite()
        assert verdicts == [suite.verifier.verify(*c) for c in triples]

    def test_similarity_and_knn_served(self, service, embed_symbols):
        entities, _predicate, _triples = embed_symbols
        sims = service.similarity([(entities[0], entities[1]), (entities[0], "ghost")])
        assert len(sims) == 2
        assert -1.0 <= sims[0] <= 1.0
        assert sims[1] == 0.0
        hits = service.knn([entities[0]], k=3)
        assert len(hits) == 1
        assert entities[0] not in {hit.key for hit in hits[0]}

    def test_error_becomes_envelope_and_wrapper_raises(self, service):
        from repro.common.errors import EmbeddingError

        response = service.serve(KnnRequest(entities=("entity:ghost",), k=3))
        assert not response.ok
        assert response.error is not None and response.error.code == "internal"
        assert isinstance(response.exception, EmbeddingError)
        with pytest.raises(EmbeddingError):
            service.knn(["entity:ghost"], k=3)

    def test_unsupported_request_type(self, service):
        response = service.serve("not a request")
        assert not response.ok
        assert response.error.code == "unsupported_type"

    def test_splittable_requests_are_shard_invariant(self, bundle_dir, embed_symbols):
        _entities, predicate, triples = embed_symbols
        subjects = tuple(sorted({s for s, _p, _o in triples}))
        results = []
        for num_shards in (1, 5):
            with ServingService(bundle_dir, num_shards=num_shards) as svc:
                results.append(
                    svc.serve(
                        FactRankRequest(entities=subjects, predicate=predicate)
                    ).payload
                )
        assert results[0] == results[1]


class TestAnnotationTiers:
    def test_single_text_honours_request_tier(self, bundle_dir, sample_texts):
        """A single-text request at a non-default tier must bypass the
        (default-tier) micro-batcher and be served — and cached — at the
        tier it asked for."""
        with ServingService(bundle_dir, tier="full") as svc:
            text = sample_texts[0]
            lite_pipeline = svc._pool.local_state.snapshot.annotation_pipeline(
                tier="lite"
            )
            expected = lite_pipeline.annotate(text)
            response = svc.serve(AnnotateRequest(texts=(text,), tier="lite"))
            assert response.ok
            assert [
                (link.mention.start, link.mention.end, link.entity, link.score)
                for link in response.payload[0]
            ] == [
                (link.mention.start, link.mention.end, link.entity, link.score)
                for link in expected
            ]
            # Cached under the lite key, not poisoned by the full tier.
            again = svc.serve(AnnotateRequest(texts=(text,), tier="lite"))
            assert again.cached
            assert [link.score for link in again.payload[0]] == [
                link.score for link in expected
            ]


class TestCacheAdmission:
    def test_multi_text_annotation_not_cached(self, bundle_dir, sample_texts):
        with ServingService(bundle_dir) as svc:
            svc.annotate_many(sample_texts[:3])
            assert len(svc._cache) == 0
            svc.annotate(sample_texts[0])
            assert len(svc._cache) == 1

    def test_verify_results_cached(self, service, embed_symbols):
        _entities, _predicate, triples = embed_symbols
        request = VerifyRequest(candidates=tuple(triples[:2]))
        service.serve(request)
        assert service.serve(request).cached

    def test_similarity_results_cached(self, service, embed_symbols):
        entities, _predicate, _triples = embed_symbols
        request = SimilarityRequest(pairs=((entities[0], entities[1]),))
        service.serve(request)
        assert service.serve(request).cached


class TestCacheWarming:
    def test_warm_precomputes_requests(self, bundle_dir, seed_entities):
        with ServingService(bundle_dir) as svc:
            requests = [
                WalkRequest(entities=(entity,), seed=3) for entity in seed_entities[:4]
            ]
            warmed = svc.warm(requests)
            assert warmed == 4
            assert all(svc.serve(r).cached for r in requests)
            # A second warm pass finds everything cached already.
            assert svc.warm(requests) == 0

    def test_warm_skips_non_cacheable(self, bundle_dir, sample_texts):
        with ServingService(bundle_dir) as svc:
            warmed = svc.warm([AnnotateRequest(texts=tuple(sample_texts[:2]))])
            assert warmed == 0
            assert len(svc._cache) == 0

    def test_requests_from_query_log_ranks_answered_demand(self):
        entries = [
            QueryLogEntry(entity="e1", predicate="p", timestamp=1.0, answered=True),
            QueryLogEntry(entity="e1", predicate="p", timestamp=2.0, answered=True),
            QueryLogEntry(entity="e1", predicate="p", timestamp=3.0, answered=True),
            QueryLogEntry(entity="e2", predicate="p", timestamp=4.0, answered=True),
            QueryLogEntry(entity="e2", predicate="p", timestamp=5.0, answered=True),
            QueryLogEntry(entity="e3", predicate="p", timestamp=6.0, answered=False),
            QueryLogEntry(entity="e3", predicate="p", timestamp=7.0, answered=False),
            QueryLogEntry(entity="e4", predicate="p", timestamp=8.0, answered=True),
        ]
        requests = requests_from_query_log(entries, min_count=2)
        assert requests == [
            FactRankRequest(entities=("e1",), predicate="p"),
            FactRankRequest(entities=("e2",), predicate="p"),
        ]

    def test_warm_from_query_log_end_to_end(self, bundle_dir, embed_symbols):
        _entities, predicate, triples = embed_symbols
        subject = triples[0][0]
        entries = [
            QueryLogEntry(entity=subject, predicate=predicate, timestamp=float(i), answered=True)
            for i in range(3)
        ]
        with ServingService(bundle_dir) as svc:
            warmed = svc.warm_from_query_log(entries, min_count=2)
            assert warmed == 1
            response = svc.serve(
                FactRankRequest(entities=(subject,), predicate=predicate)
            )
            assert response.cached


class TestPerTypeStats:
    def test_per_request_type_counters_and_p95(self, bundle_dir, seed_entities, sample_texts):
        with ServingService(bundle_dir, num_shards=4) as svc:
            svc.random_walks(seed_entities[:4])
            svc.random_walks(seed_entities[:4], seed=1)
            svc.annotate(sample_texts[0])
            stats = svc.stats()
        assert stats["counter.serve.requests.WalkRequest"] == 2.0
        assert stats["counter.serve.requests.AnnotateRequest"] == 1.0
        assert stats["hist.serve.latency.WalkRequest.count"] == 2.0
        assert stats["hist.serve.latency.WalkRequest.p95_s"] >= 0.0
        assert stats["hist.serve.latency.AnnotateRequest.count"] == 1.0
        assert stats["serve.p95_s"] >= stats["serve.p50_s"] >= 0.0

    def test_error_counters(self, bundle_dir):
        with ServingService(bundle_dir) as svc:
            svc.serve(KnnRequest(entities=("entity:ghost",), k=2))
            stats = svc.stats()
        assert stats["counter.serve.errors"] == 1.0
        assert stats["counter.serve.errors.KnnRequest"] == 1.0


class TestSaveAndServe:
    def test_round_trip(self, serving_kg, tmp_path, seed_entities):
        with save_and_serve(serving_kg.store, tmp_path / "bundle") as svc:
            walks = svc.random_walks(seed_entities[:2])
            assert len(walks) == 2
            assert svc.store_version == serving_kg.store.version
