"""ServingService facade: routing, caching, batching and generation swaps."""

import pytest

from repro.kg.persistence import save_snapshot
from repro.serving.service import ServingService, save_and_serve
from repro.serving.worker import entity_walk_seed


@pytest.fixture(scope="module")
def service(bundle_dir) -> ServingService:
    svc = ServingService(bundle_dir, mode="inline", num_shards=4)
    yield svc
    svc.close()


class TestTraversalServing:
    def test_walks_are_shard_invariant(self, bundle_dir, seed_entities):
        results = []
        for num_shards in (1, 3, 8):
            with ServingService(bundle_dir, num_shards=num_shards) as svc:
                results.append(svc.random_walks(seed_entities, seed=7))
        assert results[0] == results[1] == results[2]

    def test_walks_match_cold_engine_contract(self, service, bundle_dir, seed_entities):
        from repro.kg.persistence import load_snapshot

        served = service.random_walks(seed_entities[:6], seed=3)
        cold = load_snapshot(bundle_dir).engine()
        for entity, walks in zip(seed_entities[:6], served):
            assert walks == cold.random_walks(
                [entity], walk_length=8, walks_per_entity=4,
                seed=entity_walk_seed(3, entity),
            )

    def test_neighborhood_and_related(self, service, seed_entities):
        neighborhoods = service.neighborhood(seed_entities[:4], hops=2)
        assert len(neighborhoods) == 4
        assert all(row == sorted(row) for row in neighborhoods)
        related = service.related_entities(seed_entities[:3], k=5)
        assert len(related) == 3
        assert all(len(hits) <= 5 for hits in related)

    def test_empty_request(self, service):
        assert service.random_walks([]) == []
        assert service.neighborhood([]) == []


class TestQueryCaching:
    def test_repeat_request_hits_cache(self, bundle_dir, seed_entities):
        with ServingService(bundle_dir) as svc:
            first = svc.random_walks(seed_entities, seed=1)
            hits_before = svc._cache.hits
            second = svc.random_walks(seed_entities, seed=1)
            assert second == first
            assert svc._cache.hits == hits_before + 1

    def test_different_parameters_miss(self, bundle_dir, seed_entities):
        with ServingService(bundle_dir) as svc:
            svc.random_walks(seed_entities, seed=1)
            svc.random_walks(seed_entities, seed=2)
            assert svc._cache.hits == 0

    def test_annotation_caches_per_text(self, bundle_dir, sample_texts):
        with ServingService(bundle_dir) as svc:
            first = svc.annotate(sample_texts[0])
            second = svc.annotate(sample_texts[0])
            assert second == first
            assert svc._cache.hits == 1


class TestAnnotationServing:
    def test_annotate_matches_pipeline(self, service, sample_texts):
        pipeline = service._pool.local_state.snapshot.annotation_pipeline(tier="full")
        for text in sample_texts[:3]:
            served = service.annotate(text)
            expected = pipeline.annotate(text)
            assert [
                (link.mention.start, link.mention.end, link.entity) for link in served
            ] == [
                (link.mention.start, link.mention.end, link.entity) for link in expected
            ]

    def test_annotate_many_matches_singles(self, service, sample_texts):
        batched = service.annotate_many(sample_texts)
        for text, links in zip(sample_texts, batched):
            singles = service.annotate(text)
            assert [
                (link.mention.start, link.mention.end, link.entity) for link in links
            ] == [
                (link.mention.start, link.mention.end, link.entity) for link in singles
            ]

    def test_annotate_many_empty(self, service):
        assert service.annotate_many([]) == []


class TestGenerationAdoption:
    def test_adopt_generation_invalidates_cache(self, tmp_path):
        # A private world: the test mutates the store between generations.
        from repro.kg.generator import SyntheticKGConfig, generate_kg
        from repro.kg.store import EntityRecord

        kg = generate_kg(SyntheticKGConfig(seed=3, scale=0.1))
        store = kg.store
        seeds = sorted(store.entity_ids())[:4]
        bundle_v1 = tmp_path / "v1"
        save_snapshot(store, bundle_v1)
        with ServingService(bundle_v1) as svc:
            svc.random_walks(seeds, seed=5)
            version_1 = svc.store_version
            assert len(svc._cache) > 0

            # Grow the store: new generation, new bundle.
            store.upsert_entity(
                EntityRecord(
                    entity="entity:person/99999",
                    name="Generation Marker",
                    types=("type:person",),
                )
            )
            bundle_v2 = tmp_path / "v2"
            save_snapshot(store, bundle_v2)
            adopted = svc.adopt_generation(bundle_v2)
            assert adopted == store.version != version_1
            assert len(svc._cache) == 0  # old generation purged
            walks = svc.random_walks(seeds, seed=5)
            assert len(walks) == 4
            assert svc.metrics.counters["serve.generations"] == 2


class TestStatsSurface:
    def test_stats_keys(self, bundle_dir, seed_entities, sample_texts):
        with ServingService(bundle_dir, num_shards=4) as svc:
            svc.random_walks(seed_entities[:4])
            svc.annotate(sample_texts[0])
            stats = svc.stats()
        assert stats["counter.serve.requests"] == 2.0
        assert stats["hist.serve.latency.count"] == 2.0
        assert stats["serve.workers"] == 1.0
        assert stats["serve.mode"] == "inline"
        assert stats["serve.shards"] == 4.0
        assert 0.0 <= stats["serve.cache_hit_rate"] <= 1.0
        assert stats["serve.store_version"] == float(svc.store_version)

    def test_shard_fanout_counter(self, bundle_dir, seed_entities):
        with ServingService(bundle_dir, num_shards=4) as svc:
            svc.random_walks(seed_entities)
            assert 1 <= svc.metrics.counters["serve.shard_fanout"] <= 4


class TestSaveAndServe:
    def test_round_trip(self, serving_kg, tmp_path, seed_entities):
        with save_and_serve(serving_kg.store, tmp_path / "bundle") as svc:
            walks = svc.random_walks(seed_entities[:2])
            assert len(walks) == 2
            assert svc.store_version == serving_kg.store.version
