"""Chaos suite: the serving stack under deterministic fault injection.

The headline invariant (the ISSUE's acceptance bar): with worker crashes
injected at rate 0.2 into a subprocess fleet, a mixed workload of every
request type still completes 100%, and every payload is *byte-identical*
to a healthy run — supervision respawns replicas from the same pinned
``WorkerConfig`` over the same immutable bundle, and retries are pure
re-reads.  Around it: unit coverage for the fault plan, retry policy and
circuit breaker primitives, the degraded-envelope and serve-stale paths,
batcher poison isolation, gateway shedding/healthz, and a protocol fuzz
pass (malformed bytes must never raise anything but ``ProtocolError``).
"""

from __future__ import annotations

import asyncio
import os
import pickle
import random
import time

import pytest

from repro.serving.batcher import MicroBatcher
from repro.serving.faults import (
    SITE_WORKER_EXECUTE,
    SITE_WORKER_RESULT,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedIOError,
    armed,
)
from repro.serving.gateway import AsyncGateway, GatewayHTTPServer
from repro.serving.protocol import (
    ProtocolError,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from repro.serving.requests import (
    STATUS_DEGRADED,
    AnnotateRequest,
    FactRankRequest,
    KnnRequest,
    NeighborhoodRequest,
    RelatedRequest,
    SimilarityRequest,
    VerifyRequest,
    WalkRequest,
)
from repro.serving.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    CircuitOpenError,
    RetryPolicy,
    ShardResultError,
    TransientServingError,
    is_retryable,
)
from repro.serving.service import ServingService


def mixed_workload(service: ServingService, entities: list[str], texts: list[str]):
    """One request of every wire type, derived from the live bundle."""
    state = service._pool.local_state
    suite = state.embedding_suite()
    dataset = suite.trained.dataset
    triples = [dataset.decode(*map(int, row)) for row in dataset.triples[:3]]
    return [
        WalkRequest(entities=tuple(entities[:6]), walk_length=4, walks_per_entity=2, seed=3),
        NeighborhoodRequest(entities=tuple(entities[:6]), hops=1),
        RelatedRequest(entities=tuple(entities[:4]), k=5),
        AnnotateRequest(texts=(texts[0],)),
        FactRankRequest(entities=(triples[0][0],), predicate=dataset.relations[0]),
        VerifyRequest(candidates=tuple(triples)),
        SimilarityRequest(pairs=((dataset.entities[0], dataset.entities[1]),)),
        KnnRequest(entities=(dataset.entities[0], dataset.entities[1]), k=3),
    ]


# -- fault plan ----------------------------------------------------------------


class TestFaultPlan:
    def test_rate_decisions_are_deterministic(self):
        spec = FaultSpec(SITE_WORKER_EXECUTE, "io_error", rate=0.5)
        decisions = []
        for _ in range(2):
            plan = FaultPlan((spec,), seed=9)
            decisions.append(
                [plan.decide(SITE_WORKER_EXECUTE) is not None for _ in range(50)]
            )
        assert decisions[0] == decisions[1]
        fired = sum(decisions[0])
        assert 0 < fired < 50  # a real mix at rate 0.5

    def test_reseeded_changes_schedule_and_resets_counters(self):
        spec = FaultSpec(SITE_WORKER_EXECUTE, "crash", rate=0.5)
        plan = FaultPlan((spec,), seed=3)
        base = [plan.decide(SITE_WORKER_EXECUTE) is not None for _ in range(40)]
        respawned = plan.reseeded(1)
        assert respawned.calls(SITE_WORKER_EXECUTE) == 0
        other = [
            respawned.decide(SITE_WORKER_EXECUTE) is not None for _ in range(40)
        ]
        assert base != other  # a crashed call does not replay forever

    def test_at_calls_and_max_injections(self):
        plan = FaultPlan(
            (FaultSpec(SITE_WORKER_EXECUTE, "io_error", at_calls=(2, 3, 4), max_injections=2),),
        )
        hits = [plan.decide(SITE_WORKER_EXECUTE) is not None for _ in range(5)]
        assert hits == [False, True, True, False, False]
        assert plan.injections() == 2

    def test_request_type_filter(self):
        plan = FaultPlan(
            (FaultSpec(SITE_WORKER_EXECUTE, "io_error", rate=1.0, request_type="walk"),),
        )
        assert plan.decide(SITE_WORKER_EXECUTE, "knn") is None
        assert plan.decide(SITE_WORKER_EXECUTE, "walk") is not None

    def test_pickle_ships_rules_not_counters(self):
        plan = FaultPlan((FaultSpec(SITE_WORKER_EXECUTE, "crash", rate=1.0),), seed=5)
        plan.decide(SITE_WORKER_EXECUTE)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.specs == plan.specs and clone.seed == plan.seed
        assert clone.injections() == 0 and clone.calls(SITE_WORKER_EXECUTE) == 0

    def test_armed_restores_previous_plan(self):
        from repro.serving import faults

        outer = FaultPlan((FaultSpec(SITE_WORKER_EXECUTE, "slow", rate=1.0, delay_s=0.0),))
        inner = FaultPlan((FaultSpec(SITE_WORKER_EXECUTE, "slow", rate=1.0, delay_s=0.0),))
        with armed(outer):
            with armed(inner):
                assert faults.active_plan() is inner
            assert faults.active_plan() is outer
        assert faults.active_plan() is None

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(SITE_WORKER_EXECUTE, "explode", rate=0.5)
        with pytest.raises(ValueError):
            FaultSpec(SITE_WORKER_EXECUTE, "crash")  # no rate, no schedule
        with pytest.raises(ValueError):
            FaultSpec(SITE_WORKER_EXECUTE, "crash", rate=1.5)


# -- retry policy --------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_is_bounded_and_deterministic(self):
        policy = RetryPolicy(backoff_base_s=0.01, backoff_max_s=0.04, jitter=0.5)
        for n in range(1, 6):
            delay = policy.backoff_s(n, key="k")
            assert 0.0 < delay <= 0.04
            assert delay == policy.backoff_s(n, key="k")
        assert policy.backoff_s(1, key="a") != policy.backoff_s(1, key="b")

    def test_call_retries_transients_until_success(self):
        failures = [InjectedIOError("flake"), InjectedIOError("flake")]

        def flaky(attempt: int) -> str:
            if failures:
                raise failures.pop()
            return "ok"

        result, attempts = RetryPolicy(max_attempts=4).call(
            flaky, key="req", sleep=lambda _s: None
        )
        assert (result, attempts) == ("ok", 3)

    def test_call_raises_non_retryable_immediately(self):
        calls = []

        def broken(attempt: int):
            calls.append(attempt)
            raise ValueError("deterministic")

        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=5).call(broken, sleep=lambda _s: None)
        assert calls == [1]

    def test_call_exhausts_budget(self):
        def always(attempt: int):
            raise TransientServingError("down")

        with pytest.raises(TransientServingError):
            RetryPolicy(max_attempts=3).call(always, sleep=lambda _s: None)

    def test_retryable_classification(self):
        assert is_retryable(InjectedCrash("x"))
        assert is_retryable(InjectedIOError("x"))
        assert is_retryable(TransientServingError("x"))
        assert is_retryable(ShardResultError("x"))
        assert is_retryable(CircuitOpenError("pool"))
        assert is_retryable(OSError("x"))
        assert not is_retryable(ValueError("x"))
        assert not is_retryable(TypeError("x"))


# -- circuit breaker -----------------------------------------------------------


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(
            "test",
            failure_threshold=0.5,
            min_volume=4,
            window=8,
            open_duration_s=10.0,
            clock=lambda: clock["now"],
            **kwargs,
        )
        return breaker, clock

    def trip(self, breaker):
        for _ in range(4):
            breaker.record_failure()

    def test_opens_past_failure_rate(self):
        breaker, _clock = self.make()
        breaker.record_success()
        assert breaker.state == CLOSED
        self.trip(breaker)
        assert breaker.state == OPEN
        assert not breaker.allow()
        with pytest.raises(CircuitOpenError):
            breaker.check()

    def test_half_open_probe_closes_on_success(self):
        breaker, clock = self.make()
        self.trip(breaker)
        clock["now"] = 10.0
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # only one probe admitted
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        breaker, clock = self.make()
        self.trip(breaker)
        clock["now"] = 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        # the re-open restarts the cooldown from the failure time
        clock["now"] = 19.0
        assert breaker.state == OPEN
        clock["now"] = 20.0
        assert breaker.state == HALF_OPEN

    def test_snapshot_counts_transitions(self):
        breaker, clock = self.make()
        self.trip(breaker)
        clock["now"] = 10.0
        breaker.allow()
        breaker.record_success()
        snap = breaker.snapshot()
        assert snap["state"] == CLOSED
        assert snap["transitions"] == 3.0  # closed->open->half_open->closed
        assert snap["transitions.closed->open"] == 1.0


# -- degradation at the service layer ------------------------------------------


class TestDegradation:
    def test_one_dead_shard_degrades_instead_of_failing(self, bundle_dir, seed_entities, monkeypatch):
        with ServingService(bundle_dir, mode="inline", num_shards=4) as service:
            request = NeighborhoodRequest(entities=tuple(seed_entities[:8]), hops=1)
            healthy = service.serve(request)
            assert healthy.ok

            # Pick a real shard and kill it deterministically: every
            # sub-request containing its first entity fails, replicas or
            # not — the retry budget must exhaust and degrade.
            router = service._router
            parts = router.scatter_request(request)
            dead_positions, dead_part = parts[0]
            dead = set(dead_part.entities)
            state = service._pool.local_state
            original = state._dispatch

            def flaky(req):
                if dead & set(getattr(req, "entities", ())):
                    raise TransientServingError("replica down")
                return original(req)

            monkeypatch.setattr(state, "_dispatch", flaky)
            service._cache.clear()
            response = service.serve(request)
            assert response.status == STATUS_DEGRADED
            assert response.degraded and not response.ok
            assert response.error is not None
            assert response.error.code == "unavailable"
            assert response.error.retryable
            assert response.error.exception_type == "TransientServingError"
            assert response.resilience["failed_entities"] == float(len(dead_positions))
            for position, value in enumerate(response.payload):
                if position in dead_positions:
                    assert value is None
                else:
                    assert value == healthy.payload[position]
            assert service.stats()["counter.serve.degraded"] >= 1.0

    def test_degraded_envelope_roundtrips_the_wire(self, bundle_dir, seed_entities, monkeypatch):
        with ServingService(bundle_dir, mode="inline", num_shards=4) as service:
            request = RelatedRequest(entities=tuple(seed_entities[:6]), k=4)
            parts = service._router.scatter_request(request)
            dead = set(parts[0][1].entities)
            state = service._pool.local_state
            original = state._dispatch

            def flaky(req):
                if dead & set(getattr(req, "entities", ())):
                    raise TransientServingError("replica down")
                return original(req)

            monkeypatch.setattr(state, "_dispatch", flaky)
            response = service.serve(request)
            assert response.status == STATUS_DEGRADED
            decoded = decode_response(encode_response(response))
            assert decoded.status == STATUS_DEGRADED
            assert decoded.payload == response.payload  # None holes survive
            assert decoded.error.retryable
            assert decoded.resilience == response.resilience

    def test_full_failure_serves_stale_previous_generation(self, bundle_dir, seed_entities, monkeypatch):
        with ServingService(bundle_dir, mode="inline", num_shards=2) as service:
            request = NeighborhoodRequest(entities=tuple(seed_entities[:4]), hops=1)
            fresh = service.serve(request)
            assert fresh.ok
            old_version = service.store_version
            # A generation swap demotes the cached entry to the stale store.
            service._cache.adopt_version(old_version + 1)
            state = service._pool.local_state

            def down(_req):
                raise TransientServingError("fleet down")

            monkeypatch.setattr(state, "_dispatch", down)
            response = service.serve(request)
            assert response.status == STATUS_DEGRADED
            assert response.payload == fresh.payload
            assert response.resilience["stale"] is True
            assert response.resilience["stale_version"] == float(old_version)
            assert service.stats()["counter.serve.stale_served"] >= 1.0

    def test_bare_dispatch_skips_resilience(self, bundle_dir, seed_entities, monkeypatch):
        with ServingService(
            bundle_dir, mode="inline", num_shards=2, resilient=False
        ) as service:
            assert service.retry_policy.max_attempts == 1
            state = service._pool.local_state
            calls = []
            original = state._dispatch

            def flaky(req):
                calls.append(1)
                raise TransientServingError("down")

            monkeypatch.setattr(state, "_dispatch", flaky)
            request = NeighborhoodRequest(entities=tuple(seed_entities[:4]), hops=1)
            response = service.serve(request)
            assert not response.ok and response.status == "error"
            assert len(calls) <= 2  # one per shard, no retries
            monkeypatch.setattr(state, "_dispatch", original)

    def test_sustained_failure_trips_the_pool_breaker(self, bundle_dir, seed_entities):
        plan = FaultPlan(
            (FaultSpec(SITE_WORKER_EXECUTE, "io_error", rate=1.0),), seed=1
        )
        with ServingService(bundle_dir, mode="inline", num_shards=2) as service:
            request = NeighborhoodRequest(entities=tuple(seed_entities[:4]), hops=1)
            with armed(plan):
                response = service.serve(request)
            assert not response.ok  # everything failed, nothing stale
            stats = service.stats()
            assert stats["pool.breaker.transitions"] >= 1.0
            assert stats["pool.breaker.state"] in (OPEN, HALF_OPEN)
            assert stats["counter.pool.failures"] >= 4.0

    def test_corrupt_shard_results_are_retried(self, bundle_dir, seed_entities):
        plan = FaultPlan(
            (FaultSpec(SITE_WORKER_RESULT, "corrupt", rate=0.6, max_injections=3),),
            seed=2,
        )
        with ServingService(bundle_dir, mode="inline", num_shards=4) as service:
            request = NeighborhoodRequest(entities=tuple(seed_entities[:8]), hops=1)
            healthy = service.serve(request)
            service._cache.clear()
            with armed(plan):
                response = service.serve(request)
            assert plan.injections() > 0
            assert response.ok
            assert response.payload == healthy.payload
            assert service.stats()["counter.serve.shard_corrupt"] >= 1.0


# -- batcher poison isolation ---------------------------------------------------


class TestBatcherPoisonIsolation:
    def test_poisoned_text_fails_alone(self):
        def flush(texts):
            if "poison" in texts:
                raise ValueError("bad text")
            return [t.upper() for t in texts]

        batcher = MicroBatcher(flush, max_batch=8)
        futures = [batcher.submit(t) for t in ("a", "poison", "b")]
        batcher.flush()
        assert futures[0].result() == "A"
        assert futures[2].result() == "B"
        with pytest.raises(ValueError):
            futures[1].result()
        assert batcher.metrics.snapshot()["counter.batcher.batch_poisoned"] == 1.0

    def test_single_text_batch_fails_directly(self):
        def flush(texts):
            raise ValueError("bad")

        batcher = MicroBatcher(flush, max_batch=8)
        future = batcher.submit("only")
        batcher.flush()
        with pytest.raises(ValueError):
            future.result()
        assert "counter.batcher.batch_poisoned" not in batcher.metrics.snapshot()


# -- protocol fuzz --------------------------------------------------------------


class TestProtocolFuzz:
    def test_decode_request_never_raises_past_protocol_error(self):
        rng = random.Random(2023)
        valid = encode_request(
            WalkRequest(entities=("e1", "e2"), walk_length=4, walks_per_entity=2)
        )
        candidates: list[bytes] = []
        # truncations of a valid encoding at every offset
        candidates.extend(valid[:cut] for cut in range(len(valid)))
        # random garbage of assorted lengths
        candidates.extend(
            bytes(rng.randrange(256) for _ in range(rng.randrange(1, 64)))
            for _ in range(200)
        )
        # structurally-wrong JSON
        candidates.extend(
            [
                b"null",
                b"[]",
                b'"walk"',
                b"{}",
                b'{"protocol": 1}',
                b'{"protocol": 1, "type": "walk"}',
                b'{"protocol": 1, "type": "nope", "body": {}}',
                b'{"protocol": "x", "type": "walk", "body": {}}',
                b'{"protocol": 1, "type": "walk", "body": {"entities": 3}}',
                b'{"protocol": 1, "type": "walk", "body": {"entities": ["a"], "walk_length": "x"}}',
                b'{"protocol": 1, "type": "annotate", "body": {"texts": [1, 2]}}',
                b'{"protocol": 1, "type": "verify", "body": {"candidates": [["s", "p"]]}}',
                b'\xff\xfe{"protocol": 1}',
            ]
        )
        decoded = 0
        for blob in candidates:
            try:
                decode_request(blob)
                decoded += 1
            except ProtocolError:
                continue
        # only the untruncated prefix (the full valid payload) may decode
        assert decoded <= 1

    def test_decode_response_rejects_garbage_structurally(self):
        for blob in (b"", b"{", b'{"status": "ok"}', b"[1,2,3]"):
            with pytest.raises(ProtocolError):
                decode_response(blob)


# -- gateway: shedding and health ----------------------------------------------


class TestGatewayResilience:
    def test_shedding_drops_cheap_classes_first(self, bundle_dir, seed_entities):
        async def scenario(service):
            gateway = AsyncGateway(
                service, max_concurrency=2, max_pending=8, shed_fraction=0.5
            )
            try:
                gateway._pending = 4  # inside the shed band, below the hard limit
                cheap = WalkRequest(entities=(seed_entities[0],), seed=1)
                shed = await gateway.serve_async(cheap)
                assert not shed.ok and shed.error.code == "overloaded"
                assert "shedding" in shed.error.message
                expensive = FactRankRequest(entities=(seed_entities[0],), predicate="p0")
                served = await gateway.serve_async(expensive)
                assert served.error is None or served.error.code != "overloaded"
                gateway._pending = 8  # at the hard limit everything rejects
                rejected = await gateway.serve_async(expensive)
                assert not rejected.ok and rejected.error.code == "overloaded"
                assert gateway.metrics.snapshot()["counter.gateway.shed"] == 1.0
            finally:
                gateway._pending = 0
                gateway.close()

        with ServingService(bundle_dir, mode="inline", num_shards=2) as service:
            asyncio.run(scenario(service))

    def test_healthz_reports_fleet_and_breakers(self, bundle_dir):
        import json as jsonlib

        async def scenario(service):
            gateway = AsyncGateway(service, max_concurrency=2, max_pending=8)
            server = GatewayHTTPServer(gateway)
            host, port = await server.start()
            try:
                status, body = await _http_get(host, port, "/healthz")
                health = jsonlib.loads(body)
                assert status.endswith("200 OK")
                assert health["status"] == "ok"
                assert health["live_workers"] == 1
                assert health["mode"] == "inline"
                assert health["breakers"]["pool"] == CLOSED
                # Trip every breaker: all-open must flip /healthz to 503.
                for _ in range(4):
                    service._pool.breaker.record_failure()
                status, body = await _http_get(host, port, "/healthz")
                health = jsonlib.loads(body)
                assert "503" in status
                assert health["status"] == "unhealthy"
                assert health["breakers"]["pool"] == OPEN
            finally:
                await server.stop()
                gateway.close()

        with ServingService(bundle_dir, mode="inline", num_shards=2) as service:
            asyncio.run(scenario(service))


async def _http_get(host: str, port: int, path: str) -> tuple[str, bytes]:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, payload = raw.partition(b"\r\n\r\n")
    return head.split(b"\r\n")[0].decode("latin-1"), payload


# -- the chaos invariant --------------------------------------------------------


class TestChaosInvariant:
    @pytest.fixture(scope="class")
    def healthy_payloads(self, bundle_dir, seed_entities, sample_texts):
        with ServingService(bundle_dir, mode="inline", num_shards=4) as service:
            workload = mixed_workload(service, seed_entities, sample_texts)
            responses = [service.serve(request) for request in workload]
            assert all(response.ok for response in responses)
            return workload, [encode_response(r) for r in responses]

    def test_process_fleet_survives_crash_rate_0_2(
        self, bundle_dir, healthy_payloads
    ):
        """The acceptance bar: crash rate 0.2 in a subprocess fleet, a
        mixed workload of all 8 types, 100% completion, byte-identical
        payloads, respawns observed."""
        workload, healthy = healthy_payloads
        plan = FaultPlan(
            (FaultSpec(SITE_WORKER_EXECUTE, "crash", rate=0.2, max_injections=4),),
            seed=17,
        )
        with armed(plan):
            with ServingService(
                bundle_dir,
                mode="process",
                num_workers=2,
                num_shards=4,
                cache_capacity=1,  # no cache assists: every answer recomputed
            ) as service:
                responses = [service.serve(request) for request in workload]
                stats = service.stats()
        assert all(response.ok for response in responses), [
            (type(w).__name__, r.status) for w, r in zip(workload, responses) if not r.ok
        ]
        for request, response, expected in zip(workload, responses, healthy):
            got = decode_response(encode_response(response))
            want = decode_response(expected)
            assert got.payload == want.payload, type(request).__name__
        assert stats["pool.executor_respawns"] >= 1.0
        assert stats["counter.pool.retries"] >= 1.0

    def test_real_worker_kill_is_survived(self, bundle_dir, seed_entities):
        """Not an injected exception: SIGKILL a live child mid-fleet."""
        import signal

        with ServingService(
            bundle_dir, mode="process", num_workers=1, num_shards=2
        ) as service:
            request = NeighborhoodRequest(entities=tuple(seed_entities[:4]), hops=1)
            before = service.serve(request)
            assert before.ok
            processes = service._pool._executor._pool._processes
            for pid in list(processes):
                os.kill(pid, signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while any(p.is_alive() for p in processes.values()):
                if time.monotonic() > deadline:  # pragma: no cover
                    pytest.fail("killed child did not exit")
                time.sleep(0.02)
            service._cache.clear()
            after = service.serve(request)
            assert after.ok
            assert after.payload == before.payload
            assert service.stats()["pool.executor_respawns"] >= 1.0

    def test_inline_and_thread_modes_survive_crashes_identically(
        self, bundle_dir, healthy_payloads
    ):
        workload, healthy = healthy_payloads
        for mode in ("inline", "thread"):
            plan = FaultPlan(
                (FaultSpec(SITE_WORKER_EXECUTE, "crash", rate=0.2, max_injections=6),),
                seed=23,
            )
            with armed(plan):
                with ServingService(
                    bundle_dir,
                    mode=mode,
                    num_workers=2,
                    num_shards=4,
                    cache_capacity=1,
                ) as service:
                    responses = [service.serve(request) for request in workload]
            assert all(response.ok for response in responses), mode
            for response, expected in zip(responses, healthy):
                assert (
                    decode_response(encode_response(response)).payload
                    == decode_response(expected).payload
                ), mode
