"""End-to-end observability: traces, /metrics, /debug/traces, wire parity.

The acceptance pins for the tracing tentpole:

* one *complete* trace per request — gateway root, service stages,
  per-shard spans, worker spans — in thread AND process mode (the
  cross-process stitching path);
* stage spans reconcile exactly with the envelope ``timings`` keys;
* tracing never changes payloads, and an untraced envelope is
  byte-identical to a pre-tracing build (no ``trace``/``trace_id`` keys);
* ``GET /metrics`` renders parseable Prometheus text, ``GET
  /debug/traces`` serves the ring.
"""

import asyncio
import json
import os
import re

import pytest

from repro.common import tracing
from repro.common.metrics import MetricsRegistry
from repro.common.tracing import TraceContext, Tracer
from repro.serving.gateway import AsyncGateway, GatewayHTTPServer
from repro.serving.protocol import (
    decode_response,
    encode_request,
    encode_response,
    payload_to_wire,
)
from repro.serving.requests import (
    AnnotateRequest,
    FactRankRequest,
    KnnRequest,
    NeighborhoodRequest,
    RelatedRequest,
    SimilarityRequest,
    VerifyRequest,
    WalkRequest,
)
from repro.serving.resilience import CircuitBreaker
from repro.serving.service import ServingService

STAGE_TIMING_OF = {
    "serve.cache": "cache_ms",
    "serve.scatter": "scatter_ms",
    "serve.compute": "compute_ms",
    "serve.gather": "gather_ms",
}


@pytest.fixture(autouse=True)
def _disarmed():
    tracing.disarm()
    tracing._CURRENT.set(None)
    yield
    tracing.disarm()
    tracing._CURRENT.set(None)


@pytest.fixture(scope="module")
def service(bundle_dir) -> ServingService:
    svc = ServingService(bundle_dir, mode="inline", num_shards=4)
    yield svc
    svc.close()


@pytest.fixture(scope="module")
def every_request(service, seed_entities, sample_texts):
    """One servable request of every type in the protocol vocabulary."""
    suite = service._pool.local_state.embedding_suite()
    dataset = suite.trained.dataset
    triples = [dataset.decode(*map(int, row)) for row in dataset.triples[:3]]
    entities, predicate = dataset.entities[:4], dataset.relations[0]
    return [
        WalkRequest(entities=tuple(seed_entities[:4]), seed=11),
        NeighborhoodRequest(entities=tuple(seed_entities[:3]), hops=2),
        RelatedRequest(entities=tuple(seed_entities[:2]), k=5),
        AnnotateRequest(texts=(sample_texts[0],)),
        FactRankRequest(entities=(triples[0][0],), predicate=predicate),
        VerifyRequest(candidates=tuple(triples)),
        SimilarityRequest(pairs=((entities[0], entities[1]), (entities[0], "ghost"))),
        KnnRequest(entities=(entities[0],), k=3),
    ]


def run(coro):
    return asyncio.run(coro)


async def http_roundtrip(host, port, raw: bytes) -> tuple[bytes, bytes, bytes]:
    """One raw HTTP exchange; returns (status line, headers, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(raw)
    await writer.drain()
    data = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except ConnectionError:
        pass
    head, _, body = data.partition(b"\r\n\r\n")
    return head.split(b"\r\n")[0], head, body


def post_query(body: bytes) -> bytes:
    return (
        f"POST /v1/query HTTP/1.1\r\nHost: t\r\nContent-Length: {len(body)}\r\n\r\n"
    ).encode() + body


def get(path: str) -> bytes:
    return f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode()


def span_names(trace: dict) -> set[str]:
    return {record["name"] for record in trace["spans"]}


def assert_single_well_formed_trace(trace: dict, root_name: str) -> None:
    """Structural pins every assembled trace must satisfy."""
    roots = [r for r in trace["spans"] if r["parent_id"] is None]
    assert len(roots) == 1, trace
    assert roots[0]["name"] == root_name
    ids = {record["span_id"] for record in trace["spans"]}
    for record in trace["spans"]:
        assert record["trace_id"] == trace["trace_id"]
        if record["parent_id"] is not None:
            assert record["parent_id"] in ids, (record["name"], trace)
        assert record["wall_ms"] >= 0.0
        assert record["exclusive_ms"] >= 0.0
        assert record["exclusive_ms"] <= record["wall_ms"] + 1e-9


class TestServeTracing:
    def test_one_complete_trace_per_request(self, service, seed_entities):
        request = WalkRequest(entities=tuple(seed_entities[:4]), seed=3)
        with tracing.armed() as tracer:
            response = service.serve(request)
            assert response.ok
            [trace] = tracer.recent()
        assert_single_well_formed_trace(trace, "serve.request")
        names = span_names(trace)
        assert {"serve.request", "serve.scatter", "serve.compute",
                "serve.gather", "serve.shard", "worker.execute"} <= names
        assert response.trace_id == trace["trace_id"]
        assert tracer.counters()["traces_live"] == 0

    def test_stage_spans_reconcile_with_envelope_timings(
        self, service, seed_entities
    ):
        request = WalkRequest(entities=tuple(seed_entities[:6]), seed=5)
        with tracing.armed() as tracer:
            response = service.serve(request)
            [trace] = tracer.recent()
        stage_ms = {
            record["name"]: record["attributes"]["stage_ms"]
            for record in trace["spans"]
            if "stage_ms" in record["attributes"]
        }
        assert stage_ms, trace
        for name, value in stage_ms.items():
            key = STAGE_TIMING_OF[name]
            # The stage span carries the exact envelope measurement.
            assert response.timings[key] == value, (name, response.timings)
        # And the stage measurement is bounded by its span's wall time.
        by_name = {record["name"]: record for record in trace["spans"]}
        for name, value in stage_ms.items():
            assert value <= by_name[name]["wall_ms"] + 1e-6

    def test_cache_hit_trace_and_total_ms(self, service, seed_entities):
        request = WalkRequest(entities=tuple(seed_entities[:2]), seed=77)
        service.serve(request)  # warm the cache untraced
        with tracing.armed() as tracer:
            response = service.serve(request)
            [trace] = tracer.recent()
        assert response.cached
        assert "total_ms" in response.timings  # satellite: always present
        by_name = {record["name"]: record for record in trace["spans"]}
        assert by_name["serve.cache"]["attributes"]["hit"] is True
        assert by_name["serve.request"]["attributes"]["cached"] is True

    def test_error_envelope_has_total_ms_and_trace(self, service):
        class Bogus:
            pass

        with tracing.armed() as tracer:
            response = service.serve(Bogus())
            [trace] = tracer.recent()
        assert response.status == "error"
        assert "total_ms" in response.timings
        assert trace["spans"][0]["attributes"]["status"] == "error"

    def test_payloads_identical_traced_vs_untraced(self, service, seed_entities):
        request = WalkRequest(entities=tuple(seed_entities[:4]), seed=9)
        untraced = service.serve(request)
        with tracing.armed():
            traced = service.serve(request)
        wire_type = type(request).wire_type
        assert json.dumps(
            payload_to_wire(wire_type, traced.payload), sort_keys=True
        ) == json.dumps(payload_to_wire(wire_type, untraced.payload), sort_keys=True)

    def test_untraced_wire_bytes_carry_no_trace_keys(self, service, seed_entities):
        """Byte parity with pre-tracing builds: tracing off => no new keys."""
        request = WalkRequest(entities=tuple(seed_entities[:2]), seed=1)
        response = service.serve(request)
        assert response.trace_id == ""
        envelope = json.loads(encode_response(response))
        assert "trace_id" not in envelope
        assert "trace" not in json.loads(encode_request(request))

    def test_traced_request_envelope_roundtrips_for_old_decoders(
        self, seed_entities
    ):
        """The trace field is additive: a decoder ignoring it still works."""
        from repro.serving.protocol import decode_request

        request = WalkRequest(entities=tuple(seed_entities[:2]), seed=4)
        wire = encode_request(request, trace=TraceContext("t-1", "s-1"))
        assert json.loads(wire)["trace"] == {"trace_id": "t-1", "span_id": "s-1"}
        assert decode_request(wire) == request


class TestCrossProcessStitching:
    @pytest.fixture(scope="class")
    def process_service(self, bundle_dir):
        svc = ServingService(
            bundle_dir, mode="process", num_workers=1, num_shards=2
        )
        yield svc
        svc.close()

    def test_worker_spans_carry_child_pid_and_stitch(
        self, process_service, seed_entities
    ):
        request = WalkRequest(entities=tuple(seed_entities[:4]), seed=13)
        with tracing.armed() as tracer:
            response = process_service.serve(request)
            assert response.ok
            [trace] = tracer.recent()
        assert_single_well_formed_trace(trace, "serve.request")
        workers = [r for r in trace["spans"] if r["name"] == "worker.execute"]
        assert workers, trace
        shard_ids = {
            r["span_id"] for r in trace["spans"] if r["name"] == "serve.shard"
        }
        for record in workers:
            assert record["pid"] != os.getpid()  # executed in the child
            assert record["parent_id"] in shard_ids  # under its shard span
        assert tracer.counters()["spans_adopted"] >= len(workers)

    def test_process_payloads_identical_traced_vs_untraced(
        self, process_service, seed_entities
    ):
        request = NeighborhoodRequest(entities=tuple(seed_entities[:3]), hops=2)
        untraced = process_service.serve(request)
        with tracing.armed():
            traced = process_service.serve(request)
        wire_type = type(request).wire_type
        assert json.dumps(
            payload_to_wire(wire_type, traced.payload), sort_keys=True
        ) == json.dumps(payload_to_wire(wire_type, untraced.payload), sort_keys=True)

    def test_untraced_process_dispatch_ships_no_trace_machinery(
        self, process_service, seed_entities
    ):
        """Disarmed, the pool returns plain results (no wrapper futures)."""
        request = WalkRequest(entities=tuple(seed_entities[:2]), seed=21)
        response = process_service.serve(request)
        assert response.ok
        assert response.trace_id == ""


class TestBreakerObservability:
    def test_breaker_transitions_increment_metrics(self):
        metrics = MetricsRegistry()
        clock = [0.0]
        breaker = CircuitBreaker(
            "test",
            min_volume=1,
            failure_threshold=0.01,
            open_duration_s=10.0,
            clock=lambda: clock[0],
            metrics=metrics,
        )
        breaker.record_failure()
        assert metrics.counters["breaker.transitions"] == 1
        assert metrics.counters["breaker.transitions.closed->open"] == 1
        clock[0] = 11.0
        breaker.check()  # probes: open -> half_open
        breaker.record_success()
        assert metrics.counters["breaker.transitions"] == 3
        assert metrics.counters["breaker.transitions.half_open->closed"] == 1

    def test_breaker_transition_event_lands_on_current_span(self):
        metrics = MetricsRegistry()
        breaker = CircuitBreaker(
            "evt", min_volume=1, failure_threshold=0.01, metrics=metrics
        )
        with tracing.armed() as tracer:
            with tracing.span("root"):
                breaker.record_failure()
            [trace] = tracer.recent()
        events = trace["spans"][0]["events"]
        assert any(
            e["name"] == "breaker.transition" and e["to"] == "open"
            for e in events
        ), events


PROM_LINE = re.compile(
    r"^[a-zA-Z_][a-zA-Z0-9_]*(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})? [0-9.eE+-]+$|^\+Inf$"
)


def parse_prometheus(text: str) -> dict[str, list[str]]:
    """Minimal 0.0.4 parser: {metric_name: [sample lines]}; asserts shape."""
    series: dict[str, list[str]] = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            assert len(parts) == 4 and parts[3] in (
                "counter", "gauge", "summary", "histogram"
            ), line
            continue
        assert not line.startswith("#"), line
        match = PROM_LINE.match(line.replace("+Inf", "Inf"))
        assert match is not None, f"unparseable sample line: {line!r}"
        name = line.split("{")[0].split(" ")[0]
        series.setdefault(name, []).append(line)
    return series


class TestHTTPEndpoints:
    def test_metrics_endpoint_scrapes_as_prometheus_text(
        self, service, seed_entities
    ):
        service.serve(WalkRequest(entities=tuple(seed_entities[:2]), seed=2))

        async def go():
            gateway = AsyncGateway(service, max_concurrency=2, max_pending=4)
            server = GatewayHTTPServer(gateway)
            host, port = await server.start()
            try:
                return await http_roundtrip(host, port, get("/metrics"))
            finally:
                await server.stop()
                gateway.close()

        status_line, head, body = run(go())
        assert status_line == b"HTTP/1.1 200 OK"
        assert b"text/plain" in head
        series = parse_prometheus(body.decode("utf-8"))
        assert "kg_serve_requests_total" in series
        assert "kg_serve_store_version" in series
        assert "kg_breaker_state" in series
        assert any('type="WalkRequest"' in line
                   for line in series["kg_serve_requests_by_type_total"])
        assert "kg_serve_latency_seconds_bucket" in series

    def test_debug_traces_endpoint(self, service, seed_entities):
        request = WalkRequest(entities=tuple(seed_entities[:3]), seed=31)

        async def go(raw_request: bytes):
            gateway = AsyncGateway(service, max_concurrency=2, max_pending=4)
            server = GatewayHTTPServer(gateway)
            host, port = await server.start()
            try:
                await http_roundtrip(host, port, post_query(raw_request))
                return await http_roundtrip(host, port, get("/debug/traces"))
            finally:
                await server.stop()
                gateway.close()

        # Disarmed: the endpoint answers but is empty.
        _, _, body = run(go(encode_request(request)))
        disarmed = json.loads(body)
        assert disarmed["armed"] is False
        assert disarmed["recent"] == []

        with tracing.armed(Tracer()) as tracer:
            status_line, _, body = run(go(encode_request(request)))
        assert status_line == b"HTTP/1.1 200 OK"
        payload = json.loads(body)
        assert payload["armed"] is True
        assert payload["counters"]["traces_completed"] >= 1
        assert payload["recent"], payload
        trace = payload["recent"][0]
        assert_single_well_formed_trace(trace, "gateway.request")
        assert "serve.request" in span_names(trace)

    def test_every_request_type_yields_one_complete_gateway_trace(
        self, service, every_request
    ):
        async def go():
            gateway = AsyncGateway(service, max_concurrency=2, max_pending=8)
            server = GatewayHTTPServer(gateway)
            host, port = await server.start()
            results = []
            try:
                for request in every_request:
                    _, _, body = await http_roundtrip(
                        host, port, post_query(encode_request(request))
                    )
                    results.append((request, body))
            finally:
                await server.stop()
                gateway.close()
            return results

        with tracing.armed(Tracer(ring_capacity=64)) as tracer:
            results = run(go())
            traces = {t["trace_id"]: t for t in tracer.recent()}
            counters = tracer.counters()
        assert len(traces) == len(every_request)
        assert counters["traces_live"] == 0  # every trace completed
        for request, body in results:
            response = decode_response(body)
            assert response.ok, (type(request).__name__, response.error)
            assert response.trace_id in traces, type(request).__name__
            trace = traces[response.trace_id]
            assert_single_well_formed_trace(trace, "gateway.request")
            names = span_names(trace)
            assert {"gateway.request", "serve.request", "worker.execute"} <= names, (
                type(request).__name__,
                names,
            )
            root = trace["spans"][0]
            assert root["attributes"]["request_type"] == type(request).__name__
            # The envelope's own total reconciles with the serve span.
            serve_span = next(
                r for r in trace["spans"] if r["name"] == "serve.request"
            )
            assert response.timings["total_ms"] <= serve_span["wall_ms"] + 1.0

    def test_client_seeded_trace_context_joins_server_spans(
        self, service, seed_entities
    ):
        request = WalkRequest(entities=tuple(seed_entities[:2]), seed=8)
        wire = encode_request(request, trace=TraceContext("cli-trace", "cli-span"))

        async def go():
            gateway = AsyncGateway(service, max_concurrency=1, max_pending=2)
            server = GatewayHTTPServer(gateway)
            host, port = await server.start()
            try:
                return await http_roundtrip(host, port, post_query(wire))
            finally:
                await server.stop()
                gateway.close()

        with tracing.armed() as tracer:
            _, _, body = run(go())
            finished = tracer.spans_finished
        response = decode_response(body)
        assert response.ok
        # The server's spans joined the caller's distributed trace id.
        assert response.trace_id == "cli-trace"
        assert finished >= 2  # gateway.request + serve.request at least
