"""Async gateway: admission control, deadlines, HTTP front door, wire parity."""

import asyncio
import json
import threading
import time

import pytest

from repro.serving.gateway import AsyncGateway, GatewayHTTPServer
from repro.serving.protocol import (
    decode_response,
    encode_request,
    encode_response,
    payload_to_wire,
)
from repro.serving.requests import (
    AnnotateRequest,
    FactRankRequest,
    KnnRequest,
    NeighborhoodRequest,
    RelatedRequest,
    SimilarityRequest,
    VerifyRequest,
    WalkRequest,
)
from repro.serving.service import ServingService


@pytest.fixture(scope="module")
def service(bundle_dir) -> ServingService:
    svc = ServingService(bundle_dir, mode="inline", num_shards=4)
    yield svc
    svc.close()


@pytest.fixture(scope="module")
def embed_symbols(service):
    """(entities, predicate, candidate triples) known to the trained suite."""
    suite = service._pool.local_state.embedding_suite()
    dataset = suite.trained.dataset
    triples = [dataset.decode(*map(int, row)) for row in dataset.triples[:3]]
    return dataset.entities[:4], dataset.relations[0], triples


@pytest.fixture(scope="module")
def every_request(seed_entities, sample_texts, embed_symbols):
    """One servable request of every type in the protocol vocabulary."""
    entities, predicate, triples = embed_symbols
    return [
        WalkRequest(entities=tuple(seed_entities[:4]), seed=11),
        NeighborhoodRequest(entities=tuple(seed_entities[:3]), hops=2),
        RelatedRequest(entities=tuple(seed_entities[:2]), k=5),
        AnnotateRequest(texts=(sample_texts[0],)),
        FactRankRequest(entities=(triples[0][0],), predicate=predicate),
        VerifyRequest(candidates=tuple(triples)),
        SimilarityRequest(pairs=((entities[0], entities[1]), (entities[0], "ghost"))),
        KnnRequest(entities=(entities[0],), k=3),
    ]


def run(coro):
    return asyncio.run(coro)


async def http_roundtrip(host: int, port: int, raw: bytes) -> tuple[bytes, bytes]:
    """One raw HTTP exchange; returns (status line, body bytes)."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(raw)
    await writer.drain()
    data = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except ConnectionError:
        pass
    head, _, body = data.partition(b"\r\n\r\n")
    return head.split(b"\r\n")[0], body


def post_query(body: bytes) -> bytes:
    return (
        f"POST /v1/query HTTP/1.1\r\nHost: t\r\nContent-Length: {len(body)}\r\n\r\n"
    ).encode() + body


class TestServeAsync:
    def test_matches_sync_serve(self, service, seed_entities):
        request = WalkRequest(entities=tuple(seed_entities[:4]), seed=3)
        expected = service.serve(request)

        async def go():
            gateway = AsyncGateway(service, max_concurrency=2, max_pending=4)
            try:
                return await gateway.serve_async(request)
            finally:
                gateway.close()

        response = run(go())
        assert response.ok
        assert response.payload == expected.payload
        assert response.store_version == expected.store_version

    def test_stream_preserves_request_order(self, service, seed_entities):
        requests = [
            WalkRequest(entities=(entity,), seed=i)
            for i, entity in enumerate(seed_entities[:6])
        ]
        expected = [service.serve(r).payload for r in requests]

        async def go():
            gateway = AsyncGateway(service, max_concurrency=2, max_pending=8)
            try:
                return [r async for r in gateway.serve_stream(requests)]
            finally:
                gateway.close()

        responses = run(go())
        assert [r.payload for r in responses] == expected
        assert all(r.ok for r in responses)

    def test_stream_pipelines_past_a_slow_head(self, service, seed_entities, monkeypatch):
        """A slow first request must not idle the rest of the window:
        completions behind the head keep refilling the pipeline."""
        real_serve = service.serve
        starts: dict[int, float] = {}

        def slow_head_serve(request, **kwargs):
            starts[request.seed] = time.perf_counter()
            if request.seed == 0:
                time.sleep(0.3)
            return real_serve(request)

        monkeypatch.setattr(service, "serve", slow_head_serve)
        requests = [
            WalkRequest(entities=(seed_entities[0],), seed=i) for i in range(5)
        ]

        async def go():
            gateway = AsyncGateway(service, max_concurrency=2, max_pending=8)
            try:
                return [r async for r in gateway.serve_stream(requests)]
            finally:
                gateway.close()

        responses = run(go())
        recorded = dict(starts)
        assert [r.payload for r in responses] == [
            service.serve(r).payload for r in requests
        ]
        # Every later request began executing while the head was still
        # sleeping — the old head-of-line behaviour would start request 2+
        # only after ~0.3s.
        assert all(recorded[i] - recorded[0] < 0.25 for i in range(1, 5)), recorded

    def test_stream_larger_than_concurrency_cap(self, service, seed_entities):
        # More requests than max_concurrency AND max_pending: the stream
        # self-throttles instead of tripping the admission rejection.
        requests = [WalkRequest(entities=(seed_entities[0],), seed=i) for i in range(9)]

        async def go():
            gateway = AsyncGateway(service, max_concurrency=2, max_pending=2)
            try:
                return [r async for r in gateway.serve_stream(requests)]
            finally:
                gateway.close()

        responses = run(go())
        assert len(responses) == 9
        assert all(r.ok for r in responses)


class TestBackpressure:
    def test_queue_full_rejection_envelope(self, service, seed_entities, monkeypatch):
        release = threading.Event()
        real_serve = service.serve

        def slow_serve(request, **kwargs):
            release.wait(timeout=5.0)
            return real_serve(request)

        monkeypatch.setattr(service, "serve", slow_serve)
        request = WalkRequest(entities=(seed_entities[0],), seed=99)

        async def go():
            gateway = AsyncGateway(service, max_concurrency=1, max_pending=1)
            try:
                first = asyncio.ensure_future(gateway.serve_async(request))
                await asyncio.sleep(0.05)  # let it occupy the only slot
                second = await gateway.serve_async(request)
                release.set()
                return await first, second
            finally:
                gateway.close()

        first, second = run(go())
        assert first.ok
        assert not second.ok
        assert second.error is not None and second.error.code == "overloaded"
        assert service.metrics.counters["gateway.rejected"] == 1

    def test_rejection_does_not_leak_pending(self, service, seed_entities):
        async def go():
            gateway = AsyncGateway(service, max_concurrency=1, max_pending=1)
            try:
                for _ in range(3):
                    response = await gateway.serve_async(
                        WalkRequest(entities=(seed_entities[0],), seed=1)
                    )
                    assert response.ok
                return gateway.pending
            finally:
                gateway.close()

        assert run(go()) == 0

    def test_pending_must_cover_concurrency(self, service):
        with pytest.raises(ValueError):
            AsyncGateway(service, max_concurrency=4, max_pending=2)


class TestDeadline:
    def test_deadline_exceeded_envelope(self, service, seed_entities, monkeypatch):
        real_serve = service.serve

        def slow_serve(request, **kwargs):
            time.sleep(0.3)
            return real_serve(request)

        monkeypatch.setattr(service, "serve", slow_serve)

        async def go():
            gateway = AsyncGateway(service, max_concurrency=1, max_pending=2)
            try:
                return await gateway.serve_async(
                    WalkRequest(entities=(seed_entities[0],), seed=5),
                    deadline_s=0.05,
                )
            finally:
                gateway.close()

        response = run(go())
        assert not response.ok
        assert response.error is not None
        assert response.error.code == "deadline_exceeded"

    def test_abandoned_work_keeps_its_concurrency_slot(
        self, service, seed_entities, monkeypatch
    ):
        """A timed-out request's executor thread is still busy; its slot
        must not be handed to the next request until the abandoned
        computation finishes (or new requests would burn their deadlines
        queued behind it)."""
        real_serve = service.serve

        def sometimes_slow(request, **kwargs):
            if request.seed == 0:
                time.sleep(0.3)
            return real_serve(request)

        monkeypatch.setattr(service, "serve", sometimes_slow)

        async def go():
            gateway = AsyncGateway(service, max_concurrency=1, max_pending=4)
            try:
                timed_out = await gateway.serve_async(
                    WalkRequest(entities=(seed_entities[0],), seed=0),
                    deadline_s=0.05,
                )
                follow_up_started = time.perf_counter()
                follow_up = await gateway.serve_async(
                    WalkRequest(entities=(seed_entities[0],), seed=1)
                )
                waited = time.perf_counter() - follow_up_started
                return timed_out, follow_up, waited
            finally:
                gateway.close()

        timed_out, follow_up, waited = run(go())
        assert timed_out.error is not None
        assert timed_out.error.code == "deadline_exceeded"
        assert follow_up.ok
        # The follow-up had to wait out the abandoned ~0.3s computation
        # (of which ~0.05s elapsed before the deadline envelope returned).
        assert waited >= 0.15, waited

    def test_fast_request_beats_deadline(self, service, seed_entities):
        async def go():
            gateway = AsyncGateway(
                service, max_concurrency=1, max_pending=2, default_deadline_s=30.0
            )
            try:
                return await gateway.serve_async(
                    WalkRequest(entities=(seed_entities[0],), seed=6)
                )
            finally:
                gateway.close()

        assert run(go()).ok


class TestHTTPFrontDoor:
    def test_wire_parity_every_request_type(self, service, every_request):
        """AC pin: bytes -> Response -> bytes through the HTTP gateway,
        payloads byte-identical to the direct in-process facade call."""

        async def go():
            gateway = AsyncGateway(service, max_concurrency=2, max_pending=8)
            server = GatewayHTTPServer(gateway)
            host, port = await server.start()
            results = []
            try:
                for request in every_request:
                    status_line, body = await http_roundtrip(
                        host, port, post_query(encode_request(request))
                    )
                    results.append((request, status_line, body))
            finally:
                await server.stop()
                gateway.close()
            return results

        for request, status_line, body in run(go()):
            name = type(request).__name__
            assert status_line == b"HTTP/1.1 200 OK", (name, body)
            wire = decode_response(body)
            assert wire.ok, (name, wire.error)
            direct = service.serve(request)
            assert direct.ok, name
            wire_type = type(request).wire_type
            # Byte-identical payloads: canonical JSON of the gateway's
            # decoded payload vs the direct facade result.
            gateway_bytes = json.dumps(
                json.loads(body)["payload"], sort_keys=True
            ).encode()
            direct_bytes = json.dumps(
                payload_to_wire(wire_type, direct.payload), sort_keys=True
            ).encode()
            assert gateway_bytes == direct_bytes, name
            # And the response itself re-encodes stably (bytes -> Response
            # -> bytes is the identity on the envelope's wire fields).
            assert encode_response(decode_response(body)) == encode_response(wire)

    def test_worker_error_becomes_envelope_not_traceback(self, service):
        request = KnnRequest(entities=("entity:does-not-exist",), k=3)

        async def go():
            gateway = AsyncGateway(service, max_concurrency=2, max_pending=4)
            server = GatewayHTTPServer(gateway)
            host, port = await server.start()
            try:
                return await http_roundtrip(
                    host, port, post_query(encode_request(request))
                )
            finally:
                await server.stop()
                gateway.close()

        status_line, body = run(go())
        assert status_line == b"HTTP/1.1 500 Internal Server Error"
        assert b"Traceback" not in body
        response = decode_response(body)
        assert response.status == "error"
        assert response.error.code == "internal"
        assert "EmbeddingError" in response.error.message

    def test_malformed_json_rejected(self, service):
        async def go():
            gateway = AsyncGateway(service, max_concurrency=1, max_pending=2)
            server = GatewayHTTPServer(gateway)
            host, port = await server.start()
            try:
                return await http_roundtrip(host, port, post_query(b"{nope"))
            finally:
                await server.stop()
                gateway.close()

        status_line, body = run(go())
        assert status_line == b"HTTP/1.1 400 Bad Request"
        envelope = json.loads(body)
        assert envelope["status"] == "error"
        assert envelope["error"]["code"] == "bad_request"

    def test_negative_content_length_rejected(self, service):
        async def go():
            gateway = AsyncGateway(service, max_concurrency=1, max_pending=2)
            server = GatewayHTTPServer(gateway)
            host, port = await server.start()
            try:
                return await http_roundtrip(
                    host,
                    port,
                    b"POST /v1/query HTTP/1.1\r\nHost: t\r\nContent-Length: -1\r\n\r\n",
                )
            finally:
                await server.stop()
                gateway.close()

        status_line, body = run(go())
        assert status_line == b"HTTP/1.1 400 Bad Request"
        assert decode_response(body).error.code == "bad_request"

    def test_unknown_schema_version_rejected(self, service):
        bad = json.dumps(
            {"protocol": 42, "type": "walk", "body": {"entities": ["x"]}}
        ).encode()

        async def go():
            gateway = AsyncGateway(service, max_concurrency=1, max_pending=2)
            server = GatewayHTTPServer(gateway)
            host, port = await server.start()
            try:
                return await http_roundtrip(host, port, post_query(bad))
            finally:
                await server.stop()
                gateway.close()

        status_line, body = run(go())
        assert status_line == b"HTTP/1.1 400 Bad Request"
        assert json.loads(body)["error"]["code"] == "unsupported_version"

    def test_healthz_and_stats(self, service):
        async def go():
            gateway = AsyncGateway(service, max_concurrency=1, max_pending=2)
            server = GatewayHTTPServer(gateway)
            host, port = await server.start()
            try:
                health = await http_roundtrip(
                    host, port, b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
                )
                stats = await http_roundtrip(
                    host, port, b"GET /stats HTTP/1.1\r\nHost: t\r\n\r\n"
                )
                missing = await http_roundtrip(
                    host, port, b"GET /nowhere HTTP/1.1\r\nHost: t\r\n\r\n"
                )
                wrong_method = await http_roundtrip(
                    host, port, b"GET /v1/query HTTP/1.1\r\nHost: t\r\n\r\n"
                )
            finally:
                await server.stop()
                gateway.close()
            return health, stats, missing, wrong_method

        (h_status, h_body), (s_status, s_body), missing, wrong_method = run(go())
        assert h_status == b"HTTP/1.1 200 OK"
        health = json.loads(h_body)
        assert health["status"] == "ok"
        assert health["store_version"] == service.store_version
        assert s_status == b"HTTP/1.1 200 OK"
        assert "serve.workers" in json.loads(s_body)
        # Transport-level failures are full envelopes the codec can parse.
        assert missing[0] == b"HTTP/1.1 404 Not Found"
        assert decode_response(missing[1]).error.code == "bad_request"
        assert wrong_method[0] == b"HTTP/1.1 405 Method Not Allowed"
        assert decode_response(wrong_method[1]).error.code == "bad_request"
