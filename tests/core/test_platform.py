"""Tests for the end-to-end platform facade."""

import pytest

from repro.common.errors import ReproError
from repro.core import KnowledgePlatform
from repro.embeddings.trainer import TrainConfig


@pytest.fixture(scope="module")
def platform(kg):
    p = KnowledgePlatform(kg.store, kg.ontology, now=kg.now)
    p.train_embeddings(TrainConfig(model="distmult", dim=16, epochs=6, seed=2))
    return p


class TestLifecycle:
    def test_embeddings_required_before_services(self, kg):
        fresh = KnowledgePlatform(kg.store, kg.ontology, now=kg.now)
        with pytest.raises(ReproError):
            _ = fresh.embeddings
        with pytest.raises(ReproError):
            fresh.embedding_service()

    def test_train_registers_model(self, platform):
        record = platform.registry.latest("kg-embeddings")
        assert record.version >= 1
        assert "mrr" in record.metrics

    def test_from_synthetic(self):
        platform, kg = KnowledgePlatform.from_synthetic(scale=0.2, seed=3)
        assert len(platform.store) == len(kg.store)

    def test_retrain_bumps_version(self, kg):
        p = KnowledgePlatform(kg.store, kg.ontology, now=kg.now)
        p.train_embeddings(TrainConfig(model="distmult", dim=8, epochs=1, seed=1))
        p.train_embeddings(TrainConfig(model="distmult", dim=8, epochs=1, seed=2))
        assert p.registry.latest("kg-embeddings").version == 2


class TestServices:
    def test_embedding_service_knn(self, platform):
        service = platform.embedding_service()
        entity = platform.embeddings.dataset.entities[0]
        assert service.knn(entity, k=3)

    def test_fact_ranker(self, kg, platform):
        person = next(
            p for p, order in kg.truth.occupation_order.items() if len(order) >= 2
        )
        ranked = platform.fact_ranker().rank(person, "predicate:occupation")
        assert ranked

    def test_fact_verifier_cached(self, platform):
        first = platform.fact_verifier()
        second = platform.fact_verifier()
        assert first is second
        assert first.is_calibrated

    def test_related_entities_strategies(self, kg, platform):
        seed_entity = next(iter(kg.truth.related))
        for strategy in ("traversal", "kge"):
            backend = platform.related_entities(strategy)
            assert backend.related(seed_entity, k=3) is not None
        with pytest.raises(ReproError):
            platform.related_entities("quantum")

    def test_annotator_tiers_cached(self, platform):
        assert platform.annotator("full") is platform.annotator("full")
        assert platform.annotator("lite") is not platform.annotator("full")


class TestWebAndODKE:
    def test_link_web(self, platform, corpus):
        annotator, report = platform.link_web(corpus)
        assert report.docs_processed == len(corpus)
        assert annotator.store.num_links > 0

    def test_enrich_from_web_with_gaps(self, kg, corpus, search_engine):
        from repro.kg.generator import hold_out_facts

        deployed, held_out = hold_out_facts(kg, fraction=0.3, seed=21)
        platform = KnowledgePlatform(deployed, kg.ontology, now=kg.now)
        platform.train_embeddings(
            TrainConfig(model="distmult", dim=8, epochs=2, seed=1)
        )
        before = len(deployed)
        report = platform.enrich_from_web(search_engine, max_targets=25)
        assert report.targets == 25
        if report.fusion and report.fusion.written:
            assert len(deployed) > before
