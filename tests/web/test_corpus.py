"""Tests for the synthetic web corpus generator."""


from repro.web.corpus import WebCorpusConfig, generate_corpus
from repro.web.document import DocumentKind


class TestGoldConsistency:
    def test_offsets_match_surfaces(self, corpus):
        for doc in corpus:
            for mention in doc.gold_mentions:
                assert doc.text[mention.start : mention.end] == mention.surface

    def test_gold_entities_exist_in_kg(self, kg, corpus):
        for doc in corpus:
            for mention in doc.gold_mentions:
                assert kg.store.has_entity(mention.entity)

    def test_distractors_have_no_gold(self, corpus):
        distractors = [d for d in corpus if d.kind == DocumentKind.BLOG and "corner" in d.title]
        assert distractors
        assert all(not d.gold_mentions for d in distractors)


class TestComposition:
    def test_page_counts(self, kg):
        config = WebCorpusConfig(
            seed=1, num_profile_pages=10, num_news_pages=20,
            num_blog_pages=5, num_list_pages=4, num_distractor_pages=3,
        )
        corpus = generate_corpus(kg, config)
        kinds = {}
        for doc in corpus:
            kinds[doc.kind] = kinds.get(doc.kind, 0) + 1
        assert kinds[DocumentKind.PROFILE] == 10
        assert kinds[DocumentKind.NEWS] == 20
        assert kinds[DocumentKind.LIST] == 4

    def test_profiles_carry_structured_data(self, corpus):
        profiles = [d for d in corpus if d.kind == DocumentKind.PROFILE]
        assert profiles
        for doc in profiles:
            assert doc.structured_data is not None
            assert doc.structured_data["@type"] == "Person"
            assert doc.structured_data["name"] == doc.title

    def test_profiles_high_quality_blogs_low(self, corpus):
        profiles = [d for d in corpus if d.kind == DocumentKind.PROFILE]
        blogs = [d for d in corpus if d.kind == DocumentKind.BLOG and d.gold_mentions]
        assert min(d.quality for d in profiles) > max(d.quality for d in blogs)

    def test_some_non_english(self, corpus):
        assert any(d.language != "en" for d in corpus)

    def test_deterministic(self, kg):
        config = WebCorpusConfig(seed=5, num_profile_pages=5, num_news_pages=5,
                                 num_blog_pages=5, num_list_pages=2, num_distractor_pages=2)
        a = generate_corpus(kg, config)
        b = generate_corpus(kg, config)
        assert [d.content_hash for d in a] == [d.content_hash for d in b]

    def test_unique_doc_ids(self, corpus):
        ids_seen = [d.doc_id for d in corpus]
        assert len(ids_seen) == len(set(ids_seen))


class TestVeracityHazards:
    def test_some_blogs_carry_wrong_dob(self, kg, corpus):
        """Blogs with wrong_fact_fraction must sometimes state a DOB that
        contradicts the generator's ground truth."""
        from repro.odke.extractors.base import normalize_date
        import re

        wrong = 0
        pattern = re.compile(r"was born on ([A-Z][a-z]+ \d{1,2}, \d{4})")
        for doc in corpus:
            if doc.kind != DocumentKind.BLOG or not doc.gold_mentions:
                continue
            match = pattern.search(doc.text)
            if not match:
                continue
            stated = normalize_date(match.group(1))
            entity = doc.gold_mentions[0].entity
            truth = kg.truth.birth_dates.get(entity)
            if truth and stated != truth:
                wrong += 1
        assert wrong > 0

    def test_profile_dob_is_correct(self, kg, corpus):
        for doc in corpus:
            if doc.kind != DocumentKind.PROFILE or not doc.structured_data:
                continue
            dob = doc.structured_data.get("birthDate")
            if dob is None:
                continue
            entity = doc.gold_mentions[0].entity
            assert dob == kg.truth.birth_dates[entity]


class TestDocumentModel:
    def test_dict_roundtrip(self, corpus):
        from repro.web.document import WebDocument

        doc = corpus.documents[0]
        clone = WebDocument.from_dict(doc.to_dict())
        assert clone.content_hash == doc.content_hash
        assert clone.gold_mentions == doc.gold_mentions

    def test_content_hash_changes_with_text(self, corpus):
        from dataclasses import replace

        doc = corpus.documents[0]
        changed = replace(doc, text=doc.text + " extra")
        assert changed.content_hash != doc.content_hash

    def test_corpus_add_replaces(self, kg):
        config = WebCorpusConfig(seed=2, num_profile_pages=3, num_news_pages=0,
                                 num_blog_pages=0, num_list_pages=0, num_distractor_pages=0)
        corpus = generate_corpus(kg, config)
        from dataclasses import replace

        doc = replace(corpus.documents[0], title="Changed")
        before = len(corpus)
        corpus.add(doc)
        assert len(corpus) == before
        assert corpus.get(doc.doc_id).title == "Changed"
