"""Tests for crawl churn and BM25 search."""


from repro.web.crawl import CrawlSimulator, evolve
from repro.web.search import BM25SearchEngine


class TestEvolve:
    def test_delta_counts(self, kg, corpus):
        evolved, delta = evolve(corpus, kg, change_fraction=0.2, new_fraction=0.05, seed=1)
        assert len(delta.changed_ids) > 0
        assert len(delta.new_ids) == int(len(corpus) * 0.05)
        assert len(evolved) == len(corpus) + len(delta.new_ids)

    def test_changed_docs_have_new_hash(self, kg, corpus):
        evolved, delta = evolve(corpus, kg, change_fraction=0.2, new_fraction=0.0, seed=2)
        for doc_id in delta.changed_ids:
            assert evolved.get(doc_id).content_hash != corpus.get(doc_id).content_hash

    def test_unchanged_docs_identical(self, kg, corpus):
        evolved, delta = evolve(corpus, kg, change_fraction=0.2, new_fraction=0.0, seed=2)
        changed = set(delta.changed_ids)
        for doc in corpus:
            if doc.doc_id not in changed:
                assert evolved.get(doc.doc_id).content_hash == doc.content_hash

    def test_updated_gold_mentions_consistent(self, kg, corpus):
        evolved, delta = evolve(corpus, kg, change_fraction=0.3, new_fraction=0.0, seed=3)
        for doc_id in delta.changed_ids:
            doc = evolved.get(doc_id)
            for mention in doc.gold_mentions:
                assert doc.text[mention.start : mention.end] == mention.surface

    def test_simulator_steps(self, kg, corpus):
        simulator = CrawlSimulator(kg, corpus, change_fraction=0.1, new_fraction=0.01, seed=4)
        snap1, delta1 = simulator.step()
        snap2, delta2 = simulator.step()
        assert simulator.epoch == 2
        assert len(snap2) >= len(snap1)
        # new ids never collide
        all_ids = [d.doc_id for d in snap2]
        assert len(all_ids) == len(set(all_ids))


class TestSearch:
    def test_profile_page_ranked_first_for_name_query(self, kg, corpus, search_engine):
        profile = next(d for d in corpus if d.kind == "profile")
        results = search_engine.search(profile.title + " born", k=5)
        assert results
        assert results[0].doc_id == profile.doc_id

    def test_empty_query(self, search_engine):
        assert search_engine.search("", k=5) == []

    def test_unknown_terms(self, search_engine):
        assert search_engine.search("xyzzy plugh qwerty", k=5) == []

    def test_k_respected(self, search_engine):
        assert len(search_engine.search("the news this week", k=3)) <= 3

    def test_scores_descending(self, corpus, search_engine):
        doc = corpus.documents[0]
        results = search_engine.search(doc.title, k=10)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_incremental_index_update(self, kg, corpus):
        from dataclasses import replace

        engine = BM25SearchEngine(corpus)
        doc = corpus.documents[0]
        updated = replace(doc, text=doc.text + " uniquetokenxyz appears here")
        engine.index_document(updated)
        results = engine.search("uniquetokenxyz", k=3)
        assert results and results[0].doc_id == doc.doc_id

    def test_num_documents(self, corpus, search_engine):
        assert search_engine.num_documents == len(corpus)


class TestSchemaOrg:
    def test_build_person_payload(self, kg):
        from repro.common import ids as idmod
        from repro.web.schema_org import build_person_payload

        person = next(
            r.entity for r in kg.store.entities() if idmod.type_id("person") in r.types
        )
        payload = build_person_payload(kg.store, person)
        assert payload["@type"] == "Person"
        assert payload["name"] == kg.store.entity(person).name
        assert "birthDate" in payload

    def test_corrupt_payload(self):
        from repro.web.schema_org import corrupt_payload

        payload = {"@type": "Person", "birthDate": "1979-07-23"}
        bad = corrupt_payload(payload, "birthDate", "1980-09-09")
        assert bad["birthDate"] == "1980-09-09"
        assert payload["birthDate"] == "1979-07-23"  # original untouched

    def test_schema_type_of(self):
        from repro.web.schema_org import schema_type_of

        assert schema_type_of(("type:film",)) == "Movie"
        assert schema_type_of(("type:genre",)) == "Thing"
