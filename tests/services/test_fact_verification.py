"""Tests for the fact-verification service."""

import numpy as np
import pytest

from repro.common.errors import EmbeddingError
from repro.services.fact_verification import FactVerifier, evaluate_verifier


@pytest.fixture(scope="module")
def verifier(trained):
    v = FactVerifier(trained.trained)
    _train, valid, _test = trained.dataset.split(seed=1)
    v.calibrate(valid)
    return v


class TestCalibration:
    def test_requires_calibration_before_verify(self, trained):
        fresh = FactVerifier(trained.trained)
        dataset = trained.dataset
        s, p, o = dataset.decode(*map(int, dataset.triples[0]))
        with pytest.raises(EmbeddingError):
            fresh.verify(s, p, o)
        with pytest.raises(EmbeddingError):
            _ = fresh.calibration

    def test_empty_validation_rejected(self, trained):
        with pytest.raises(EmbeddingError):
            FactVerifier(trained.trained).calibrate(np.empty((0, 3), dtype=np.int64))

    def test_calibration_beats_chance(self, verifier):
        assert verifier.calibration.auc > 0.6

    def test_is_calibrated_flag(self, verifier):
        assert verifier.is_calibrated


class TestVerify:
    def test_verdict_fields_consistent(self, verifier, trained):
        dataset = trained.dataset
        s, p, o = dataset.decode(*map(int, dataset.triples[0]))
        verdict = verifier.verify(s, p, o)
        assert verdict.plausible == (verdict.margin >= 0)
        assert verdict.score - verifier.calibration.threshold == pytest.approx(
            verdict.margin
        )

    def test_batch(self, verifier, trained):
        dataset = trained.dataset
        candidates = [
            dataset.decode(*map(int, row)) for row in dataset.triples[:5]
        ]
        verdicts = verifier.verify_batch(candidates)
        assert len(verdicts) == 5

    def test_batch_matches_per_candidate_verify(self, verifier, trained):
        """The vectorised batch pass is bitwise-identical to verify()."""
        dataset = trained.dataset
        candidates = [
            dataset.decode(*map(int, row)) for row in dataset.triples[:12]
        ]
        batched = verifier.verify_batch(candidates)
        singles = [verifier.verify(*candidate) for candidate in candidates]
        assert batched == singles

    def test_batch_empty(self, verifier):
        assert verifier.verify_batch([]) == []

    def test_batch_requires_calibration(self, trained):
        fresh = FactVerifier(trained.trained)
        with pytest.raises(EmbeddingError):
            fresh.verify_batch([("s", "p", "o")])

    def test_batch_unknown_symbols_raise(self, verifier):
        with pytest.raises(EmbeddingError):
            verifier.verify_batch([("entity:ghost", "p", "entity:ghost")])

    def test_plausibility_in_unit_interval(self, verifier, trained):
        dataset = trained.dataset
        s, p, o = dataset.decode(*map(int, dataset.triples[0]))
        assert 0.0 < verifier.plausibility(s, p, o) < 1.0


class TestEvaluation:
    def test_held_out_accuracy(self, verifier, trained):
        report = evaluate_verifier(verifier, trained.test_triples)
        assert report.num_candidates == 2 * len(trained.test_triples)
        assert report.accuracy > 0.55
        assert report.auc > 0.6

    def test_true_facts_score_above_corruptions_on_average(self, verifier, trained):
        from repro.embeddings.evaluation import corrupt_uniform

        positives = trained.test_triples
        negatives = corrupt_uniform(
            positives,
            trained.dataset.num_entities,
            trained.dataset.known_set(),
            seed=7,
        )
        pos = verifier.trained.model.score_triples(positives).mean()
        neg = verifier.trained.model.score_triples(negatives).mean()
        assert pos > neg
