"""Tests for the related-entities services."""

import pytest

from repro.services.related_entities import (
    EmbeddingRelatedEntities,
    TraversalRelatedEntities,
    evaluate_related,
)
from repro.vector.service import EmbeddingService


@pytest.fixture(scope="module")
def traversal(kg):
    return TraversalRelatedEntities(kg.store, dim=16, walks_per_entity=4, seed=3)


@pytest.fixture(scope="module")
def kge_backend(kg, trained):
    return EmbeddingRelatedEntities(EmbeddingService(trained.trained), kg.store)


class TestTraversal:
    def test_returns_k(self, kg, traversal):
        seed = next(iter(kg.truth.related))
        suggestions = traversal.related(seed, k=5)
        assert len(suggestions) <= 5
        assert all(item.entity != seed for item in suggestions)

    def test_unknown_entity_empty(self, traversal):
        assert traversal.related("entity:ghost", k=5) == []

    def test_same_type_filter(self, kg, traversal):
        seed = next(iter(kg.truth.related))
        seed_types = set(kg.store.entity(seed).types)
        for item in traversal.related(seed, k=10):
            assert seed_types & set(kg.store.entity(item.entity).types)

    def test_deterministic(self, kg):
        seed_entity = next(iter(kg.truth.related))
        a = TraversalRelatedEntities(kg.store, dim=8, walks_per_entity=2, seed=5)
        b = TraversalRelatedEntities(kg.store, dim=8, walks_per_entity=2, seed=5)
        assert [x.entity for x in a.related(seed_entity, k=5)] == [
            x.entity for x in b.related(seed_entity, k=5)
        ]

    def test_vector_accessor(self, kg, traversal):
        seed = next(iter(kg.truth.related))
        assert traversal.vector(seed).shape == (16,)
        assert traversal.vector("entity:ghost").shape == (16,)

    def test_quality_beats_chance(self, kg, traversal):
        report = evaluate_related(traversal, kg.truth.related, k=10, max_seeds=40)
        # Random precision@10 over ~350 entities with ~3 relevant ≈ 0.01.
        assert report.precision_at_k > 0.05
        assert report.num_seeds == 40


class TestKGEBackend:
    def test_respects_k(self, kg, kge_backend):
        seed = next(iter(kg.truth.related))
        assert len(kge_backend.related(seed, k=3)) <= 3

    def test_unknown_entity_raises(self, kge_backend):
        from repro.common.errors import IndexError_

        with pytest.raises(IndexError_):
            kge_backend.related("entity:ghost")

    def test_evaluation_runs(self, kg, kge_backend):
        report = evaluate_related(kge_backend, kg.truth.related, k=10, max_seeds=20)
        assert 0.0 <= report.precision_at_k <= 1.0
        assert 0.0 <= report.recall_at_k <= 1.0


class TestEvaluateRelated:
    def test_empty_truth(self, traversal):
        report = evaluate_related(traversal, {}, k=5)
        assert report.num_seeds == 0
        assert report.precision_at_k == 0.0

    def test_max_seeds_limits(self, kg, traversal):
        report = evaluate_related(traversal, kg.truth.related, k=5, max_seeds=3)
        assert report.num_seeds == 3
