"""Tests for the fact-ranking service."""

import pytest

from repro.common import ids
from repro.embeddings.inference import BatchInference
from repro.services.fact_ranking import (
    FactRanker,
    FactRankerConfig,
    _ndcg,
    evaluate_fact_ranking,
)

OCCUPATION = ids.predicate_id("occupation")


@pytest.fixture(scope="module")
def ranker(kg, trained):
    return FactRanker(kg.store, BatchInference(trained.trained))


class TestRank:
    def test_returns_all_values(self, kg, ranker):
        person = next(
            p for p, order in kg.truth.occupation_order.items() if len(order) >= 2
        )
        stored = set(kg.store.objects(person, OCCUPATION))
        ranked = ranker.rank(person, OCCUPATION)
        assert {item.obj for item in ranked} == stored

    def test_scores_sorted(self, kg, ranker):
        person = next(iter(kg.truth.occupation_order))
        ranked = ranker.rank(person, OCCUPATION)
        scores = [item.score for item in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_empty_for_unknown_subject(self, ranker):
        assert ranker.rank("entity:ghost", OCCUPATION) == []

    def test_rank_many_matches_per_subject_rank(self, kg, ranker):
        """The batched scoring pass is identical to one rank() per subject."""
        subjects = sorted(kg.truth.occupation_order)[:6] + ["entity:ghost"]
        batched = ranker.rank_many(subjects, OCCUPATION)
        assert batched == [ranker.rank(subject, OCCUPATION) for subject in subjects]

    def test_rank_many_empty(self, ranker):
        assert ranker.rank_many([], OCCUPATION) == []

    def test_feature_breakdown_attached(self, kg, ranker):
        person = next(iter(kg.truth.occupation_order))
        ranked = ranker.rank(person, OCCUPATION)
        for item in ranked:
            assert 0.0 <= item.agreement <= 1.0
            assert 0.0 <= item.confidence <= 1.0

    def test_agreement_favours_supported_occupation(self, kg, trained):
        """Primary occupations (with domain edges) get higher agreement than
        noise occupations asserted with no supporting structure."""
        ranker = FactRanker(kg.store, BatchInference(trained.trained))
        noise_by_subject = {}
        for fact in kg.truth.noise_facts:
            noise_by_subject.setdefault(fact.subject, fact.obj)
        wins = 0
        total = 0
        for person, order in kg.truth.occupation_order.items():
            noise_obj = noise_by_subject.get(person)
            if noise_obj is None:
                continue
            ranked = {item.obj: item for item in ranker.rank(person, OCCUPATION)}
            if order[0] in ranked and noise_obj in ranked:
                total += 1
                if ranked[order[0]].agreement >= ranked[noise_obj].agreement:
                    wins += 1
        assert total > 0
        assert wins / total > 0.8


class TestEvaluation:
    def test_better_than_chance(self, kg, ranker):
        report = evaluate_fact_ranking(ranker, OCCUPATION, kg.truth.occupation_order)
        assert report.num_subjects > 0
        # Random precision@1 with ~2-3 values is ~0.45; require clearly better.
        assert report.precision_at_1 > 0.5
        assert report.ndcg > 0.7

    def test_min_values_filter(self, kg, ranker):
        all_subjects = evaluate_fact_ranking(
            ranker, OCCUPATION, kg.truth.occupation_order, min_values=1
        )
        multi_only = evaluate_fact_ranking(
            ranker, OCCUPATION, kg.truth.occupation_order, min_values=2
        )
        assert multi_only.num_subjects <= all_subjects.num_subjects

    def test_weights_matter(self, kg, trained):
        """Zeroing every informative weight degrades precision."""
        informed = FactRanker(kg.store, BatchInference(trained.trained))
        blind = FactRanker(
            kg.store,
            BatchInference(trained.trained),
            FactRankerConfig(
                weight_model=0.0, weight_agreement=0.0,
                weight_popularity=0.0, weight_confidence=0.0,
            ),
        )
        informed_report = evaluate_fact_ranking(
            informed, OCCUPATION, kg.truth.occupation_order
        )
        blind_report = evaluate_fact_ranking(
            blind, OCCUPATION, kg.truth.occupation_order
        )
        assert informed_report.precision_at_1 >= blind_report.precision_at_1


class TestNDCG:
    def test_perfect_order(self):
        assert _ndcg(["a", "b", "c"], ["a", "b", "c"]) == pytest.approx(1.0)

    def test_reversed_order_lower(self):
        assert _ndcg(["c", "b", "a"], ["a", "b", "c"]) < 1.0

    def test_irrelevant_items_no_gain(self):
        assert _ndcg(["x", "y"], ["a"]) == 0.0
