"""Tests for the end-to-end embedding pipeline + registry + inference."""

import pytest

from repro.common.errors import EmbeddingError, ModelRegistryError
from repro.embeddings.inference import BatchInference
from repro.embeddings.pipeline import EmbeddingPipelineConfig, run_embedding_pipeline
from repro.embeddings.registry import ModelRegistry
from repro.embeddings.trainer import TrainConfig
from repro.kg.views import embedding_training_view


class TestPipeline:
    def test_view_filtering_applied(self, kg):
        config = EmbeddingPipelineConfig(
            train=TrainConfig(model="distmult", dim=8, epochs=2, seed=1),
            view=embedding_training_view(min_predicate_frequency=3),
            eval_max_queries=10,
        )
        result = run_embedding_pipeline(kg.store, config)
        assert result.view is not None
        assert result.view.facts_kept < result.view.facts_in
        # numeric predicates must not be in the vocabulary
        assert "predicate:height_cm" not in result.dataset.relation_index

    def test_no_view_trains_on_entity_edges(self, kg):
        config = EmbeddingPipelineConfig(
            train=TrainConfig(model="distmult", dim=8, epochs=1, seed=1),
            view=None,
            eval_max_queries=5,
        )
        result = run_embedding_pipeline(kg.store, config)
        assert result.view is None
        assert len(result.dataset) > 0

    def test_registry_receives_model(self, kg):
        registry = ModelRegistry()
        config = EmbeddingPipelineConfig(
            train=TrainConfig(model="distmult", dim=8, epochs=1, seed=1),
            view=embedding_training_view(min_predicate_frequency=3),
            eval_max_queries=5,
            registry_name="test-model",
        )
        result = run_embedding_pipeline(kg.store, config, registry=registry)
        assert result.registered_version == 1
        record = registry.latest("test-model")
        assert record.metrics["mrr"] == result.evaluation.mrr

    def test_disk_trainer_requires_workdir(self, kg):
        config = EmbeddingPipelineConfig(
            train=TrainConfig(model="distmult", dim=8, epochs=1, seed=1),
            use_disk_trainer=True,
        )
        with pytest.raises(ValueError):
            run_embedding_pipeline(kg.store, config)

    def test_disk_pipeline_produces_stats(self, kg, tmp_path):
        config = EmbeddingPipelineConfig(
            train=TrainConfig(model="distmult", dim=8, epochs=1, seed=1),
            view=embedding_training_view(min_predicate_frequency=3),
            use_disk_trainer=True,
            num_partitions=3,
            buffer_capacity=2,
            eval_max_queries=5,
        )
        result = run_embedding_pipeline(kg.store, config, workdir=tmp_path)
        assert result.disk_stats is not None
        assert result.disk_stats.peak_resident_buckets <= 2


class TestRegistry:
    def test_versions_increment(self, trained):
        registry = ModelRegistry()
        registry.register("m", trained.trained)
        registry.register("m", trained.trained)
        assert registry.versions("m") == [1, 2]
        assert registry.latest("m").version == 2

    def test_get_specific_version(self, trained):
        registry = ModelRegistry()
        first = registry.register("m", trained.trained, metrics={"mrr": 0.1})
        registry.register("m", trained.trained, metrics={"mrr": 0.2})
        assert registry.get("m", 1) is first

    def test_unknown_name_raises(self):
        with pytest.raises(ModelRegistryError):
            ModelRegistry().latest("ghost")

    def test_unknown_version_raises(self, trained):
        registry = ModelRegistry()
        registry.register("m", trained.trained)
        with pytest.raises(ModelRegistryError):
            registry.get("m", 99)

    def test_names(self, trained):
        registry = ModelRegistry()
        registry.register("b", trained.trained)
        registry.register("a", trained.trained)
        assert registry.names() == ["a", "b"]


class TestBatchInference:
    def test_score_triples_skips_unknown(self, trained):
        inference = BatchInference(trained.trained)
        dataset = trained.dataset
        known_triple = dataset.decode(*map(int, dataset.triples[0]))
        scored = inference.score_triples(
            [known_triple, ("entity:ghost", "predicate:p", "entity:ghost2")]
        )
        assert len(scored) == 1

    def test_score_triples_strict_raises(self, trained):
        inference = BatchInference(trained.trained)
        with pytest.raises(EmbeddingError):
            inference.score_triples(
                [("entity:ghost", "predicate:p", "entity:ghost2")],
                skip_unknown=False,
            )

    def test_rank_objects_sorted(self, trained):
        inference = BatchInference(trained.trained)
        dataset = trained.dataset
        subject, predicate, _ = dataset.decode(*map(int, dataset.triples[0]))
        candidates = dataset.entities[:10]
        ranked = inference.rank_objects(subject, predicate, candidates)
        scores = [item.score for item in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_relatedness_self_is_one(self, trained):
        inference = BatchInference(trained.trained)
        entity = trained.dataset.entities[0]
        assert inference.relatedness(entity, entity) == pytest.approx(1.0)

    def test_relatedness_unknown_is_zero(self, trained):
        inference = BatchInference(trained.trained)
        assert inference.relatedness("entity:ghost", trained.dataset.entities[0]) == 0.0

    def test_embed_entities(self, trained):
        inference = BatchInference(trained.trained)
        entities = trained.dataset.entities[:5] + ["entity:ghost"]
        kept, matrix = inference.embed_entities(entities)
        assert len(kept) == 5
        assert matrix.shape[0] == 5

    def test_batching_equivalence(self, trained):
        dataset = trained.dataset
        candidates = [
            dataset.decode(*map(int, row)) for row in dataset.triples[:20]
        ]
        small = BatchInference(trained.trained, batch_size=3).score_triples(candidates)
        large = BatchInference(trained.trained, batch_size=1000).score_triples(candidates)
        assert [s.score for s in small] == pytest.approx([s.score for s in large])

    def test_rejects_bad_batch_size(self, trained):
        with pytest.raises(EmbeddingError):
            BatchInference(trained.trained, batch_size=0)
