"""Tests for edge partitioning and bucket-pair scheduling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import EmbeddingError
from repro.embeddings.dataset import build_dataset
from repro.embeddings.partition import (
    count_swaps,
    partition_dataset,
    schedule_pairs,
)
from repro.kg.store import TripleStore
from repro.kg.triple import entity_fact


@pytest.fixture(scope="module")
def dataset():
    store = TripleStore()
    rng = np.random.default_rng(1)
    for _ in range(200):
        a, b = rng.integers(0, 40, size=2)
        if a != b:
            store.add(entity_fact(f"entity:e{a}", "predicate:p", f"entity:e{b}"))
    return build_dataset(store)


class TestPartitioning:
    def test_buckets_balanced(self, dataset):
        partitioning = partition_dataset(dataset, 4, seed=0)
        sizes = partitioning.bucket_sizes()
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == dataset.num_entities

    def test_every_edge_in_exactly_one_group(self, dataset):
        partitioning = partition_dataset(dataset, 4, seed=0)
        total = sum(len(group) for group in partitioning.groups.values())
        assert total == len(dataset)

    def test_group_assignment_consistent(self, dataset):
        partitioning = partition_dataset(dataset, 3, seed=2)
        for (hb, tb), triples in partitioning.groups.items():
            assert np.all(partitioning.entity_bucket[triples[:, 0]] == hb)
            assert np.all(partitioning.entity_bucket[triples[:, 2]] == tb)

    def test_deterministic(self, dataset):
        a = partition_dataset(dataset, 4, seed=3)
        b = partition_dataset(dataset, 4, seed=3)
        assert np.array_equal(a.entity_bucket, b.entity_bucket)

    def test_rejects_bad_counts(self, dataset):
        with pytest.raises(EmbeddingError):
            partition_dataset(dataset, 0)
        with pytest.raises(EmbeddingError):
            partition_dataset(dataset, dataset.num_entities + 1)

    def test_entities_in(self, dataset):
        partitioning = partition_dataset(dataset, 4, seed=0)
        members = partitioning.entities_in(0)
        assert np.all(partitioning.entity_bucket[members] == 0)


class TestSchedule:
    def test_schedule_is_permutation(self, dataset):
        partitioning = partition_dataset(dataset, 4, seed=0)
        pairs = sorted(partitioning.groups)
        schedule = schedule_pairs(pairs, buffer_capacity=2)
        assert sorted(schedule) == pairs

    def test_greedy_beats_or_ties_lexicographic(self, dataset):
        partitioning = partition_dataset(dataset, 6, seed=1)
        pairs = sorted(partitioning.groups)
        greedy = schedule_pairs(pairs, buffer_capacity=2)
        greedy_loads, _ = count_swaps(greedy, 2)
        lex_loads, _ = count_swaps(pairs, 2)
        assert greedy_loads <= lex_loads

    def test_bigger_buffer_fewer_loads(self, dataset):
        partitioning = partition_dataset(dataset, 6, seed=1)
        pairs = sorted(partitioning.groups)
        small = count_swaps(schedule_pairs(pairs, 2), 2)[0]
        large = count_swaps(schedule_pairs(pairs, 6), 6)[0]
        assert large <= small
        # With the whole graph resident, loads equal the bucket count.
        assert large == 6

    def test_rejects_tiny_buffer(self):
        with pytest.raises(EmbeddingError):
            schedule_pairs([(0, 1)], buffer_capacity=1)

    def test_empty_schedule(self):
        assert schedule_pairs([], buffer_capacity=2) == []

    @settings(max_examples=20, deadline=None)
    @given(
        n_buckets=st.integers(min_value=2, max_value=6),
        capacity=st.integers(min_value=2, max_value=6),
    )
    def test_property_loads_bounded(self, n_buckets, capacity):
        """Loads are at least the bucket count and at most one per pair touch."""
        pairs = [(i, j) for i in range(n_buckets) for j in range(n_buckets)]
        schedule = schedule_pairs(pairs, capacity)
        loads, evictions = count_swaps(schedule, capacity)
        assert loads >= min(n_buckets, capacity) or n_buckets <= capacity
        assert loads <= 2 * len(pairs)
        assert evictions == max(0, loads - min(capacity, n_buckets)) or evictions >= 0
