"""Tests for the in-memory contrastive trainer."""

import numpy as np
import pytest

from repro.common.errors import EmbeddingError
from repro.embeddings.dataset import build_dataset
from repro.embeddings.trainer import (
    AdaGrad,
    TrainConfig,
    Trainer,
    train_embeddings,
)
from repro.kg.store import TripleStore
from repro.kg.triple import entity_fact


@pytest.fixture(scope="module")
def small_dataset():
    store = TripleStore()
    rng = np.random.default_rng(0)
    entities = [f"entity:e{i}" for i in range(30)]
    # Two clusters densely connected internally.
    for _ in range(150):
        cluster = rng.integers(0, 2)
        a, b = rng.integers(0, 15, size=2) + cluster * 15
        if a != b:
            store.add(entity_fact(entities[a], "predicate:linked", entities[b]))
    return build_dataset(store)


class TestAdaGrad:
    def test_update_moves_against_gradient(self):
        params = np.ones((4, 2))
        opt = AdaGrad((4, 2), learning_rate=0.5)
        opt.apply(params, np.array([1]), np.array([[1.0, 1.0]]))
        assert np.all(params[1] < 1.0)
        assert np.all(params[0] == 1.0)

    def test_duplicate_rows_accumulate(self):
        params_dup = np.zeros((2, 1))
        opt_dup = AdaGrad((2, 1), learning_rate=1.0)
        opt_dup.apply(params_dup, np.array([0, 0]), np.array([[1.0], [1.0]]))

        params_single = np.zeros((2, 1))
        opt_single = AdaGrad((2, 1), learning_rate=1.0)
        opt_single.apply(params_single, np.array([0]), np.array([[2.0]]))
        assert np.allclose(params_dup, params_single)

    def test_external_accumulator_shared(self):
        acc = np.zeros((2, 2))
        opt = AdaGrad((2, 2), learning_rate=0.1, accumulator=acc)
        opt.apply(np.zeros((2, 2)), np.array([0]), np.array([[1.0, 1.0]]))
        assert acc[0, 0] > 0


class TestTraining:
    def test_loss_decreases(self, small_dataset):
        trainer = Trainer(small_dataset, TrainConfig(model="distmult", dim=8, epochs=10, seed=1))
        trained = trainer.train()
        losses = [epoch.mean_loss for epoch in trained.history]
        assert losses[-1] < losses[0]

    def test_history_length(self, small_dataset):
        trained = train_embeddings(
            small_dataset, TrainConfig(model="transe", dim=8, epochs=3, seed=1)
        )
        assert len(trained.history) == 3
        assert all(epoch.triples_per_second > 0 for epoch in trained.history)

    def test_deterministic(self, small_dataset):
        config = TrainConfig(model="distmult", dim=8, epochs=3, seed=9)
        a = Trainer(small_dataset, config).train()
        b = Trainer(small_dataset, config).train()
        assert np.array_equal(a.model.entity_emb, b.model.entity_emb)

    def test_positive_scores_above_negative_after_training(self, small_dataset):
        trained = train_embeddings(
            small_dataset, TrainConfig(model="distmult", dim=16, epochs=25, seed=2)
        )
        positives = small_dataset.triples[:50]
        rng = np.random.default_rng(3)
        negatives = positives.copy()
        negatives[:, 2] = rng.integers(0, small_dataset.num_entities, size=len(negatives))
        pos = trained.model.score_triples(positives).mean()
        neg = trained.model.score_triples(negatives).mean()
        assert pos > neg

    def test_all_models_train(self, small_dataset):
        for name in ("transe", "distmult", "complex"):
            trained = train_embeddings(
                small_dataset, TrainConfig(model=name, dim=4, epochs=2, seed=1)
            )
            assert trained.model.name == name

    def test_rejects_bad_config(self):
        with pytest.raises(EmbeddingError):
            TrainConfig(epochs=0)
        with pytest.raises(EmbeddingError):
            TrainConfig(learning_rate=-1)


class TestTrainedEmbeddings:
    def test_entity_vector(self, small_dataset):
        trained = train_embeddings(
            small_dataset, TrainConfig(model="distmult", dim=8, epochs=1, seed=1)
        )
        entity = small_dataset.entities[0]
        vector = trained.entity_vector(entity)
        assert vector.shape == (8,)
        assert trained.has_entity(entity)
        assert not trained.has_entity("entity:nope")

    def test_entity_vector_unknown_raises(self, small_dataset):
        trained = train_embeddings(
            small_dataset, TrainConfig(model="distmult", dim=8, epochs=1, seed=1)
        )
        with pytest.raises(EmbeddingError):
            trained.entity_vector("entity:nope")

    def test_score_fact_symbolic(self, small_dataset):
        trained = train_embeddings(
            small_dataset, TrainConfig(model="distmult", dim=8, epochs=1, seed=1)
        )
        h, r, t = small_dataset.triples[0]
        subject, predicate, obj = small_dataset.decode(int(h), int(r), int(t))
        assert trained.score_fact(subject, predicate, obj) == pytest.approx(
            float(trained.model.score_triples(np.array([[h, r, t]]))[0])
        )

    def test_all_entity_vectors_aligned(self, small_dataset):
        trained = train_embeddings(
            small_dataset, TrainConfig(model="distmult", dim=8, epochs=1, seed=1)
        )
        keys, matrix = trained.all_entity_vectors()
        assert keys == small_dataset.entities
        assert matrix.shape[0] == len(keys)
