"""Tests for the persisted embedding bundle layer (adopt-or-rebuild)."""

import json

import numpy as np
import pytest

from repro.common.errors import StoreError
from repro.embeddings.persistence import (
    adopt_embedding_suite,
    load_embedding_layer,
    save_embeddings,
)
from repro.embeddings.suite import (
    ADOPTED,
    TRAINED,
    EmbeddingSuiteConfig,
    build_embedding_suite,
)
from repro.kg.generator import SyntheticKGConfig, generate_kg
from repro.kg.persistence import EMBEDDINGS_DIR, load_snapshot, save_snapshot
from repro.kg.store import TripleStore
from repro.kg.triple import entity_fact
from repro.vector.index import ExactIndex, IVFIndex, recall_at_k


@pytest.fixture(scope="module")
def kg():
    return generate_kg(SyntheticKGConfig(seed=11, scale=0.1))


@pytest.fixture(scope="module")
def config():
    return EmbeddingSuiteConfig()


@pytest.fixture(scope="module")
def built(kg, config):
    return build_embedding_suite(kg.store, config)


@pytest.fixture(scope="module")
def bundle(kg, config, built, tmp_path_factory):
    directory = tmp_path_factory.mktemp("embeddings-bundle")
    save_snapshot(kg.store, directory, embedding_suite=built, embedding_config=config)
    return directory


def _sample_entities(suite, n=10):
    return suite.trained.dataset.entities[:n]


def _sample_candidates(store, suite, n=20):
    out = []
    for fact in store.scan():
        if suite.trained.has_entity(fact.subject) and suite.trained.has_entity(fact.obj):
            out.append((fact.subject, fact.predicate, fact.obj))
            if len(out) == n:
                break
    return out


class TestRoundTrip:
    def test_layer_in_bundle_manifest(self, bundle):
        manifest = json.loads((bundle / "snapshot.json").read_text())
        assert EMBEDDINGS_DIR in manifest["layers"]

    def test_adopted_suite_is_byte_identical(self, kg, config, built, bundle):
        snapshot = load_snapshot(bundle)
        assert snapshot.embeddings is not None
        adopted = snapshot.embedding_suite(config)
        assert adopted.source == ADOPTED

        entities = _sample_entities(built)
        pairs = [(a, b) for a in entities[:5] for b in entities[5:10]]
        assert adopted.embedding_service.batch_similarity(
            pairs
        ) == built.embedding_service.batch_similarity(pairs)

        candidates = _sample_candidates(kg.store, built)
        adopted_verdicts = adopted.verifier.verify_batch(candidates)
        built_verdicts = built.verifier.verify_batch(candidates)
        assert [(v.score, v.plausible, v.margin) for v in adopted_verdicts] == [
            (v.score, v.plausible, v.margin) for v in built_verdicts
        ]

        adopted_knn = adopted.embedding_service.knn_many(entities, k=5)
        built_knn = built.embedding_service.knn_many(entities, k=5)
        assert [[(h.key, h.score) for h in hits] for hits in adopted_knn] == [
            [(h.key, h.score) for h in hits] for hits in built_knn
        ]

        predicate = next(iter(kg.store.predicates()))
        assert repr(adopted.ranker.rank_many(entities[:5], predicate)) == repr(
            built.ranker.rank_many(entities[:5], predicate)
        )

    def test_threshold_persisted_not_recalibrated(self, config, built, bundle):
        snapshot = load_snapshot(bundle)
        adopted = snapshot.embedding_suite(config)
        assert adopted.verifier.is_calibrated
        assert adopted.verifier.calibration.threshold == built.verifier.calibration.threshold
        assert adopted.verifier.calibration.auc == built.verifier.calibration.auc

    def test_adopted_model_arrays_are_memory_mapped(self, config, bundle):
        snapshot = load_snapshot(bundle)
        adopted = snapshot.embedding_suite(config)
        assert isinstance(adopted.trained.model.entity_emb, np.memmap)
        assert not adopted.trained.model.entity_emb.flags.writeable

    def test_adopted_index_is_trained_ivf(self, config, bundle):
        snapshot = load_snapshot(bundle)
        adopted = snapshot.embedding_suite(config)
        index = adopted.embedding_service.index
        assert isinstance(index, IVFIndex)
        assert index.is_trained


class TestAdoptOrRebuild:
    def test_stale_store_version_silently_retrains(self, kg, config, built, tmp_path):
        save_snapshot(
            kg.store, tmp_path, embedding_suite=built, embedding_config=config
        )
        manifest_path = tmp_path / EMBEDDINGS_DIR / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["store_version"] += 7
        manifest_path.write_text(json.dumps(manifest))
        snapshot = load_snapshot(tmp_path)
        assert snapshot.embeddings is None  # dropped, not an error
        suite = snapshot.embedding_suite(config)
        assert suite.source == TRAINED

    def test_recipe_mismatch_silently_retrains(self, config, bundle):
        snapshot = load_snapshot(bundle)
        other = EmbeddingSuiteConfig(epochs=config.epochs + 1)
        assert adopt_embedding_suite(snapshot.store, snapshot.embeddings, other) is None
        suite = snapshot.embedding_suite(other)
        assert suite.source == TRAINED

    def test_query_knobs_do_not_force_retrain(self, config, bundle):
        snapshot = load_snapshot(bundle)
        retuned = EmbeddingSuiteConfig(knn_nprobe=16, knn_rerank_factor=8)
        suite = snapshot.embedding_suite(retuned)
        assert suite.source == ADOPTED
        assert suite.embedding_service.index.nprobe == 16

    def test_corrupted_array_raises_store_error(self, kg, config, built, tmp_path):
        save_snapshot(
            kg.store, tmp_path, embedding_suite=built, embedding_config=config
        )
        target = tmp_path / EMBEDDINGS_DIR / "entity_emb.npy"
        raw = bytearray(target.read_bytes())
        raw[300] ^= 0xFF
        target.write_bytes(bytes(raw))
        with pytest.raises(StoreError):
            load_snapshot(tmp_path)

    def test_missing_array_raises_store_error(self, kg, config, built, tmp_path):
        save_snapshot(
            kg.store, tmp_path, embedding_suite=built, embedding_config=config
        )
        (tmp_path / EMBEDDINGS_DIR / "knn_centroids.npy").unlink()
        with pytest.raises(StoreError):
            load_snapshot(tmp_path)

    def test_store_without_embeddable_facts_skips_layer(self, tmp_path):
        store = TripleStore(name="empty")
        manifest = save_snapshot(store, tmp_path)
        assert EMBEDDINGS_DIR not in manifest["layers"]
        snapshot = load_snapshot(tmp_path)
        assert snapshot.embeddings is None

    def test_embeddings_false_skips_layer(self, kg, tmp_path):
        manifest = save_snapshot(kg.store, tmp_path, embeddings=False)
        assert EMBEDDINGS_DIR not in manifest["layers"]


class TestInt8Layer:
    @pytest.fixture(scope="class")
    def int8_config(self):
        return EmbeddingSuiteConfig(knn_quantization="int8", knn_nprobe=8)

    @pytest.fixture(scope="class")
    def int8_bundle(self, kg, int8_config, tmp_path_factory):
        directory = tmp_path_factory.mktemp("int8-bundle")
        save_snapshot(kg.store, directory, embedding_config=int8_config)
        return directory

    def test_codes_persisted_and_adopted(self, int8_config, int8_bundle):
        layer = load_embedding_layer(int8_bundle / EMBEDDINGS_DIR)
        assert layer.arrays["knn_codes"].dtype == np.int8
        assert layer.arrays["knn_scales"].dtype == np.float32
        snapshot = load_snapshot(int8_bundle)
        suite = snapshot.embedding_suite(int8_config)
        assert suite.source == ADOPTED
        assert suite.embedding_service.index._codes is not None

    def test_int8_knn_within_recall_floor(self, int8_config, int8_bundle):
        snapshot = load_snapshot(int8_bundle)
        suite = snapshot.embedding_suite(int8_config)
        keys, matrix = suite.trained.all_entity_vectors()
        exact = ExactIndex()
        exact.add(keys, matrix)
        recall = recall_at_k(
            suite.embedding_service.index, exact, matrix[:60], k=10
        )
        assert recall >= 0.8

    def test_int8_adopt_matches_int8_train_bitwise(self, kg, int8_config, int8_bundle):
        snapshot = load_snapshot(int8_bundle)
        adopted = snapshot.embedding_suite(int8_config)
        built = build_embedding_suite(kg.store, int8_config)
        entities = _sample_entities(built)
        adopted_knn = adopted.embedding_service.knn_many(entities, k=5)
        built_knn = built.embedding_service.knn_many(entities, k=5)
        assert [[(h.key, h.score) for h in hits] for hits in adopted_knn] == [
            [(h.key, h.score) for h in hits] for hits in built_knn
        ]


class TestSaveEmbeddingsValidation:
    def test_requires_ivf_backed_suite(self, kg, config, built, tmp_path):
        from dataclasses import replace

        from repro.vector.service import EmbeddingService

        exact_suite = replace(
            built, embedding_service=EmbeddingService(built.trained)
        )
        with pytest.raises(StoreError):
            save_embeddings(exact_suite, config, tmp_path, store_version=0)

    def test_mutated_store_marks_layer_stale(self, kg, config, tmp_path):
        """A real mutation after save bumps store.version; the next load
        must drop the layer rather than serve pre-mutation embeddings."""
        store = generate_kg(SyntheticKGConfig(seed=3, scale=0.05)).store
        save_snapshot(store, tmp_path)
        predicate = next(iter(store.predicates()))
        store.add(entity_fact("entity:new_subject", predicate, "entity:new_object"))
        save_snapshot(store, tmp_path, embeddings=False)  # new version, no layer
        snapshot = load_snapshot(tmp_path)
        assert snapshot.embeddings is None
