"""Tests for dataset encoding and splits."""

import numpy as np
import pytest

from repro.common.errors import EmbeddingError
from repro.embeddings.dataset import build_dataset
from repro.kg.store import TripleStore
from repro.kg.triple import LiteralType, entity_fact, literal_fact


@pytest.fixture()
def store():
    s = TripleStore()
    s.add(entity_fact("entity:a", "predicate:p", "entity:b"))
    s.add(entity_fact("entity:b", "predicate:p", "entity:c"))
    s.add(entity_fact("entity:c", "predicate:q", "entity:a"))
    s.add(literal_fact("entity:a", "predicate:h", 1, LiteralType.NUMBER))
    return s


class TestBuild:
    def test_literals_excluded(self, store):
        dataset = build_dataset(store)
        assert len(dataset) == 3
        assert "predicate:h" not in dataset.relation_index

    def test_vocabulary_sorted_deterministic(self, store):
        a = build_dataset(store)
        b = build_dataset(store)
        assert a.entities == b.entities == sorted(a.entities)
        assert np.array_equal(a.triples, b.triples)

    def test_encode_decode_roundtrip(self, store):
        dataset = build_dataset(store)
        h, r, t = dataset.encode("entity:a", "predicate:p", "entity:b")
        assert dataset.decode(h, r, t) == ("entity:a", "predicate:p", "entity:b")

    def test_encode_unknown_raises(self, store):
        dataset = build_dataset(store)
        with pytest.raises(EmbeddingError):
            dataset.encode("entity:zzz", "predicate:p", "entity:b")

    def test_empty_store_raises(self):
        with pytest.raises(EmbeddingError):
            build_dataset(TripleStore())

    def test_known_set(self, store):
        dataset = build_dataset(store)
        known = dataset.known_set()
        assert len(known) == 3
        assert dataset.encode("entity:a", "predicate:p", "entity:b") in known


class TestSplit:
    def test_split_partitions(self, kg):
        from repro.embeddings.dataset import build_dataset as build

        dataset = build(kg.store)
        train, valid, test = dataset.split(valid_fraction=0.1, test_fraction=0.1, seed=1)
        assert len(train) + len(valid) + len(test) == len(dataset)
        train_keys = {tuple(row) for row in train.triples}
        valid_keys = {tuple(row) for row in valid}
        test_keys = {tuple(row) for row in test}
        assert not (train_keys & valid_keys)
        assert not (train_keys & test_keys)
        assert not (valid_keys & test_keys)

    def test_split_keeps_vocabulary(self, store):
        dataset = build_dataset(store)
        train, _, _ = dataset.split(0.3, 0.3, seed=2)
        assert train.entities == dataset.entities

    def test_split_rejects_bad_fractions(self, store):
        dataset = build_dataset(store)
        with pytest.raises(EmbeddingError):
            dataset.split(0.6, 0.5)

    def test_split_deterministic(self, store):
        dataset = build_dataset(store)
        _, valid_a, _ = dataset.split(0.3, 0.3, seed=4)
        _, valid_b, _ = dataset.split(0.3, 0.3, seed=4)
        assert np.array_equal(valid_a, valid_b)
