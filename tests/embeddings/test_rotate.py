"""Tests for the RotatE model."""

import numpy as np
import pytest

from repro.embeddings.models import ModelConfig, RotatE, create_model


@pytest.fixture()
def model():
    return RotatE(num_entities=12, num_relations=4, config=ModelConfig(dim=6, seed=5))


class TestScoring:
    def test_factory_registration(self):
        assert create_model("rotate", 5, 2, ModelConfig(dim=3)).name == "rotate"

    def test_storage_dim_doubled(self, model):
        assert model.entity_emb.shape == (12, 12)

    def test_perfect_rotation_scores_zero(self):
        model = RotatE(4, 2, ModelConfig(dim=2, seed=0))
        d = 2
        model.entity_emb[0, :d] = [1.0, 0.5]   # h real
        model.entity_emb[0, d:] = [0.0, 0.5]   # h imag
        theta = np.array([np.pi / 3, -np.pi / 5])
        model.relation_emb[0, :d] = theta
        hr, hi = model.entity_emb[0, :d], model.entity_emb[0, d:]
        model.entity_emb[1, :d] = hr * np.cos(theta) - hi * np.sin(theta)
        model.entity_emb[1, d:] = hr * np.sin(theta) + hi * np.cos(theta)
        score = model.score(np.array([0]), np.array([0]), np.array([1]))
        assert score[0] == pytest.approx(0.0, abs=1e-9)

    def test_rotation_is_antisymmetric(self, model):
        forward = model.score(np.array([0]), np.array([0]), np.array([1]))
        backward = model.score(np.array([1]), np.array([0]), np.array([0]))
        assert forward[0] != pytest.approx(backward[0])

    def test_scores_nonpositive(self, model):
        h = np.arange(4)
        r = np.zeros(4, dtype=np.int64)
        t = np.arange(4, 8)
        assert np.all(model.score(h, r, t) <= 0)


class TestGradients:
    def test_numeric_gradient_check(self, model):
        h, r, t = np.array([1]), np.array([2]), np.array([3])
        dscore = np.array([1.0])
        gh, gr, gt = model.grads(h, r, t, dscore)
        eps = 1e-6

        def check(matrix, row, grad_row, cols):
            for d in cols:
                original = matrix[row, d]
                matrix[row, d] = original + eps
                up = model.score(h, r, t)[0]
                matrix[row, d] = original - eps
                down = model.score(h, r, t)[0]
                matrix[row, d] = original
                numeric = (up - down) / (2 * eps)
                assert numeric == pytest.approx(grad_row[d], abs=1e-4)

        dims = model.storage_dim
        check(model.entity_emb, 1, gh[0], range(dims))
        check(model.entity_emb, 3, gt[0], range(dims))
        # Relation gradient only on the phase half; padding must be zero.
        check(model.relation_emb, 2, gr[0], range(model.config.dim))
        assert np.all(gr[0][model.config.dim :] == 0)

    def test_normalize_bounds_modulus(self, model):
        model.entity_emb *= 50
        model.normalize_entities()
        d = model.config.dim
        modulus = np.sqrt(model.entity_emb[:, :d] ** 2 + model.entity_emb[:, d:] ** 2)
        assert np.all(modulus <= 1.0 + 1e-9)


class TestTraining:
    def test_rotate_trains(self):
        from repro.embeddings.dataset import build_dataset
        from repro.embeddings.trainer import TrainConfig, train_embeddings
        from repro.kg.store import TripleStore
        from repro.kg.triple import entity_fact

        store = TripleStore()
        rng = np.random.default_rng(0)
        for _ in range(120):
            a, b = rng.integers(0, 20, size=2)
            if a != b:
                store.add(entity_fact(f"entity:e{a}", "predicate:p", f"entity:e{b}"))
        dataset = build_dataset(store)
        trained = train_embeddings(
            dataset, TrainConfig(model="rotate", dim=8, epochs=10, seed=1)
        )
        losses = [epoch.mean_loss for epoch in trained.history]
        assert losses[-1] < losses[0]
