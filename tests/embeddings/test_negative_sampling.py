"""Tests for negative sampling."""

import numpy as np
import pytest

from repro.embeddings.negative_sampling import NegativeSampler


@pytest.fixture()
def positives():
    return np.array([[0, 0, 1], [2, 1, 3], [4, 0, 5]], dtype=np.int64)


class TestCorrupt:
    def test_output_shape(self, positives):
        sampler = NegativeSampler(num_entities=10, negatives_per_positive=4, filtered=False)
        negatives = sampler.corrupt(positives)
        assert negatives.shape == (12, 3)

    def test_relation_preserved(self, positives):
        sampler = NegativeSampler(num_entities=10, negatives_per_positive=3, filtered=False)
        negatives = sampler.corrupt(positives)
        expected_relations = np.repeat(positives[:, 1], 3)
        assert np.array_equal(negatives[:, 1], expected_relations)

    def test_exactly_one_slot_corrupted_or_collided(self, positives):
        sampler = NegativeSampler(num_entities=1000, negatives_per_positive=2, filtered=False)
        negatives = sampler.corrupt(positives)
        repeated = np.repeat(positives, 2, axis=0)
        changed = (negatives != repeated).sum(axis=1)
        # With 1000 entities a random replacement almost surely differs,
        # and only one of head/tail is replaced.
        assert np.all(changed <= 1)

    def test_filtered_avoids_known(self):
        # Dense graph over 3 entities: every (h, 0, t) with h != t is true.
        known = {(h, 0, t) for h in range(3) for t in range(3)}
        positives = np.array([[0, 0, 1]] * 20, dtype=np.int64)
        sampler = NegativeSampler(
            num_entities=30, negatives_per_positive=2, filtered=True, known=known, seed=1
        )
        negatives = sampler.corrupt(positives)
        collisions = sum(
            1 for row in negatives if (int(row[0]), int(row[1]), int(row[2])) in known
        )
        assert collisions == 0

    def test_deterministic_per_seed(self, positives):
        a = NegativeSampler(10, 2, filtered=False, seed=5).corrupt(positives)
        b = NegativeSampler(10, 2, filtered=False, seed=5).corrupt(positives)
        assert np.array_equal(a, b)

    def test_rejects_tiny_vocab(self):
        with pytest.raises(ValueError):
            NegativeSampler(num_entities=1)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            NegativeSampler(num_entities=5, negatives_per_positive=0)
