"""Tests for the shallow embedding models (scores + gradients)."""

import numpy as np
import pytest

from repro.common.errors import EmbeddingError
from repro.embeddings.models import (
    ComplEx,
    DistMult,
    ModelConfig,
    TransE,
    available_models,
    create_model,
)

MODELS = [TransE, DistMult, ComplEx]


@pytest.fixture(params=MODELS, ids=[m.name for m in MODELS])
def model(request):
    return request.param(num_entities=20, num_relations=5, config=ModelConfig(dim=8, seed=3))


class TestFactory:
    def test_create_by_name(self):
        for name in available_models():
            model = create_model(name, 10, 3, ModelConfig(dim=4))
            assert model.name == name

    def test_unknown_name(self):
        with pytest.raises(EmbeddingError):
            create_model("rotatoe", 10, 3)

    def test_rejects_empty_vocab(self):
        with pytest.raises(EmbeddingError):
            DistMult(0, 1, ModelConfig(dim=4))

    def test_rejects_bad_dim(self):
        with pytest.raises(EmbeddingError):
            ModelConfig(dim=0)


class TestScoring:
    def test_score_shape(self, model):
        h = np.array([0, 1, 2])
        r = np.array([0, 1, 2])
        t = np.array([3, 4, 5])
        assert model.score(h, r, t).shape == (3,)

    def test_score_triples_matches_score(self, model):
        triples = np.array([[0, 1, 2], [3, 2, 1]])
        direct = model.score(triples[:, 0], triples[:, 1], triples[:, 2])
        assert np.allclose(model.score_triples(triples), direct)

    def test_deterministic_init(self):
        a = DistMult(10, 3, ModelConfig(dim=4, seed=1))
        b = DistMult(10, 3, ModelConfig(dim=4, seed=1))
        assert np.array_equal(a.entity_emb, b.entity_emb)

    def test_transe_perfect_translation_scores_zero(self):
        model = TransE(4, 2, ModelConfig(dim=4, seed=0))
        model.entity_emb[0] = np.array([1.0, 0, 0, 0])
        model.relation_emb[0] = np.array([0, 1.0, 0, 0])
        model.entity_emb[1] = np.array([1.0, 1.0, 0, 0])
        score = model.score(np.array([0]), np.array([0]), np.array([1]))
        assert score[0] == pytest.approx(0.0)

    def test_distmult_symmetric(self):
        model = DistMult(6, 2, ModelConfig(dim=4, seed=2))
        forward = model.score(np.array([0]), np.array([0]), np.array([1]))
        backward = model.score(np.array([1]), np.array([0]), np.array([0]))
        assert forward[0] == pytest.approx(backward[0])

    def test_complex_can_be_antisymmetric(self):
        model = ComplEx(6, 2, ModelConfig(dim=4, seed=2))
        forward = model.score(np.array([0]), np.array([0]), np.array([1]))
        backward = model.score(np.array([1]), np.array([0]), np.array([0]))
        assert forward[0] != pytest.approx(backward[0])

    def test_complex_storage_dim_doubled(self):
        model = ComplEx(6, 2, ModelConfig(dim=4))
        assert model.entity_emb.shape == (6, 8)

    def test_parameter_count(self, model):
        expected = model.entity_emb.size + model.relation_emb.size
        assert model.parameter_count() == expected


class TestGradients:
    """Gradients are checked against finite differences for every model."""

    def test_numeric_gradient_check(self, model):
        h = np.array([1])
        r = np.array([2])
        t = np.array([3])
        dscore = np.array([1.0])
        gh, gr, gt = model.grads(h, r, t, dscore)
        eps = 1e-6

        def check(matrix, row, grad_row):
            numeric = np.zeros_like(grad_row)
            for d in range(matrix.shape[1]):
                original = matrix[row, d]
                matrix[row, d] = original + eps
                up = model.score(h, r, t)[0]
                matrix[row, d] = original - eps
                down = model.score(h, r, t)[0]
                matrix[row, d] = original
                numeric[d] = (up - down) / (2 * eps)
            assert np.allclose(numeric, grad_row, atol=1e-4), (
                f"{model.name}: analytic {grad_row} vs numeric {numeric}"
            )

        check(model.entity_emb, 1, gh[0])
        check(model.relation_emb, 2, gr[0])
        check(model.entity_emb, 3, gt[0])

    def test_dscore_scales_gradients(self, model):
        h, r, t = np.array([0]), np.array([0]), np.array([1])
        g1 = model.grads(h, r, t, np.array([1.0]))
        g2 = model.grads(h, r, t, np.array([2.0]))
        for a, b in zip(g1, g2):
            assert np.allclose(2 * a, b)

    def test_transe_normalize_entities(self):
        model = TransE(5, 2, ModelConfig(dim=4, seed=1))
        model.entity_emb *= 100
        model.normalize_entities()
        norms = np.linalg.norm(model.entity_emb, axis=1)
        assert np.all(norms <= 1.0 + 1e-9)

    def test_distmult_normalize_is_noop(self):
        model = DistMult(5, 2, ModelConfig(dim=4, seed=1))
        before = model.entity_emb.copy()
        model.normalize_entities()
        assert np.array_equal(before, model.entity_emb)
