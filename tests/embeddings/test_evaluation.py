"""Tests for link prediction and triple classification."""

import numpy as np

from repro.embeddings.dataset import TripleDataset
from repro.embeddings.evaluation import (
    _auc,
    _filtered_rank,
    _rankdata,
    corrupt_uniform,
    link_prediction,
    triple_classification,
)
from repro.embeddings.models import DistMult, ModelConfig
from repro.embeddings.trainer import TrainedEmbeddings


def _perfect_model():
    """A DistMult whose scores strongly favour triple (0, 0, 1)."""
    model = DistMult(4, 1, ModelConfig(dim=2, seed=0))
    model.entity_emb[:] = 0.0
    model.entity_emb[0] = [1.0, 0.0]
    model.entity_emb[1] = [1.0, 0.0]
    model.relation_emb[0] = [1.0, 1.0]
    return model


class TestHelpers:
    def test_rankdata_ties(self):
        ranks = _rankdata(np.array([1.0, 2.0, 2.0, 3.0]))
        assert list(ranks) == [1.0, 2.5, 2.5, 4.0]

    def test_auc_perfect(self):
        assert _auc(np.array([2.0, 3.0]), np.array([0.0, 1.0])) == 1.0

    def test_auc_random(self):
        assert _auc(np.array([1.0]), np.array([1.0])) == 0.5

    def test_auc_empty(self):
        assert _auc(np.array([]), np.array([1.0])) == 0.5

    def test_filtered_rank_masks_known(self):
        scores = np.array([5.0, 4.0, 3.0])  # entity 0 scores best
        # true tail is 2; entity 0 is a *known* other answer → masked.
        known = {(9, 0, 0)}
        rank = _filtered_rank(scores, true_index=2, known=known, pattern=(9, 0, None))
        assert rank == 2  # only entity 1 outranks after masking

    def test_filtered_rank_unmasked(self):
        scores = np.array([5.0, 4.0, 3.0])
        rank = _filtered_rank(scores, true_index=2, known=set(), pattern=(9, 0, None))
        assert rank == 3


class TestLinkPrediction:
    def test_perfect_model_ranks_first(self):
        model = _perfect_model()
        dataset = TripleDataset(
            entities=[f"entity:e{i}" for i in range(4)],
            relations=["predicate:p"],
            triples=np.array([[0, 0, 1]]),
        )
        trained = TrainedEmbeddings(model=model, dataset=dataset)
        report = link_prediction(trained, np.array([[0, 0, 1]]))
        assert report.hits_at_1 >= 0.5  # tail query ranks 1; head query too (symmetric)
        assert report.mrr > 0.5
        assert report.num_queries == 2

    def test_max_queries_limits(self, trained):
        report = link_prediction(
            trained.trained, trained.test_triples, max_queries=5
        )
        assert report.num_queries == 10  # 5 triples × (head + tail)


class TestClassification:
    def test_separable_scores(self):
        model = _perfect_model()
        positives = np.array([[0, 0, 1]])
        negatives = np.array([[2, 0, 3]])
        report = triple_classification(model, positives, negatives)
        assert report.auc == 1.0
        assert report.accuracy == 1.0
        # threshold separates the two scores
        pos_score = model.score_triples(positives)[0]
        neg_score = model.score_triples(negatives)[0]
        assert neg_score < report.threshold <= pos_score

    def test_counts(self):
        model = _perfect_model()
        report = triple_classification(
            model, np.array([[0, 0, 1], [1, 0, 0]]), np.array([[2, 0, 3]])
        )
        assert report.num_positive == 2
        assert report.num_negative == 1


class TestCorruptUniform:
    def test_avoids_known(self):
        triples = np.array([[0, 0, 1], [1, 0, 2]])
        known = {(0, 0, 1), (1, 0, 2)}
        negatives = corrupt_uniform(triples, num_entities=50, known=known, seed=1)
        for row in negatives:
            assert (int(row[0]), int(row[1]), int(row[2])) not in known

    def test_deterministic(self):
        triples = np.array([[0, 0, 1]])
        a = corrupt_uniform(triples, 10, set(), seed=3)
        b = corrupt_uniform(triples, 10, set(), seed=3)
        assert np.array_equal(a, b)
