"""Tests for the out-of-core disk trainer."""

import numpy as np
import pytest

from repro.common.errors import EmbeddingError
from repro.embeddings.dataset import build_dataset
from repro.embeddings.disk_trainer import BucketBuffer, DiskTrainer, DiskTrainStats
from repro.embeddings.trainer import TrainConfig
from repro.kg.store import TripleStore
from repro.kg.triple import entity_fact


@pytest.fixture(scope="module")
def dataset():
    store = TripleStore()
    rng = np.random.default_rng(7)
    for _ in range(300):
        a, b = rng.integers(0, 60, size=2)
        if a != b:
            store.add(entity_fact(f"entity:e{a:02d}", "predicate:p", f"entity:e{b:02d}"))
    return build_dataset(store)


class TestBucketBuffer:
    def test_pin_loads_and_evicts(self, tmp_path):
        stats = DiskTrainStats()
        buffer = BucketBuffer(tmp_path, capacity=2, stats=stats)
        for bucket in range(3):
            buffer.initialize(bucket, np.full((2, 2), float(bucket)))
        buffer.pin([0, 1])
        buffer.pin([2, 0])  # evicts 1
        assert stats.bucket_loads == 3
        assert stats.bucket_stores == 1
        assert stats.peak_resident_buckets == 2

    def test_modifications_survive_eviction(self, tmp_path):
        stats = DiskTrainStats()
        buffer = BucketBuffer(tmp_path, capacity=2, stats=stats)
        for bucket in range(3):
            buffer.initialize(bucket, np.zeros((2, 2)))
        resident = buffer.pin([0, 1])
        resident[0][0][:] = 7.0
        buffer.pin([1, 2])  # 0 evicted → stored
        resident = buffer.pin([0, 2])  # 0 reloaded
        assert np.all(resident[0][0] == 7.0)

    def test_flush_persists_everything(self, tmp_path):
        stats = DiskTrainStats()
        buffer = BucketBuffer(tmp_path, capacity=2, stats=stats)
        buffer.initialize(0, np.zeros((2, 2)))
        resident = buffer.pin([0])
        resident[0][0][:] = 3.0
        buffer.flush()
        assert np.all(np.load(tmp_path / "bucket-0000.emb.npy") == 3.0)

    def test_capacity_too_small_for_pin(self, tmp_path):
        stats = DiskTrainStats()
        buffer = BucketBuffer(tmp_path, capacity=2, stats=stats)
        for bucket in range(3):
            buffer.initialize(bucket, np.zeros((1, 1)))
        with pytest.raises(EmbeddingError):
            buffer.pin([0, 1, 2])

    def test_rejects_capacity_below_two(self, tmp_path):
        with pytest.raises(EmbeddingError):
            BucketBuffer(tmp_path, capacity=1, stats=DiskTrainStats())


class TestDiskTrainer:
    def test_trains_and_assembles(self, dataset, tmp_path):
        trainer = DiskTrainer(
            dataset,
            workdir=tmp_path,
            config=TrainConfig(model="distmult", dim=8, epochs=2, seed=1),
            num_partitions=4,
            buffer_capacity=2,
        )
        trained, stats = trainer.train()
        assert trained.model.entity_emb.shape == (dataset.num_entities, 8)
        assert len(stats.epochs) == 2
        assert stats.bucket_loads > 0

    def test_buffer_residency_bounded(self, dataset, tmp_path):
        trainer = DiskTrainer(
            dataset,
            workdir=tmp_path,
            config=TrainConfig(model="distmult", dim=8, epochs=1, seed=1),
            num_partitions=6,
            buffer_capacity=2,
        )
        _, stats = trainer.train()
        assert stats.peak_resident_buckets <= 2

    def test_loss_decreases(self, dataset, tmp_path):
        trainer = DiskTrainer(
            dataset,
            workdir=tmp_path,
            config=TrainConfig(model="distmult", dim=16, epochs=8, seed=2),
            num_partitions=3,
            buffer_capacity=2,
        )
        _, stats = trainer.train()
        assert stats.epochs[-1].mean_loss < stats.epochs[0].mean_loss

    def test_single_partition_matches_memory_layout(self, dataset, tmp_path):
        """With one partition the trainer degenerates to in-memory training
        over the whole graph (same update rule, same data)."""
        trainer = DiskTrainer(
            dataset,
            workdir=tmp_path,
            config=TrainConfig(model="distmult", dim=8, epochs=2, seed=3),
            num_partitions=1,
            buffer_capacity=2,
        )
        trained, stats = trainer.train()
        # One bucket: loaded once, stored once at flush.
        assert stats.bucket_loads == 1
        assert trained.model.entity_emb.shape[0] == dataset.num_entities

    def test_more_partitions_more_io(self, dataset, tmp_path):
        def run(partitions, subdir):
            trainer = DiskTrainer(
                dataset,
                workdir=tmp_path / subdir,
                config=TrainConfig(model="distmult", dim=8, epochs=1, seed=1),
                num_partitions=partitions,
                buffer_capacity=2,
            )
            _, stats = trainer.train()
            return stats.bucket_loads

        assert run(6, "p6") > run(2, "p2")
