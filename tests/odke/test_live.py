"""GrowthDriver: ODKE extraction rounds published as delta generations."""

import pytest

from repro.annotation.pipeline import make_pipeline
from repro.common import ids
from repro.kg.adjacency import build_csr
from repro.kg.deltas import GenerationPublisher, published_version
from repro.kg.generator import hold_out_facts
from repro.kg.persistence import load_snapshot
from repro.odke.gaps import ExtractionTarget
from repro.odke.live import GrowthDriver
from repro.odke.pipeline import ODKEConfig, ODKEPipeline

DOB = ids.predicate_id("date_of_birth")
POB = ids.predicate_id("place_of_birth")


@pytest.fixture(scope="module")
def live_world(kg, search_engine, tmp_path_factory):
    """A private deployed store (mutable) + pipeline + publisher bundle.

    The session ``kg`` stays read-only: ``hold_out_facts`` builds a fresh
    store, and every mutation in these tests lands there.
    """
    deployed, held_out = hold_out_facts(kg, fraction=0.3, seed=29)
    annotation = make_pipeline(deployed, tier="full")
    pipeline = ODKEPipeline(
        deployed, kg.ontology, search_engine, annotation,
        config=ODKEConfig(use_trained_model=False), now=kg.now,
    )
    targets = sorted(
        (
            ExtractionTarget(entity=fact.subject, predicate=fact.predicate, priority=1.0)
            for fact in held_out
            if fact.predicate in (DOB, POB)
        ),
        key=lambda t: (t.entity, t.predicate),
    )
    bundle = tmp_path_factory.mktemp("live-bundle")
    publisher = GenerationPublisher(deployed, bundle, embeddings=False)
    return deployed, pipeline, publisher, bundle, targets


def _assert_chain_matches_rebuild(store, bundle):
    """Chain-loaded bundle == the live store, logically and physically."""
    snapshot = load_snapshot(bundle)
    assert snapshot.manifest["store_version"] == store.version
    assert {f.key: f for f in snapshot.store.scan()} == {f.key: f for f in store.scan()}
    full = build_csr(store)
    merged = snapshot.adjacency
    assert merged is not None and merged.built_version == store.version
    assert merged.num_edges == full.num_edges
    for node in full.dictionary.strings():
        node_id = full.dictionary.get(node)
        want = {full.dictionary.string_of(int(i)) for i in full.neighbors_of(node_id)}
        merged_id = merged.dictionary.get(node)
        got = {merged.dictionary.string_of(int(i)) for i in merged.neighbors_of(merged_id)}
        assert got == want, node


class TestGrowthDriver:
    def test_streamed_extraction_rounds_publish_parity(self, live_world):
        deployed, pipeline, publisher, bundle, targets = live_world
        generations = []
        driver = GrowthDriver(
            pipeline, publisher, publish_every=1, on_generation=generations.append
        )

        accepted = 0
        for chunk_start in range(0, 40, 20):
            step = driver.step(targets[chunk_start : chunk_start + 20])
            accepted += step.report.accepted
            if step.published:
                assert step.generation.store_version == deployed.version

        assert driver.steps == 2
        assert accepted > 0, "extraction must land facts for this test to bite"
        assert generations, "at least one generation must have been published"
        assert published_version(bundle) == deployed.version
        _assert_chain_matches_rebuild(deployed, bundle)

    def test_publish_cadence_batches_steps(self, live_world):
        deployed, pipeline, publisher, bundle, targets = live_world
        driver = GrowthDriver(pipeline, publisher, publish_every=3)
        first = driver.step(targets[40:50])
        second = driver.step(targets[50:60])
        # Cadence not due: nothing published regardless of what landed.
        assert first.generation is None and second.generation is None
        driver.flush()
        assert published_version(bundle) == deployed.version
        _assert_chain_matches_rebuild(deployed, bundle)

    def test_flush_without_changes_is_a_noop(self, live_world):
        _deployed, pipeline, publisher, _bundle, _targets = live_world
        driver = GrowthDriver(pipeline, publisher)
        assert driver.flush() is None

    def test_driver_validates_inputs(self, live_world, kg):
        _deployed, pipeline, publisher, _bundle, _targets = live_world
        with pytest.raises(ValueError, match="publish_every"):
            GrowthDriver(pipeline, publisher, publish_every=0)
        foreign = GenerationPublisher.__new__(GenerationPublisher)
        foreign.store = kg.store  # a publisher over a *different* store
        with pytest.raises(ValueError, match="share one store"):
            GrowthDriver(pipeline, foreign)
