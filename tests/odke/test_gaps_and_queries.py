"""Tests for gap detection and query synthesis."""

import pytest

from repro.common import ids
from repro.kg.generator import hold_out_facts
from repro.kg.query_logs import synthesize_query_log
from repro.odke.gaps import ExtractionTarget, GapDetector
from repro.odke.query_synthesizer import QuerySynthesizer

DOB = ids.predicate_id("date_of_birth")
POB = ids.predicate_id("place_of_birth")


@pytest.fixture(scope="module")
def deployed(kg):
    store, held_out = hold_out_facts(kg, fraction=0.3, seed=11)
    return store, held_out


class TestGapDetector:
    def test_proactive_finds_held_out_gaps(self, kg, deployed):
        store, held_out = deployed
        detector = GapDetector(store, kg.ontology, now=kg.now)
        targets = {t.key for t in detector.proactive_targets()}
        held_keys = {
            (f.subject, f.predicate) for f in held_out if f.predicate in (DOB, POB)
        }
        # Every held-out expected-predicate fact shows up as a gap.
        assert held_keys <= targets

    def test_reactive_requires_min_queries(self, kg, deployed):
        store, _ = deployed
        log = synthesize_query_log(store, [DOB], 800, now=kg.now, seed=2)
        detector = GapDetector(store, kg.ontology, now=kg.now, query_log=log)
        strict = detector.reactive_targets(min_queries=3)
        loose = detector.reactive_targets(min_queries=1)
        assert len(strict) <= len(loose)
        assert all(t.origin == "reactive" for t in loose)

    def test_stale_targets_flag_volatile_facts(self, kg):
        detector = GapDetector(kg.store, kg.ontology, now=kg.now)
        stale = detector.stale_targets()
        assert stale
        assert all(t.kind == "stale" for t in stale)
        stale_truth = set(kg.truth.stale_facts)
        assert {t.key for t in stale} <= stale_truth | {t.key for t in stale}

    def test_trending_targets(self, kg, deployed):
        store, held_out = deployed
        gap_entity = next(f.subject for f in held_out if f.predicate == DOB)
        log = synthesize_query_log(
            store, [DOB], 300, now=kg.now, seed=3, trending_entities=[gap_entity]
        )
        detector = GapDetector(store, kg.ontology, now=kg.now, query_log=log)
        trending = detector.trending_targets()
        assert any(t.entity == gap_entity for t in trending)

    def test_merged_targets_deduplicated_and_ranked(self, kg, deployed):
        store, _ = deployed
        log = synthesize_query_log(store, [DOB, POB], 500, now=kg.now, seed=4)
        detector = GapDetector(store, kg.ontology, now=kg.now, query_log=log)
        targets = detector.all_targets()
        keys = [t.key for t in targets]
        assert len(keys) == len(set(keys))
        priorities = [t.priority for t in targets]
        assert priorities == sorted(priorities, reverse=True)

    def test_max_targets(self, kg, deployed):
        store, _ = deployed
        detector = GapDetector(store, kg.ontology, now=kg.now)
        assert len(detector.all_targets(max_targets=5)) == 5

    def test_multi_path_targets_boosted(self, kg, deployed):
        """A gap found by both reactive and proactive paths outranks a
        proactive-only gap of the same entity popularity."""
        store, held_out = deployed
        gap_entity = next(f.subject for f in held_out if f.predicate == DOB)
        log = synthesize_query_log(
            store, [DOB], 50, now=kg.now, seed=5, trending_entities=[gap_entity]
        )
        detector = GapDetector(store, kg.ontology, now=kg.now, query_log=log)
        merged = {t.key: t for t in detector.all_targets()}
        target = merged.get((gap_entity, DOB))
        assert target is not None
        assert "+" in target.origin or target.origin in ("reactive", "proactive")


class TestQuerySynthesizer:
    def test_queries_contain_name(self, kg):
        synthesizer = QuerySynthesizer(kg.store)
        person = next(
            r for r in kg.store.entities() if ids.type_id("person") in r.types
        )
        queries = synthesizer.synthesize(
            ExtractionTarget(entity=person.entity, predicate=DOB, priority=1.0)
        )
        assert queries
        assert all(person.name in q.text for q in queries)

    def test_queries_per_target_limit(self, kg):
        synthesizer = QuerySynthesizer(kg.store, queries_per_target=2)
        person = next(
            r for r in kg.store.entities() if ids.type_id("person") in r.types
        )
        queries = synthesizer.synthesize(
            ExtractionTarget(entity=person.entity, predicate=DOB, priority=1.0)
        )
        assert len(queries) == 2

    def test_type_hint_appended_for_athletes(self, kg):
        synthesizer = QuerySynthesizer(kg.store)
        player = next(
            (r for r in kg.store.entities()
             if ids.type_id("basketball_player") in r.types),
            None,
        )
        if player is None:
            pytest.skip("no basketball player at this scale")
        queries = synthesizer.synthesize(
            ExtractionTarget(entity=player.entity, predicate=DOB, priority=1.0)
        )
        assert all(q.text.endswith("basketball") for q in queries)

    def test_unknown_entity_no_queries(self, kg):
        synthesizer = QuerySynthesizer(kg.store)
        assert synthesizer.synthesize(
            ExtractionTarget(entity="entity:ghost", predicate=DOB, priority=1.0)
        ) == []

    def test_default_template_for_unmapped_predicate(self, kg):
        synthesizer = QuerySynthesizer(kg.store)
        person = next(
            r for r in kg.store.entities() if ids.type_id("person") in r.types
        )
        queries = synthesizer.synthesize(
            ExtractionTarget(
                entity=person.entity,
                predicate=ids.predicate_id("height_cm"),
                priority=1.0,
            )
        )
        assert queries
