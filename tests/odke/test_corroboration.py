"""Tests for evidence grouping and the corroboration model."""

import numpy as np
import pytest

from repro.common.errors import ExtractionError
from repro.odke.corroboration import (
    FEATURE_NAMES,
    LabeledGroup,
    featurize_group,
    group_candidates,
    majority_vote,
    select_best_per_target,
    train_corroboration_model,
)
from repro.odke.extractors.base import CandidateFact


def _candidate(value="1979-07-23", extractor="pattern", confidence=0.6,
               doc_id="doc:web/1", quality=0.5, ts=100.0):
    return CandidateFact(
        entity="entity:mw", predicate="predicate:date_of_birth", value=value,
        extractor=extractor, confidence=confidence, doc_id=doc_id,
        source_quality=quality, doc_timestamp=ts,
    )


class TestGrouping:
    def test_groups_by_value_case_insensitive(self):
        groups = group_candidates([
            _candidate(value="Lakemont"), _candidate(value="lakemont"),
            _candidate(value="Rivergate"),
        ])
        assert len(groups) == 2
        by_value = {g.value.lower(): g for g in groups}
        assert by_value["lakemont"].support == 2

    def test_distinct_docs_and_extractors(self):
        group = group_candidates([
            _candidate(doc_id="doc:web/1", extractor="pattern"),
            _candidate(doc_id="doc:web/1", extractor="neural"),
            _candidate(doc_id="doc:web/2", extractor="pattern"),
        ])[0]
        assert group.support == 3
        assert group.distinct_docs == 2
        assert group.extractors == {"pattern", "neural"}

    def test_empty(self):
        assert group_candidates([]) == []


class TestFeatures:
    def test_feature_vector_shape(self):
        group = group_candidates([_candidate()])[0]
        features = featurize_group(group, total_support=1, now=200.0)
        assert features.shape == (len(FEATURE_NAMES),)

    def test_structured_flag(self):
        group = group_candidates([_candidate(extractor="structured")])[0]
        features = featurize_group(group, 1, 200.0)
        assert features[FEATURE_NAMES.index("has_structured")] == 1.0

    def test_agreement_ratio(self):
        group = group_candidates([_candidate(), _candidate(doc_id="doc:web/2")])[0]
        features = featurize_group(group, total_support=4, now=200.0)
        assert features[FEATURE_NAMES.index("agreement_ratio")] == pytest.approx(0.5)

    def test_recency_decays(self):
        fresh = group_candidates([_candidate(ts=200.0)])[0]
        old = group_candidates([_candidate(ts=-1e9)])[0]
        idx = FEATURE_NAMES.index("recency")
        assert featurize_group(fresh, 1, 200.0)[idx] > featurize_group(old, 1, 200.0)[idx]


def _training_data(n=60, seed=0):
    """Synthetic separable data: correct groups have higher support/quality."""
    rng = np.random.default_rng(seed)
    examples = []
    for i in range(n):
        label = bool(i % 2)
        support = rng.integers(3, 8) if label else rng.integers(1, 3)
        quality = 0.9 if label else 0.3
        candidates = [
            _candidate(doc_id=f"doc:web/{i}-{j}", quality=quality,
                       extractor="structured" if label and j == 0 else "pattern")
            for j in range(int(support))
        ]
        group = group_candidates(candidates)[0]
        examples.append(
            LabeledGroup(
                features=featurize_group(group, int(support) + 2, 200.0),
                label=label,
            )
        )
    return examples


class TestModel:
    def test_learns_separable_data(self):
        examples = _training_data()
        model = train_corroboration_model(examples)
        correct = sum(
            1 for example in examples
            if (model.probability(example.features) >= 0.5) == example.label
        )
        assert correct / len(examples) > 0.9

    def test_probability_in_unit_interval(self):
        model = train_corroboration_model(_training_data())
        for example in _training_data(seed=1):
            assert 0.0 <= model.probability(example.features) <= 1.0

    def test_feature_importance_keys(self):
        model = train_corroboration_model(_training_data())
        assert set(model.feature_importance()) == set(FEATURE_NAMES)

    def test_rejects_empty_or_single_class(self):
        with pytest.raises(ExtractionError):
            train_corroboration_model([])
        same = [LabeledGroup(features=np.ones(len(FEATURE_NAMES)), label=True)] * 4
        with pytest.raises(ExtractionError):
            train_corroboration_model(same)

    def test_score_groups_per_target_totals(self):
        model = train_corroboration_model(_training_data())
        groups = group_candidates([
            _candidate(value="A"), _candidate(value="A"), _candidate(value="B"),
        ])
        scored = model.score_groups(groups, now=200.0)
        assert len(scored) == 2


class TestSelection:
    def test_majority_vote_shares(self):
        groups = group_candidates([
            _candidate(value="A"), _candidate(value="A"), _candidate(value="B"),
        ])
        scored = dict(
            (g.value, p) for g, p in majority_vote(groups)
        )
        assert scored["A"] == pytest.approx(2 / 3)
        assert scored["B"] == pytest.approx(1 / 3)

    def test_select_best_per_target(self):
        groups = group_candidates([
            _candidate(value="A"), _candidate(value="A"), _candidate(value="B"),
        ])
        accepted = select_best_per_target(majority_vote(groups), min_probability=0.5)
        assert len(accepted) == 1
        assert accepted[0][0].value == "A"

    def test_threshold_filters(self):
        groups = group_candidates([_candidate(value="A"), _candidate(value="B")])
        accepted = select_best_per_target(majority_vote(groups), min_probability=0.9)
        assert accepted == []
