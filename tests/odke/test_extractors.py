"""Tests for the three extractor tiers."""


from repro.common import ids
from repro.odke.extractors import (
    AnnotationGuidedExtractor,
    PatternExtractor,
    StructuredDataExtractor,
    normalize_date,
)
from repro.odke.gaps import ExtractionTarget
from repro.web.document import WebDocument

DOB = ids.predicate_id("date_of_birth")
POB = ids.predicate_id("place_of_birth")


class TestNormalizeDate:
    def test_iso_passthrough(self):
        assert normalize_date("1979-07-23") == "1979-07-23"

    def test_long_format(self):
        assert normalize_date("July 23, 1979") == "1979-07-23"

    def test_single_digit_day(self):
        assert normalize_date("March 5, 2001") == "2001-03-05"

    def test_garbage_none(self):
        assert normalize_date("sometime in the 80s") is None
        assert normalize_date("Juplember 5, 2001") is None


def _target(kg, predicate=DOB):
    person = next(
        r for r in kg.store.entities() if ids.type_id("person") in r.types
    )
    return person, ExtractionTarget(entity=person.entity, predicate=predicate, priority=1.0)


class TestStructuredExtractor:
    def test_extracts_matching_payload(self, kg):
        person, target = _target(kg)
        doc = WebDocument(
            doc_id="doc:web/t1", url="u", title=person.name, text="",
            structured_data={"@type": "Person", "name": person.name,
                             "birthDate": "1980-02-03"},
            quality=0.9,
        )
        facts = StructuredDataExtractor(kg.store).extract(doc, target)
        assert len(facts) == 1
        assert facts[0].value == "1980-02-03"
        assert facts[0].extractor == "structured"

    def test_name_mismatch_rejected(self, kg):
        person, target = _target(kg)
        doc = WebDocument(
            doc_id="doc:web/t2", url="u", title="x", text="",
            structured_data={"@type": "Person", "name": "Somebody Else",
                             "birthDate": "1980-02-03"},
        )
        assert StructuredDataExtractor(kg.store).extract(doc, target) == []

    def test_no_payload_no_facts(self, kg):
        person, target = _target(kg)
        doc = WebDocument(doc_id="doc:web/t3", url="u", title=person.name, text="")
        assert StructuredDataExtractor(kg.store).extract(doc, target) == []

    def test_unparseable_date_skipped(self, kg):
        person, target = _target(kg)
        doc = WebDocument(
            doc_id="doc:web/t4", url="u", title=person.name, text="",
            structured_data={"@type": "Person", "name": person.name,
                             "birthDate": "long ago"},
        )
        assert StructuredDataExtractor(kg.store).extract(doc, target) == []

    def test_list_values(self, kg):
        person, target = _target(kg, predicate=ids.predicate_id("occupation"))
        doc = WebDocument(
            doc_id="doc:web/t5", url="u", title=person.name, text="",
            structured_data={"@type": "Person", "name": person.name,
                             "jobTitle": ["actor", "singer"]},
        )
        facts = StructuredDataExtractor(kg.store).extract(doc, target)
        assert {f.value for f in facts} == {"actor", "singer"}


class TestPatternExtractor:
    def test_born_on_iso(self, kg):
        person, target = _target(kg)
        doc = WebDocument(
            doc_id="doc:web/p1", url="u", title="t",
            text=f"{person.name} was born on 1975-12-01 in a small town.",
        )
        facts = PatternExtractor(kg.store).extract(doc, target)
        assert facts and facts[0].value == "1975-12-01"

    def test_born_on_long_date(self, kg):
        person, target = _target(kg)
        doc = WebDocument(
            doc_id="doc:web/p2", url="u", title="t",
            text=f"{person.name} was born on December 1, 1975. ",
        )
        facts = PatternExtractor(kg.store).extract(doc, target)
        assert facts and facts[0].value == "1975-12-01"

    def test_place_pattern(self, kg):
        person, target = _target(kg, POB)
        doc = WebDocument(
            doc_id="doc:web/p3", url="u", title="t",
            text=f"{person.name} was born in Lakemont. ",
        )
        facts = PatternExtractor(kg.store).extract(doc, target)
        assert facts and facts[0].value == "Lakemont"

    def test_spanish_pattern(self, kg):
        person, target = _target(kg, POB)
        doc = WebDocument(
            doc_id="doc:web/p4", url="u", title="t", language="es",
            text=f"{person.name} nació en Lakemont. ",
        )
        facts = PatternExtractor(kg.store).extract(doc, target)
        assert facts and facts[0].value == "Lakemont"

    def test_alias_anchor_lower_confidence(self, kg):
        person, target = _target(kg)
        alias = person.aliases[-1]
        doc_full = WebDocument(
            doc_id="doc:web/p5", url="u", title="t",
            text=f"{person.name} was born on 1975-12-01. ",
        )
        doc_alias = WebDocument(
            doc_id="doc:web/p6", url="u", title="t",
            text=f"{alias} was born on 1975-12-01. ",
        )
        extractor = PatternExtractor(kg.store)
        full_conf = extractor.extract(doc_full, target)[0].confidence
        alias_conf = extractor.extract(doc_alias, target)[0].confidence
        assert alias_conf < full_conf

    def test_no_match_no_facts(self, kg):
        person, target = _target(kg)
        doc = WebDocument(doc_id="doc:web/p7", url="u", title="t",
                          text="Nothing biographical here.")
        assert PatternExtractor(kg.store).extract(doc, target) == []


class TestAnnotationGuidedExtractor:
    def test_date_near_anchor(self, kg, full_annotation_pipeline):
        person, target = _target(kg)
        text = f"{person.name} was born on 1975-12-01 and grew up nearby."
        doc = WebDocument(doc_id="doc:web/n1", url="u", title="t", text=text)
        links = full_annotation_pipeline.annotate(text)
        facts = AnnotationGuidedExtractor().extract_with_links(doc, target, links)
        assert facts and facts[0].value == "1975-12-01"
        assert facts[0].extractor == "neural"

    def test_no_trigger_no_extraction(self, kg, full_annotation_pipeline):
        person, target = _target(kg)
        text = f"{person.name} had dinner on 1975-12-01 with friends."
        # 'dinner' is not a DOB trigger ('born', 'birthday', 'birth')... but
        # wait: the window only needs a trigger word; none here.
        doc = WebDocument(doc_id="doc:web/n2", url="u", title="t", text=text)
        links = full_annotation_pipeline.annotate(text)
        facts = AnnotationGuidedExtractor().extract_with_links(doc, target, links)
        assert facts == []

    def test_entity_valued_place(self, kg, full_annotation_pipeline):
        person, target = _target(kg, POB)
        city = next(
            r for r in kg.store.entities() if ids.type_id("city") in r.types
        )
        text = f"{person.name} was born in {city.name} many years ago."
        doc = WebDocument(doc_id="doc:web/n3", url="u", title="t", text=text)
        links = full_annotation_pipeline.annotate(text)
        facts = AnnotationGuidedExtractor().extract_with_links(doc, target, links)
        assert any(f.value == city.name for f in facts)

    def test_anchor_required(self, kg, full_annotation_pipeline):
        person, target = _target(kg)
        text = "Somebody Unknown was born on 1975-12-01."
        doc = WebDocument(doc_id="doc:web/n4", url="u", title="t", text=text)
        links = full_annotation_pipeline.annotate(text)
        facts = AnnotationGuidedExtractor().extract_with_links(doc, target, links)
        assert facts == []

    def test_plain_extract_returns_nothing(self, kg):
        person, target = _target(kg)
        doc = WebDocument(doc_id="doc:web/n5", url="u", title="t",
                          text=f"{person.name} was born on 1975-12-01.")
        assert AnnotationGuidedExtractor().extract(doc, target) == []
