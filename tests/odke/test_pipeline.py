"""End-to-end ODKE tests: retrieval → extraction → corroboration → fusion."""

import pytest

from repro.annotation.pipeline import make_pipeline
from repro.common import ids
from repro.kg.generator import hold_out_facts
from repro.odke.fusion import FusionEngine
from repro.odke.gaps import ExtractionTarget
from repro.odke.pipeline import (
    ODKEConfig,
    ODKEPipeline,
    build_training_examples,
)
from repro.odke.corroboration import EvidenceGroup, train_corroboration_model
from repro.odke.retrieval import TargetRetriever
from repro.odke.query_synthesizer import QuerySynthesizer

DOB = ids.predicate_id("date_of_birth")
POB = ids.predicate_id("place_of_birth")


@pytest.fixture(scope="module")
def odke_world(kg, corpus, search_engine):
    """Deployed KG with gaps + annotation pipeline over it."""
    deployed, held_out = hold_out_facts(kg, fraction=0.3, seed=13)
    annotation = make_pipeline(deployed, tier="full")
    truth = {}
    for fact in held_out:
        if fact.predicate == DOB:
            truth[(fact.subject, fact.predicate)] = fact.obj
        elif fact.predicate == POB:
            truth[(fact.subject, fact.predicate)] = kg.store.entity(fact.obj).name
    targets = [
        ExtractionTarget(entity=entity, predicate=predicate, priority=1.0)
        for (entity, predicate) in sorted(truth)
    ]
    return deployed, annotation, truth, targets


class TestRetrieval:
    def test_retrieves_relevant_docs(self, kg, search_engine, odke_world):
        deployed, _, _, targets = odke_world
        retriever = TargetRetriever(search_engine, QuerySynthesizer(deployed))
        # Pick a target whose entity has a profile page (popular entity).
        popular = max(
            targets,
            key=lambda t: deployed.entity(t.entity).popularity,
        )
        retrieved = retriever.retrieve(popular)
        assert retrieved
        name = deployed.entity(popular.entity).name
        assert any(name in item.document.full_text for item in retrieved)

    def test_dedup_across_queries(self, search_engine, odke_world):
        deployed, _, _, targets = odke_world
        retriever = TargetRetriever(search_engine, QuerySynthesizer(deployed))
        retrieved = retriever.retrieve(targets[0])
        doc_ids = [item.document.doc_id for item in retrieved]
        assert len(doc_ids) == len(set(doc_ids))

    def test_max_docs_cap(self, search_engine, odke_world):
        deployed, _, _, targets = odke_world
        retriever = TargetRetriever(
            search_engine, QuerySynthesizer(deployed), max_docs_per_target=3
        )
        assert len(retriever.retrieve(targets[0])) <= 3


class TestPipeline:
    def test_majority_run_recovers_facts(self, kg, search_engine, odke_world):
        deployed, annotation, truth, targets = odke_world
        pipeline = ODKEPipeline(
            deployed, kg.ontology, search_engine, annotation,
            config=ODKEConfig(use_trained_model=False), now=kg.now,
        )
        report = pipeline.run(targets[:40], fuse=False)
        assert report.candidates_extracted > 0
        assert report.accepted > 0
        correct = sum(
            1 for key, (value, _p) in report.accepted_values.items()
            if truth.get(key, "").lower() == value.lower()
        )
        assert correct > 0

    def test_trained_model_beats_majority_precision(self, kg, search_engine, odke_world):
        """The §4 claim: the trained evidence model is more precise than
        support-count majority voting."""
        deployed, annotation, truth, targets = odke_world
        train_targets = targets[::2][:40]
        eval_targets = targets[1::2][:40]

        base = ODKEPipeline(
            deployed, kg.ontology, search_engine, annotation,
            config=ODKEConfig(use_trained_model=False), now=kg.now,
        )
        examples = build_training_examples(base, train_targets, truth)
        assert any(e.label for e in examples) and any(not e.label for e in examples)
        model = train_corroboration_model(examples)

        def precision(pipeline):
            report = pipeline.run(eval_targets, fuse=False)
            if not report.accepted:
                return 0.0, 0
            correct = sum(
                1 for key, (value, _p) in report.accepted_values.items()
                if truth.get(key, "").lower() == value.lower()
            )
            return correct / report.accepted, report.accepted

        trained_pipeline = ODKEPipeline(
            deployed, kg.ontology, search_engine, annotation,
            corroboration_model=model, now=kg.now,
        )
        majority_pipeline = ODKEPipeline(
            deployed, kg.ontology, search_engine, annotation,
            config=ODKEConfig(use_trained_model=False), now=kg.now,
        )
        trained_precision, trained_n = precision(trained_pipeline)
        majority_precision, _ = precision(majority_pipeline)
        assert trained_n > 0
        assert trained_precision >= majority_precision

    def test_fusion_writes_to_store(self, kg, search_engine, odke_world):
        deployed, annotation, truth, targets = odke_world
        before = len(deployed)
        pipeline = ODKEPipeline(
            deployed, kg.ontology, search_engine, annotation,
            config=ODKEConfig(use_trained_model=False), now=kg.now,
        )
        report = pipeline.run(targets[:20], fuse=True)
        assert report.fusion is not None
        if report.fusion.written:
            assert len(deployed) > before
            # Written facts carry ODKE provenance.
            fact = report.fusion.facts[0]
            stored = deployed.get(*fact.key)
            assert stored is not None
            assert any("odke" in source for source in stored.sources)

    def test_annotation_cache_reused(self, kg, search_engine, odke_world):
        deployed, annotation, truth, targets = odke_world
        pipeline = ODKEPipeline(
            deployed, kg.ontology, search_engine, annotation,
            config=ODKEConfig(use_trained_model=False), now=kg.now,
        )
        pipeline.run(targets[:10], fuse=False)
        misses_first = pipeline.metrics.counters.get("annotation.cache_miss", 0)
        pipeline.run(targets[:10], fuse=False)
        misses_second = pipeline.metrics.counters.get("annotation.cache_miss", 0)
        assert misses_second == misses_first  # all hits on the second pass


class TestFusionEngine:
    def test_literal_fused_with_datatype(self, kg):
        from repro.kg.store import TripleStore

        store = TripleStore()
        store.copy_entities_from(kg.store)
        engine = FusionEngine(store, kg.ontology)
        person = next(
            r.entity for r in kg.store.entities() if ids.type_id("person") in r.types
        )
        group = EvidenceGroup(entity=person, predicate=DOB, value="1980-01-01")
        report = engine.fuse([(group, 0.9)], now=kg.now)
        assert report.written == 1
        fact = store.get(person, DOB, "1980-01-01")
        assert fact is not None and fact.is_literal

    def test_entity_value_resolved_via_alias(self, kg):
        from repro.kg.store import TripleStore

        store = TripleStore()
        store.copy_entities_from(kg.store)
        engine = FusionEngine(store, kg.ontology)
        person = next(
            r.entity for r in kg.store.entities() if ids.type_id("person") in r.types
        )
        city = next(
            r for r in kg.store.entities() if ids.type_id("city") in r.types
        )
        group = EvidenceGroup(entity=person, predicate=POB, value=city.name)
        report = engine.fuse([(group, 0.8)], now=kg.now)
        assert report.written == 1
        assert city.entity in store.objects(person, POB)

    def test_unresolvable_entity_value_counted(self, kg):
        from repro.kg.store import TripleStore

        store = TripleStore()
        store.copy_entities_from(kg.store)
        engine = FusionEngine(store, kg.ontology)
        person = next(
            r.entity for r in kg.store.entities() if ids.type_id("person") in r.types
        )
        group = EvidenceGroup(entity=person, predicate=POB, value="Atlantis Prime")
        report = engine.fuse([(group, 0.8)], now=kg.now)
        assert report.written == 0
        assert report.unresolved_entity_values == 1

    def test_unknown_predicate_rejected(self, kg):
        from repro.kg.store import TripleStore

        store = TripleStore()
        store.copy_entities_from(kg.store)
        engine = FusionEngine(store, kg.ontology)
        person = next(
            r.entity for r in kg.store.entities() if ids.type_id("person") in r.types
        )
        group = EvidenceGroup(
            entity=person, predicate="predicate:made_up", value="x"
        )
        report = engine.fuse([(group, 0.8)], now=kg.now)
        assert report.schema_rejections == 1
